//! Piecewise-quadratic analysis of attribute terms.
//!
//! The appendix's base case assumes "a routine which, for each possible
//! relevant instantiation of values to the free variables, gives us the
//! intervals during which the relation is satisfied".  For comparison atoms
//! over attribute terms this module is that routine: given an instantiation
//! of the object variables it expresses each side of the comparison as a
//! **piecewise function of time** of degree ≤ 2 (positions are linear per
//! motion-vector leg, `time` is linear, squared distances are quadratic) or
//! as `sqrt` of such a function (`DIST`), solves the comparison with real
//! root finding, and verifies the resulting tick intervals against exact
//! per-tick evaluation ([`crate::semantics::eval_term`]) so answers are
//! exact at integer clock ticks.
//!
//! Supported fragment (violations raise [`FtlError::Unsupported`]):
//! products where at least one factor has degree ≤ 1 per piece (so the
//! product stays quadratic), division by piecewise constants, and `DIST`
//! appearing alone (not inside arithmetic) compared against a term of
//! degree ≤ 1 or against another `DIST`.

use crate::ast::{ArithOp, CmpOp, Term};
use crate::context::EvalContext;
use crate::error::{FtlError, FtlResult};
use crate::semantics::{eval_term, Env};
use most_dbms::value::Value;
use most_spatial::predicates::exact_ticks;
use most_spatial::roots::{solve_quadratic_le, RealIntervals};
use most_spatial::{MovingPoint, Point, Trajectory};
use most_temporal::{Horizon, Interval, IntervalSet, Tick};

/// A quadratic `a·t² + b·t + c` valid on a tick interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadPiece {
    /// Validity range (ticks).
    pub iv: Interval,
    /// Quadratic coefficient.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Constant coefficient.
    pub c: f64,
}

impl QuadPiece {
    fn constant(iv: Interval, c: f64) -> Self {
        QuadPiece { iv, a: 0.0, b: 0.0, c }
    }

    fn degree(&self) -> u8 {
        if self.a != 0.0 {
            2
        } else if self.b != 0.0 {
            1
        } else {
            0
        }
    }

    fn eval(&self, t: f64) -> f64 {
        (self.a * t + self.b) * t + self.c
    }
}

/// The analyzed form of a term for one instantiation.
#[derive(Debug, Clone, PartialEq)]
pub enum TermForm {
    /// Constant over the whole horizon (any value kind, including `Null`).
    Invariant(Value),
    /// Piecewise polynomial of degree ≤ 2 (numeric); gaps are undefined.
    Quad(Vec<QuadPiece>),
    /// `sqrt` of a piecewise polynomial (distances; always ≥ 0).
    SqrtQuad(Vec<QuadPiece>),
    /// Piecewise-constant non-numeric values (e.g. string attributes).
    Values(Vec<(Interval, Value)>),
}

/// Whether `name` is one of the motion sub-attributes (`X`, `Y`, `VX`,
/// `VY`, `SPEED`) that the evaluator reads from an object's trajectory
/// rather than from a stored static/dynamic attribute.  Dependency
/// analysis (`most-core`'s `deps` module) classifies `o.NAME` terms with
/// this predicate: motion names depend on position updates, every other
/// name on attribute updates of that name.
pub fn is_motion_attr(name: &str) -> bool {
    matches!(name, "X" | "Y" | "VX" | "VY" | "SPEED")
}

/// Builds the [`TermForm`] of `term` under `env` (object variables bound to
/// ids; assignment-bound variables already pinned to constants).
pub fn build_form(ctx: &dyn EvalContext, env: &Env, term: &Term) -> FtlResult<TermForm> {
    let h = ctx.horizon();
    let full = Interval::new(0, h.end());
    match term {
        Term::Const(v) => Ok(TermForm::Invariant(v.clone())),
        Term::Var(name) => env
            .get(name)
            .cloned()
            .map(TermForm::Invariant)
            .ok_or_else(|| FtlError::Unsafe(format!("unbound variable `{name}`"))),
        Term::Time => Ok(TermForm::Quad(vec![QuadPiece { iv: full, a: 0.0, b: 1.0, c: 0.0 }])),
        Term::Point(..) => Err(FtlError::Type(
            "a POINT literal has no scalar value; use it inside DIST".into(),
        )),
        Term::Attr(base, attr) => {
            let id = match build_form(ctx, env, base)? {
                TermForm::Invariant(Value::Id(id)) => id,
                TermForm::Invariant(Value::Null) => return Ok(TermForm::Invariant(Value::Null)),
                other => {
                    return Err(FtlError::Type(format!(
                        "attribute `.{attr}` applied to a non-object term ({other:?})"
                    )))
                }
            };
            build_attr_form(ctx, id, attr, h)
        }
        Term::Dist(a, b) => {
            let sa = resolve_motion(ctx, env, a)?;
            let sb = resolve_motion(ctx, env, b)?;
            match (sa, sb) {
                (Some(ta), Some(tb)) => Ok(TermForm::SqrtQuad(dist_sq_pieces(&ta, &tb, h))),
                _ => Ok(TermForm::Invariant(Value::Null)),
            }
        }
        Term::Arith(op, a, b) => {
            let fa = build_form(ctx, env, a)?;
            let fb = build_form(ctx, env, b)?;
            arith_forms(*op, fa, fb, h)
        }
    }
}

fn build_attr_form(
    ctx: &dyn EvalContext,
    id: u64,
    attr: &str,
    h: Horizon,
) -> FtlResult<TermForm> {
    match attr {
        _ if is_motion_attr(attr) => {
            let Some(traj) = ctx.trajectory(id) else {
                return Ok(TermForm::Invariant(Value::Null));
            };
            let mut pieces = Vec::new();
            for (leg, lo, hi) in traj.legs_between(0, h.end()) {
                let iv = Interval::new(lo, hi);
                let piece = match attr {
                    // x(t) = anchor.x + vx·(t − since)
                    "X" => QuadPiece {
                        iv,
                        a: 0.0,
                        b: leg.velocity.dx,
                        c: leg.anchor.x - leg.velocity.dx * leg.since as f64,
                    },
                    "Y" => QuadPiece {
                        iv,
                        a: 0.0,
                        b: leg.velocity.dy,
                        c: leg.anchor.y - leg.velocity.dy * leg.since as f64,
                    },
                    "VX" => QuadPiece::constant(iv, leg.velocity.dx),
                    "VY" => QuadPiece::constant(iv, leg.velocity.dy),
                    _ => QuadPiece::constant(iv, leg.velocity.speed()),
                };
                pieces.push(piece);
            }
            Ok(TermForm::Quad(pieces))
        }
        _ => {
            // Scalar dynamic attributes (fuel, temperature, ...) take
            // precedence over static series.
            let dynamic = ctx.dynamic_series(id, attr);
            if !dynamic.is_empty() {
                return Ok(TermForm::Quad(
                    dynamic
                        .into_iter()
                        .map(|(iv, [a, b, c])| QuadPiece { iv, a, b, c })
                        .collect(),
                ));
            }
            let series = ctx.attr_series(id, attr);
            if series.is_empty() {
                return Ok(TermForm::Invariant(Value::Null));
            }
            if series.iter().all(|(v, _)| v.as_f64().is_some()) {
                Ok(TermForm::Quad(
                    series
                        .into_iter()
                        .map(|(v, iv)| {
                            QuadPiece::constant(iv, v.as_f64().expect("checked numeric"))
                        })
                        .collect(),
                ))
            } else {
                Ok(TermForm::Values(
                    series.into_iter().map(|(v, iv)| (iv, v)).collect(),
                ))
            }
        }
    }
}

/// Resolves a point-valued term to its motion (trajectory or stationary
/// literal); `None` when undefined.
fn resolve_motion(
    ctx: &dyn EvalContext,
    env: &Env,
    term: &Term,
) -> FtlResult<Option<Trajectory>> {
    match term {
        Term::Point(x, y) => Ok(Some(Trajectory::new(MovingPoint::stationary(Point::new(
            *x, *y,
        ))))),
        _ => match build_form(ctx, env, term)? {
            TermForm::Invariant(Value::Id(id)) => Ok(ctx.trajectory(id)),
            TermForm::Invariant(Value::Null) => Ok(None),
            other => Err(FtlError::Type(format!(
                "DIST argument is not a point-valued term ({other:?})"
            ))),
        },
    }
}

/// Squared-distance pieces between two piecewise-linear motions.
fn dist_sq_pieces(a: &Trajectory, b: &Trajectory, h: Horizon) -> Vec<QuadPiece> {
    let mut out = Vec::new();
    for (leg_a, lo_a, hi_a) in a.legs_between(0, h.end()) {
        for (leg_b, lo_b, hi_b) in b.legs_between(lo_a, hi_a) {
            let lo = lo_a.max(lo_b);
            let hi = hi_a.min(hi_b);
            if lo > hi {
                continue;
            }
            let rel = leg_a.relative_to(leg_b);
            let p0 = rel.position_at(0.0);
            let v = rel.velocity;
            out.push(QuadPiece {
                iv: Interval::new(lo, hi),
                a: v.norm_sq(),
                b: 2.0 * (p0.x * v.dx + p0.y * v.dy),
                c: p0.x * p0.x + p0.y * p0.y,
            });
        }
    }
    out
}

fn arith_forms(op: ArithOp, fa: TermForm, fb: TermForm, h: Horizon) -> FtlResult<TermForm> {
    use TermForm::*;
    // Null propagates.
    if matches!(fa, Invariant(Value::Null)) || matches!(fb, Invariant(Value::Null)) {
        return Ok(Invariant(Value::Null));
    }
    let qa = to_quad(fa, h)?;
    let qb = to_quad(fb, h)?;
    let mut pieces = Vec::new();
    for (iv, x, y) in align(&qa, &qb) {
        let p = match op {
            ArithOp::Add => QuadPiece { iv, a: x.a + y.a, b: x.b + y.b, c: x.c + y.c },
            ArithOp::Sub => QuadPiece { iv, a: x.a - y.a, b: x.b - y.b, c: x.c - y.c },
            ArithOp::Mul => {
                if x.degree() + y.degree() > 2 {
                    return Err(FtlError::Unsupported(
                        "product of time-varying terms exceeds quadratic degree".into(),
                    ));
                }
                QuadPiece {
                    iv,
                    a: x.a * y.c + x.c * y.a + x.b * y.b,
                    b: x.b * y.c + x.c * y.b,
                    c: x.c * y.c,
                }
            }
            ArithOp::Div => {
                if y.degree() != 0 {
                    return Err(FtlError::Unsupported(
                        "division by a time-varying term".into(),
                    ));
                }
                if y.c == 0.0 {
                    return Err(FtlError::Type("division by zero".into()));
                }
                QuadPiece { iv, a: x.a / y.c, b: x.b / y.c, c: x.c / y.c }
            }
        };
        pieces.push(p);
    }
    Ok(Quad(pieces))
}

/// Coerces a form into piecewise quadratics; errors on non-numeric input or
/// on `DIST` inside arithmetic.
fn to_quad(f: TermForm, h: Horizon) -> FtlResult<Vec<QuadPiece>> {
    let full = Interval::new(0, h.end());
    match f {
        TermForm::Quad(p) => Ok(p),
        TermForm::Invariant(v) => match v.as_f64() {
            Some(x) => Ok(vec![QuadPiece::constant(full, x)]),
            None => Err(FtlError::Type(format!(
                "non-numeric value {v} used in arithmetic"
            ))),
        },
        TermForm::Values(_) => Err(FtlError::Type(
            "non-numeric attribute series used in arithmetic".into(),
        )),
        TermForm::SqrtQuad(_) => Err(FtlError::Unsupported(
            "DIST may not appear inside arithmetic; compare it directly".into(),
        )),
    }
}

/// Aligns two piecewise lists on their interval overlaps.
fn align(a: &[QuadPiece], b: &[QuadPiece]) -> Vec<(Interval, QuadPiece, QuadPiece)> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if let Some(iv) = x.iv.intersect(y.iv) {
                out.push((iv, *x, *y));
            }
        }
    }
    out
}

/// The tick set on which `lhs op rhs` holds, for one instantiation.
///
/// Exact at integer ticks: the assembled solution is reconciled against
/// per-tick evaluation of the original terms.
pub fn compare_terms(
    ctx: &dyn EvalContext,
    env: &Env,
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
) -> FtlResult<IntervalSet> {
    let h = ctx.horizon();
    let fa = build_form(ctx, env, lhs)?;
    let fb = build_form(ctx, env, rhs)?;
    let candidate = compare_forms(op, &fa, &fb, h)?;
    // Reconcile against the exact per-tick truth.
    let exact = |t: Tick| -> bool {
        let (a, b) = match (eval_term(ctx, env, lhs, t), eval_term(ctx, env, rhs, t)) {
            (Ok(a), Ok(b)) => (a, b),
            _ => return false,
        };
        if a == Value::Null || b == Value::Null {
            return false;
        }
        op.apply(&a, &b)
    };
    let real = RealIntervals::of(
        candidate
            .intervals()
            .iter()
            .map(|iv| most_spatial::roots::RealInterval {
                lo: iv.begin() as f64,
                hi: iv.end() as f64,
            })
            .collect(),
    );
    Ok(exact_ticks(&real, h, exact))
}

fn compare_forms(
    op: CmpOp,
    fa: &TermForm,
    fb: &TermForm,
    h: Horizon,
) -> FtlResult<IntervalSet> {
    use TermForm::*;
    match (fa, fb) {
        // Undefined on either side: unsatisfied.
        (Invariant(Value::Null), _) | (_, Invariant(Value::Null)) => Ok(IntervalSet::empty()),
        // Two constants (numeric or not): one comparison decides the whole
        // horizon.
        (Invariant(a), Invariant(b)) => Ok(if op.apply(a, b) {
            IntervalSet::full(h)
        } else {
            IntervalSet::empty()
        }),
        // Piecewise non-numeric values vs a constant.
        (Values(series), Invariant(v)) => Ok(values_vs_const(op, series, v)),
        (Invariant(v), Values(series)) => Ok(values_vs_const(op.flipped(), series, v)),
        (Values(sa), Values(sb)) => {
            let mut out = IntervalSet::empty();
            for (ia, va) in sa {
                for (ib, vb) in sb {
                    if let Some(iv) = ia.intersect(*ib) {
                        if op.apply(va, vb) {
                            out = out.union(&IntervalSet::singleton(iv));
                        }
                    }
                }
            }
            Ok(out)
        }
        (Values(_), _) | (_, Values(_)) => Err(FtlError::Type(
            "comparison between a non-numeric series and a numeric term".into(),
        )),
        // sqrt vs sqrt: both sides non-negative, compare the radicands.
        (SqrtQuad(pa), SqrtQuad(pb)) => {
            solve_aligned(op, pa, pb, |op, iv, x, y| quad_cmp(op, iv, x, y, h))
        }
        // sqrt vs polynomial.
        (SqrtQuad(pa), _) => {
            let pb = to_quad(fb.clone(), h)?;
            solve_aligned(op, pa, &pb, |op, iv, q, r| sqrt_vs_quad(op, iv, q, r, h))
        }
        (_, SqrtQuad(pb)) => {
            let pa = to_quad(fa.clone(), h)?;
            solve_aligned(op.flipped(), pb, &pa, |op, iv, q, r| {
                sqrt_vs_quad(op, iv, q, r, h)
            })
        }
        // Polynomial vs polynomial (includes Invariant numerics).
        _ => {
            let pa = to_quad(fa.clone(), h)?;
            let pb = to_quad(fb.clone(), h)?;
            solve_aligned(op, &pa, &pb, |op, iv, x, y| quad_cmp(op, iv, x, y, h))
        }
    }
}

fn values_vs_const(op: CmpOp, series: &[(Interval, Value)], v: &Value) -> IntervalSet {
    IntervalSet::from_intervals(
        series
            .iter()
            .filter(|(_, sv)| *sv != Value::Null && op.apply(sv, v))
            .map(|(iv, _)| *iv),
    )
}

fn solve_aligned(
    op: CmpOp,
    pa: &[QuadPiece],
    pb: &[QuadPiece],
    piece_solver: impl Fn(CmpOp, Interval, &QuadPiece, &QuadPiece) -> FtlResult<IntervalSet>,
) -> FtlResult<IntervalSet> {
    let mut out = IntervalSet::empty();
    for (iv, x, y) in align(pa, pb) {
        let sol = piece_solver(op, iv, &x, &y)?;
        out = out.union(&sol.intersect(&IntervalSet::singleton(iv)));
    }
    Ok(out)
}

/// Ticks in `iv` where `x(t) op y(t)` for two quadratics.
fn quad_cmp(
    op: CmpOp,
    iv: Interval,
    x: &QuadPiece,
    y: &QuadPiece,
    h: Horizon,
) -> FtlResult<IntervalSet> {
    let (da, db, dc) = (x.a - y.a, x.b - y.b, x.c - y.c);
    let le = || {
        let sol = solve_quadratic_le(da, db, dc).clipped(iv.begin() as f64, iv.end() as f64);
        exact_ticks(&sol, h, |t| {
            let tf = t as f64;
            x.eval(tf) <= y.eval(tf)
        })
    };
    let ge = || {
        let sol =
            solve_quadratic_le(-da, -db, -dc).clipped(iv.begin() as f64, iv.end() as f64);
        exact_ticks(&sol, h, |t| {
            let tf = t as f64;
            x.eval(tf) >= y.eval(tf)
        })
    };
    let piece = IntervalSet::singleton(iv);
    Ok(match op {
        CmpOp::Le => le(),
        CmpOp::Ge => ge(),
        CmpOp::Eq => le().intersect(&ge()),
        CmpOp::Lt => piece.difference(&ge(), h),
        CmpOp::Gt => piece.difference(&le(), h),
        CmpOp::Ne => piece.difference(&le().intersect(&ge()), h),
    })
}

/// Ticks in `iv` where `sqrt(q(t)) op r(t)`; `r` must have degree ≤ 1 so
/// `r²` stays quadratic.
fn sqrt_vs_quad(
    op: CmpOp,
    iv: Interval,
    q: &QuadPiece,
    r: &QuadPiece,
    h: Horizon,
) -> FtlResult<IntervalSet> {
    if r.degree() > 1 {
        return Err(FtlError::Unsupported(
            "comparing DIST against a quadratic term would exceed quadratic degree".into(),
        ));
    }
    // r² = (r.b t + r.c)²
    let (sa, sb, sc) = (r.b * r.b, 2.0 * r.b * r.c, r.c * r.c);
    let lo = iv.begin() as f64;
    let hi = iv.end() as f64;
    let piece = IntervalSet::singleton(iv);
    // ticks where r(t) >= 0 / <= 0 (linear).
    let r_nonneg = || {
        let sol = solve_quadratic_le(0.0, -r.b, -r.c).clipped(lo, hi);
        exact_ticks(&sol, h, |t| r.eval(t as f64) >= 0.0)
    };
    let r_nonpos = || {
        let sol = solve_quadratic_le(0.0, r.b, r.c).clipped(lo, hi);
        exact_ticks(&sol, h, |t| r.eval(t as f64) <= 0.0)
    };
    // ticks where q(t) <= r(t)² / >= r(t)².
    let q_le_r2 = || {
        let sol = solve_quadratic_le(q.a - sa, q.b - sb, q.c - sc).clipped(lo, hi);
        exact_ticks(&sol, h, |t| {
            let tf = t as f64;
            let rv = r.eval(tf);
            q.eval(tf) <= rv * rv
        })
    };
    let q_ge_r2 = || {
        let sol = solve_quadratic_le(sa - q.a, sb - q.b, sc - q.c).clipped(lo, hi);
        exact_ticks(&sol, h, |t| {
            let tf = t as f64;
            let rv = r.eval(tf);
            q.eval(tf) >= rv * rv
        })
    };
    let le = || r_nonneg().intersect(&q_le_r2());
    let ge = || r_nonpos().union(&q_ge_r2().intersect(&r_nonneg()));
    Ok(match op {
        CmpOp::Le => le(),
        CmpOp::Ge => ge(),
        CmpOp::Eq => le().intersect(&ge()),
        CmpOp::Lt => piece.difference(&ge(), h),
        CmpOp::Gt => piece.difference(&le(), h),
        CmpOp::Ne => piece.difference(&le().intersect(&ge()), h),
    })
}

/// The piecewise-constant value series of a term — the relation `Q` of the
/// appendix's assignment-quantifier case: `(value, ticks)` pairs.
///
/// Terms that vary continuously (positions, `time`, `DIST`) are rejected:
/// their value series has one entry per tick, which is the infinite-relation
/// case the paper defers ("for cases where these relations are infinite in
/// size, we need to use some finite representations").
pub fn value_series(
    ctx: &dyn EvalContext,
    env: &Env,
    term: &Term,
) -> FtlResult<Vec<(Value, IntervalSet)>> {
    let h = ctx.horizon();
    match build_form(ctx, env, term)? {
        TermForm::Invariant(v) => Ok(vec![(v, IntervalSet::full(h))]),
        TermForm::Values(series) => Ok(group_series(
            series.into_iter().map(|(iv, v)| (v, iv)).collect(),
        )),
        TermForm::Quad(pieces) => {
            if pieces.iter().any(|p| p.degree() > 0) {
                return Err(FtlError::Unsupported(
                    "assignment of a continuously-varying term (bind sub-attributes such as SPEED instead, or use the bounded temporal operators)"
                        .into(),
                ));
            }
            Ok(group_series(
                pieces
                    .into_iter()
                    .map(|p| (Value::from(p.c), p.iv))
                    .collect(),
            ))
        }
        TermForm::SqrtQuad(_) => Err(FtlError::Unsupported(
            "assignment of DIST is continuously varying; compare it directly".into(),
        )),
    }
}

fn group_series(entries: Vec<(Value, Interval)>) -> Vec<(Value, IntervalSet)> {
    let mut grouped: Vec<(Value, Vec<Interval>)> = Vec::new();
    for (v, iv) in entries {
        match grouped.iter_mut().find(|(gv, _)| *gv == v) {
            Some((_, ivs)) => ivs.push(iv),
            None => grouped.push((v, vec![iv])),
        }
    }
    grouped
        .into_iter()
        .map(|(v, ivs)| (v, IntervalSet::from_intervals(ivs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MemoryContext;
    use most_spatial::{Point, Velocity};

    fn ctx() -> MemoryContext {
        let mut c = MemoryContext::new(100);
        c.add_object(
            1,
            Trajectory::starting_at(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0)),
        );
        c.add_object(
            2,
            Trajectory::starting_at(Point::new(80.0, 0.0), Velocity::new(-1.0, 0.0)),
        );
        c.set_attr(1, "PRICE", 80.0);
        c
    }

    fn env2() -> Env {
        let mut e = Env::new();
        e.bind("o", Value::Id(1));
        e.bind("n", Value::Id(2));
        e
    }

    fn brute(c: &MemoryContext, env: &Env, op: CmpOp, l: &Term, r: &Term) -> IntervalSet {
        IntervalSet::from_predicate(c.horizon(), |t| {
            let a = eval_term(c, env, l, t).unwrap();
            let b = eval_term(c, env, r, t).unwrap();
            a != Value::Null && b != Value::Null && op.apply(&a, &b)
        })
    }

    #[test]
    fn position_comparison_linear() {
        let c = ctx();
        let env = env2();
        // o.X >= 30 from tick 30 onwards.
        let l = Term::attr(Term::var("o"), "X");
        let r = Term::val(30.0);
        for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt, CmpOp::Eq, CmpOp::Ne] {
            let got = compare_terms(&c, &env, op, &l, &r).unwrap();
            assert_eq!(got, brute(&c, &env, op, &l, &r), "{op:?}");
        }
    }

    #[test]
    fn dist_comparison_quadratic() {
        let c = ctx();
        let env = env2();
        // Objects approach head-on from 80 apart at closing speed 2.
        let l = Term::Dist(Box::new(Term::var("o")), Box::new(Term::var("n")));
        let r = Term::val(10.0);
        for op in [CmpOp::Le, CmpOp::Ge, CmpOp::Lt, CmpOp::Gt] {
            let got = compare_terms(&c, &env, op, &l, &r).unwrap();
            assert_eq!(got, brute(&c, &env, op, &l, &r), "{op:?}");
        }
        let le = compare_terms(&c, &env, CmpOp::Le, &l, &r).unwrap();
        assert_eq!(le.first_tick(), Some(35));
        assert_eq!(le.last_tick(), Some(45));
    }

    #[test]
    fn dist_vs_linear_term() {
        let c = ctx();
        let env = env2();
        // DIST(o, n) <= time: distance shrinks 80-2t, time grows.
        let l = Term::Dist(Box::new(Term::var("o")), Box::new(Term::var("n")));
        let r = Term::Time;
        let got = compare_terms(&c, &env, CmpOp::Le, &l, &r).unwrap();
        assert_eq!(got, brute(&c, &env, CmpOp::Le, &l, &r));
    }

    #[test]
    fn dist_vs_dist() {
        let c = ctx();
        let env = env2();
        let l = Term::Dist(Box::new(Term::var("o")), Box::new(Term::Point(0.0, 0.0)));
        let r = Term::Dist(Box::new(Term::var("n")), Box::new(Term::Point(0.0, 0.0)));
        for op in [CmpOp::Le, CmpOp::Ge] {
            let got = compare_terms(&c, &env, op, &l, &r).unwrap();
            assert_eq!(got, brute(&c, &env, op, &l, &r), "{op:?}");
        }
    }

    #[test]
    fn arithmetic_on_positions() {
        let c = ctx();
        let env = env2();
        // o.X + n.X is constant (80): equality holds everywhere.
        let l = Term::Arith(
            ArithOp::Add,
            Box::new(Term::attr(Term::var("o"), "X")),
            Box::new(Term::attr(Term::var("n"), "X")),
        );
        let r = Term::val(80.0);
        let got = compare_terms(&c, &env, CmpOp::Eq, &l, &r).unwrap();
        assert_eq!(got, IntervalSet::full(c.horizon()));
        // o.X * 2 <= 50 up to tick 25.
        let l = Term::Arith(
            ArithOp::Mul,
            Box::new(Term::attr(Term::var("o"), "X")),
            Box::new(Term::val(2.0)),
        );
        let r = Term::val(50.0);
        let got = compare_terms(&c, &env, CmpOp::Le, &l, &r).unwrap();
        assert_eq!(got, brute(&c, &env, CmpOp::Le, &l, &r));
        assert_eq!(got.last_tick(), Some(25));
    }

    #[test]
    fn linear_times_linear_is_quadratic() {
        let c = ctx();
        let env = env2();
        // o.X * n.X = t(80-t) <= 700  ⇔  t <= 10 or t >= 70.
        let l = Term::Arith(
            ArithOp::Mul,
            Box::new(Term::attr(Term::var("o"), "X")),
            Box::new(Term::attr(Term::var("n"), "X")),
        );
        let r = Term::val(700.0);
        let got = compare_terms(&c, &env, CmpOp::Le, &l, &r).unwrap();
        assert_eq!(got, brute(&c, &env, CmpOp::Le, &l, &r));
        assert_eq!(got.span_count(), 2);
    }

    #[test]
    fn unsupported_cubic_product() {
        let c = ctx();
        let env = env2();
        let x = Term::attr(Term::var("o"), "X");
        let sq = Term::Arith(ArithOp::Mul, Box::new(x.clone()), Box::new(x.clone()));
        let cubic = Term::Arith(ArithOp::Mul, Box::new(sq), Box::new(x));
        assert!(matches!(
            compare_terms(&c, &env, CmpOp::Le, &cubic, &Term::val(1.0)),
            Err(FtlError::Unsupported(_))
        ));
    }

    #[test]
    fn dist_inside_arithmetic_rejected() {
        let c = ctx();
        let env = env2();
        let d = Term::Dist(Box::new(Term::var("o")), Box::new(Term::var("n")));
        let t = Term::Arith(ArithOp::Add, Box::new(d), Box::new(Term::val(1.0)));
        assert!(matches!(
            compare_terms(&c, &env, CmpOp::Le, &t, &Term::val(10.0)),
            Err(FtlError::Unsupported(_))
        ));
    }

    #[test]
    fn missing_attribute_yields_empty() {
        let c = ctx();
        let env = env2();
        let l = Term::attr(Term::var("o"), "MISSING");
        let got = compare_terms(&c, &env, CmpOp::Le, &l, &Term::val(10.0)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn piecewise_attr_series_comparison() {
        let mut c = ctx();
        c.set_attr_series(
            1,
            "STATUS",
            vec![
                (Value::from("moving"), Interval::new(0, 49)),
                (Value::from("parked"), Interval::new(50, 100)),
            ],
        );
        let env = env2();
        let l = Term::attr(Term::var("o"), "STATUS");
        let got =
            compare_terms(&c, &env, CmpOp::Eq, &l, &Term::val("parked")).unwrap();
        assert_eq!(got, IntervalSet::singleton(Interval::new(50, 100)));
        let got =
            compare_terms(&c, &env, CmpOp::Ne, &l, &Term::val("parked")).unwrap();
        assert_eq!(got, IntervalSet::singleton(Interval::new(0, 49)));
    }

    #[test]
    fn speed_series_for_assignment() {
        let mut c = MemoryContext::new(100);
        let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(5.0, 0.0));
        traj.update_velocity(30, Velocity::new(10.0, 0.0));
        c.add_object(1, traj);
        let mut env = Env::new();
        env.bind("o", Value::Id(1));
        let series = value_series(&c, &env, &Term::attr(Term::var("o"), "SPEED")).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, Value::from(5.0));
        assert_eq!(series[1].0, Value::from(10.0));
        // Continuously varying terms are rejected.
        assert!(matches!(
            value_series(&c, &env, &Term::attr(Term::var("o"), "X")),
            Err(FtlError::Unsupported(_))
        ));
        assert!(matches!(
            value_series(&c, &env, &Term::Time),
            Err(FtlError::Unsupported(_))
        ));
    }

    #[test]
    fn piecewise_velocity_comparison() {
        let mut c = MemoryContext::new(100);
        let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(5.0, 0.0));
        traj.update_velocity(30, Velocity::new(10.0, 0.0));
        c.add_object(1, traj);
        let mut env = Env::new();
        env.bind("o", Value::Id(1));
        // The paper's Section 2.1 query: objects whose speed in X is 5.
        let got = compare_terms(
            &c,
            &env,
            CmpOp::Eq,
            &Term::attr(Term::var("o"), "VX"),
            &Term::val(5.0),
        )
        .unwrap();
        assert_eq!(got, IntervalSet::singleton(Interval::new(0, 29)));
    }
}
