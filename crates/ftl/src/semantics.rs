//! The reference evaluator: a direct transcription of Section 3.3's
//! satisfaction relation, evaluated state by state.
//!
//! This module serves three purposes:
//!
//! 1. **Specification** — [`satisfies`] is written to mirror the prose
//!    semantics, one clause per case, so the interval algorithm in
//!    [`crate::eval`] can be property-tested against it.
//! 2. **Baseline** — it is the "evaluate the query at every point in time"
//!    strategy that Section 6 says an object-oriented system with black-box
//!    methods is forced into; benchmark E4 measures the interval algorithm
//!    against [`naive_answer`].
//! 3. **Exact per-tick truth** — the numeric analysis uses [`eval_term`] /
//!    [`eval_atom`] to verify interval boundaries.

use crate::ast::{CmpOp, Formula, Query, Term};
use crate::context::EvalContext;
use crate::error::{FtlError, FtlResult};
use most_dbms::value::Value;
use most_spatial::predicates::min_enclosing_circle;
use most_spatial::Point;
use most_temporal::{IntervalSet, Tick};
use std::collections::HashMap;

/// A variable evaluation ρ: "a mapping that associates a value with each
/// variable".
#[derive(Debug, Clone, Default)]
pub struct Env {
    bindings: HashMap<String, Value>,
}

impl Env {
    /// Empty evaluation.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds `var` to `value`, returning the previous binding.
    pub fn bind(&mut self, var: impl Into<String>, value: Value) -> Option<Value> {
        self.bindings.insert(var.into(), value)
    }

    /// Rebinds `var` in place, reusing the existing key allocation when the
    /// variable is already bound.  The atom evaluator rebinds the same
    /// handful of variables once per candidate object, so avoiding a fresh
    /// `String` per binding removes the dominant allocation of the
    /// enumeration loop.
    pub fn set(&mut self, var: &str, value: Value) {
        match self.bindings.get_mut(var) {
            Some(slot) => *slot = value,
            None => {
                self.bindings.insert(var.to_owned(), value);
            }
        }
    }

    /// Restores `var` to `previous` (or unbinds when `None`).
    pub fn restore(&mut self, var: &str, previous: Option<Value>) {
        match previous {
            Some(v) => {
                self.bindings.insert(var.to_owned(), v);
            }
            None => {
                self.bindings.remove(var);
            }
        }
    }

    /// Looks up a binding.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.bindings.get(var)
    }
}

/// Evaluates a term in state `t` under evaluation `env`.
///
/// Undefined values (missing attribute, missing object) evaluate to
/// [`Value::Null`]; comparisons involving `Null` are unsatisfied, matching
/// the convention that a predicate over undefined data simply does not
/// hold.
pub fn eval_term(
    ctx: &dyn EvalContext,
    env: &Env,
    term: &Term,
    t: Tick,
) -> FtlResult<Value> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Time => Ok(Value::Time(t)),
        Term::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| FtlError::Unsafe(format!("unbound variable `{name}`"))),
        Term::Point(..) => Err(FtlError::Type(
            "a POINT literal has no scalar value; use it inside DIST or INSIDE".into(),
        )),
        Term::Attr(base, attr) => {
            let id = match eval_term(ctx, env, base, t)? {
                Value::Id(id) => id,
                Value::Null => return Ok(Value::Null),
                other => {
                    return Err(FtlError::Type(format!(
                        "attribute `.{attr}` applied to non-object value {other}"
                    )))
                }
            };
            eval_attr(ctx, id, attr, t)
        }
        Term::Dist(a, b) => {
            match (resolve_point(ctx, env, a, t)?, resolve_point(ctx, env, b, t)?) {
                (Some(pa), Some(pb)) => Ok(Value::from(pa.dist(pb))),
                _ => Ok(Value::Null),
            }
        }
        Term::Arith(op, a, b) => {
            let av = eval_term(ctx, env, a, t)?;
            let bv = eval_term(ctx, env, b, t)?;
            match (av.as_f64(), bv.as_f64()) {
                (Some(x), Some(y)) => {
                    use crate::ast::ArithOp::*;
                    let r = match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => x / y,
                    };
                    Ok(Value::from(r))
                }
                _ if av == Value::Null || bv == Value::Null => Ok(Value::Null),
                _ => Err(FtlError::Type(format!(
                    "arithmetic on non-numeric values {av} and {bv}"
                ))),
            }
        }
    }
}

/// Evaluates the attribute `id.attr` at tick `t`.  The names `X`, `Y`,
/// `VX`, `VY` and `SPEED` read the moving-object position / motion vector;
/// other names read the attribute series.
pub fn eval_attr(ctx: &dyn EvalContext, id: u64, attr: &str, t: Tick) -> FtlResult<Value> {
    match attr {
        "X" | "Y" | "VX" | "VY" | "SPEED" => {
            let Some(traj) = ctx.trajectory(id) else {
                return Ok(Value::Null);
            };
            let v = match attr {
                "X" => traj.position_at_tick(t).x,
                "Y" => traj.position_at_tick(t).y,
                "VX" => traj.velocity_at_tick(t).dx,
                "VY" => traj.velocity_at_tick(t).dy,
                _ => traj.velocity_at_tick(t).speed(),
            };
            Ok(Value::from(v))
        }
        _ => {
            for (iv, [a, b, c]) in ctx.dynamic_series(id, attr) {
                if iv.contains(t) {
                    let tf = t as f64;
                    return Ok(Value::from((a * tf + b) * tf + c));
                }
            }
            for (value, iv) in ctx.attr_series(id, attr) {
                if iv.contains(t) {
                    return Ok(value);
                }
            }
            Ok(Value::Null)
        }
    }
}

/// Resolves a term to a point in space at tick `t` (object position or
/// POINT literal); `None` when undefined.
pub fn resolve_point(
    ctx: &dyn EvalContext,
    env: &Env,
    term: &Term,
    t: Tick,
) -> FtlResult<Option<Point>> {
    match term {
        Term::Point(x, y) => Ok(Some(Point::new(*x, *y))),
        _ => match eval_term(ctx, env, term, t)? {
            Value::Id(id) => Ok(ctx.trajectory(id).map(|traj| traj.position_at_tick(t))),
            Value::Null => Ok(None),
            other => Err(FtlError::Type(format!(
                "expected a point-valued term, got {other}"
            ))),
        },
    }
}

/// Comparison with the Null-is-undefined convention.
fn cmp_defined(op: CmpOp, a: &Value, b: &Value) -> bool {
    if *a == Value::Null || *b == Value::Null {
        return false;
    }
    op.apply(a, b)
}

/// Evaluates an atomic formula at state `t` (shared with the numeric
/// analysis for boundary verification).
pub fn eval_atom(
    ctx: &dyn EvalContext,
    env: &Env,
    f: &Formula,
    t: Tick,
) -> FtlResult<bool> {
    match f {
        Formula::Bool(b) => Ok(*b),
        Formula::Cmp(op, a, b) => Ok(cmp_defined(
            *op,
            &eval_term(ctx, env, a, t)?,
            &eval_term(ctx, env, b, t)?,
        )),
        Formula::Inside(term, region) => {
            let poly = ctx
                .region(region)
                .ok_or_else(|| FtlError::UnknownRegion(region.clone()))?;
            Ok(resolve_point(ctx, env, term, t)?.is_some_and(|p| poly.contains(p)))
        }
        Formula::Outside(term, region) => {
            let poly = ctx
                .region(region)
                .ok_or_else(|| FtlError::UnknownRegion(region.clone()))?;
            Ok(resolve_point(ctx, env, term, t)?.is_some_and(|p| !poly.contains(p)))
        }
        Formula::InsideMoving(term, region, anchor)
        | Formula::OutsideMoving(term, region, anchor) => {
            let poly = ctx
                .region(region)
                .ok_or_else(|| FtlError::UnknownRegion(region.clone()))?;
            // The region rides with the anchor: at state t it is translated
            // by the anchor's displacement since evaluation time.
            let inside = match (
                resolve_point(ctx, env, term, t)?,
                resolve_point(ctx, env, anchor, t)?,
                resolve_point(ctx, env, anchor, 0)?,
            ) {
                (Some(p), Some(a_now), Some(a_start)) => {
                    let offset = a_now.delta(a_start);
                    poly.translated(offset).contains(p)
                }
                _ => return Ok(false),
            };
            Ok(match f {
                Formula::InsideMoving(..) => inside,
                _ => !inside,
            })
        }
        Formula::WithinSphere(r, terms) => {
            let mut pts = Vec::with_capacity(terms.len());
            for term in terms {
                match resolve_point(ctx, env, term, t)? {
                    Some(p) => pts.push(p),
                    None => return Ok(false),
                }
            }
            if pts.is_empty() {
                return Ok(true);
            }
            Ok(min_enclosing_circle(&pts).radius <= *r + 1e-9)
        }
        other => Err(FtlError::Type(format!(
            "eval_atom called on a non-atomic formula: {other}"
        ))),
    }
}

/// The Section 3.3 satisfaction relation: does `f` hold at state `t` of the
/// (implicit, horizon-truncated) history, under evaluation `env`?
pub fn satisfies(
    ctx: &dyn EvalContext,
    f: &Formula,
    env: &mut Env,
    t: Tick,
) -> FtlResult<bool> {
    let h_end = ctx.horizon().end();
    match f {
        Formula::Bool(_)
        | Formula::Cmp(..)
        | Formula::Inside(..)
        | Formula::Outside(..)
        | Formula::InsideMoving(..)
        | Formula::OutsideMoving(..)
        | Formula::WithinSphere(..) => eval_atom(ctx, env, f, t),
        Formula::And(a, b) => Ok(satisfies(ctx, a, env, t)? && satisfies(ctx, b, env, t)?),
        Formula::Or(a, b) => Ok(satisfies(ctx, a, env, t)? || satisfies(ctx, b, env, t)?),
        Formula::Not(a) => Ok(!satisfies(ctx, a, env, t)?),
        Formula::Nexttime(a) => {
            if t + 1 > h_end {
                Ok(false)
            } else {
                satisfies(ctx, a, env, t + 1)
            }
        }
        Formula::Until(a, b) => {
            // "either g is satisfied at that state, or there exists a future
            // state where g is satisfied and until then f continues to be
            // satisfied."
            for t2 in t..=h_end {
                if satisfies(ctx, b, env, t2)? {
                    return Ok(true);
                }
                if !satisfies(ctx, a, env, t2)? {
                    return Ok(false);
                }
            }
            Ok(false)
        }
        Formula::UntilWithin(c, a, b) => {
            for t2 in t..=(t + c).min(h_end) {
                if satisfies(ctx, b, env, t2)? {
                    return Ok(true);
                }
                if !satisfies(ctx, a, env, t2)? {
                    return Ok(false);
                }
            }
            Ok(false)
        }
        Formula::Eventually(a) => {
            for t2 in t..=h_end {
                if satisfies(ctx, a, env, t2)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Always(a) => {
            for t2 in t..=h_end {
                if !satisfies(ctx, a, env, t2)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::EventuallyWithin(c, a) => {
            for t2 in t..=(t + c).min(h_end) {
                if satisfies(ctx, a, env, t2)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::EventuallyAfter(c, a) => {
            if t + c > h_end {
                return Ok(false);
            }
            for t2 in (t + c)..=h_end {
                if satisfies(ctx, a, env, t2)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::AlwaysFor(c, a) => {
            if t + c > h_end {
                return Ok(false);
            }
            for t2 in t..=(t + c) {
                if !satisfies(ctx, a, env, t2)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Assign(x, term, body) => {
            let v = eval_term(ctx, env, term, t)?;
            let prev = env.bind(x.clone(), v);
            let r = satisfies(ctx, body, env, t);
            env.restore(x, prev);
            r
        }
    }
}

/// Evaluates a query by brute force: every instantiation of the target
/// variables over the object domain, every tick of the horizon.
///
/// This is the E4 baseline ("evaluate the query at every point in time")
/// and the oracle the interval algorithm is tested against.  All free
/// variables of the formula must be object variables and must appear in the
/// target list.
pub fn naive_answer(ctx: &dyn EvalContext, q: &Query) -> FtlResult<crate::answer::Answer> {
    let free = q.formula.free_vars();
    for v in &free {
        if !q.targets.contains(v) {
            return Err(FtlError::Unsafe(format!(
                "free variable `{v}` missing from the RETRIEVE list"
            )));
        }
    }
    let ids = ctx.object_ids();
    let h = ctx.horizon();
    let mut tuples = Vec::new();
    let mut inst: Vec<Value> = Vec::with_capacity(q.targets.len());
    fn rec(
        ctx: &dyn EvalContext,
        q: &Query,
        ids: &[u64],
        h: most_temporal::Horizon,
        inst: &mut Vec<Value>,
        tuples: &mut Vec<crate::answer::AnswerTuple>,
    ) -> FtlResult<()> {
        if inst.len() == q.targets.len() {
            let mut env = Env::new();
            for (name, v) in q.targets.iter().zip(inst.iter()) {
                env.bind(name.clone(), v.clone());
            }
            let mut sat = Vec::new();
            for t in h.ticks() {
                sat.push(satisfies(ctx, &q.formula, &mut env, t)?);
            }
            let set = IntervalSet::from_predicate(h, |t| sat[t as usize]);
            if !set.is_empty() {
                tuples.push(crate::answer::AnswerTuple {
                    values: inst.clone(),
                    intervals: set,
                });
            }
            return Ok(());
        }
        for &id in ids {
            inst.push(Value::Id(id));
            rec(ctx, q, ids, h, inst, tuples)?;
            inst.pop();
        }
        Ok(())
    }
    rec(ctx, q, &ids, h, &mut inst, &mut tuples)?;
    Ok(crate::answer::Answer::new(q.targets.clone(), tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MemoryContext;
    use most_spatial::{Polygon, Trajectory, Velocity};

    fn ctx() -> MemoryContext {
        let mut c = MemoryContext::new(100);
        c.add_object(
            1,
            Trajectory::starting_at(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0)),
        );
        c.add_object(
            2,
            Trajectory::starting_at(Point::new(50.0, 0.0), Velocity::zero()),
        );
        c.set_attr(1, "PRICE", 80.0);
        c.set_attr(2, "PRICE", 120.0);
        c.add_region("P", Polygon::rectangle(40.0, -10.0, 60.0, 10.0));
        c
    }

    fn env_for(id: u64) -> Env {
        let mut e = Env::new();
        e.bind("o", Value::Id(id));
        e
    }

    #[test]
    fn term_evaluation() {
        let c = ctx();
        let env = env_for(1);
        assert_eq!(
            eval_term(&c, &env, &Term::attr(Term::var("o"), "X"), 5).unwrap(),
            Value::from(5.0)
        );
        assert_eq!(
            eval_term(&c, &env, &Term::attr(Term::var("o"), "SPEED"), 5).unwrap(),
            Value::from(1.0)
        );
        assert_eq!(
            eval_term(&c, &env, &Term::attr(Term::var("o"), "PRICE"), 5).unwrap(),
            Value::from(80.0)
        );
        assert_eq!(
            eval_term(&c, &env, &Term::attr(Term::var("o"), "MISSING"), 5).unwrap(),
            Value::Null
        );
        assert_eq!(eval_term(&c, &env, &Term::Time, 7).unwrap(), Value::Time(7));
        // DIST between the two objects at t=0 is 50.
        let mut env2 = env_for(1);
        env2.bind("n", Value::Id(2));
        let d = Term::Dist(Box::new(Term::var("o")), Box::new(Term::var("n")));
        assert_eq!(eval_term(&c, &env2, &d, 0).unwrap(), Value::from(50.0));
        assert_eq!(eval_term(&c, &env2, &d, 10).unwrap(), Value::from(40.0));
    }

    #[test]
    fn unbound_variable_is_unsafe() {
        let c = ctx();
        let env = Env::new();
        assert!(matches!(
            eval_term(&c, &env, &Term::var("zzz"), 0),
            Err(FtlError::Unsafe(_))
        ));
    }

    #[test]
    fn null_comparisons_unsatisfied() {
        let c = ctx();
        let mut env = env_for(1);
        // MISSING = MISSING would be Null = Null: still unsatisfied.
        let f = Formula::Cmp(
            CmpOp::Eq,
            Term::attr(Term::var("o"), "MISSING"),
            Term::attr(Term::var("o"), "MISSING"),
        );
        assert!(!satisfies(&c, &f, &mut env, 0).unwrap());
    }

    #[test]
    fn inside_outside_at_states() {
        let c = ctx();
        let mut env = env_for(1);
        let inside = Formula::Inside(Term::var("o"), "P".into());
        let outside = Formula::Outside(Term::var("o"), "P".into());
        assert!(!satisfies(&c, &inside, &mut env, 0).unwrap());
        assert!(satisfies(&c, &inside, &mut env, 50).unwrap());
        assert!(satisfies(&c, &outside, &mut env, 0).unwrap());
        assert!(!satisfies(&c, &outside, &mut env, 50).unwrap());
        // Unknown region errors.
        let bad = Formula::Inside(Term::var("o"), "NOPE".into());
        assert!(matches!(
            satisfies(&c, &bad, &mut env, 0),
            Err(FtlError::UnknownRegion(_))
        ));
    }

    #[test]
    fn temporal_operators_on_states() {
        let c = ctx();
        let mut env = env_for(1);
        let inside = Formula::Inside(Term::var("o"), "P".into());
        // Object 1 is inside P during ticks 40..=60.
        let ev = Formula::Eventually(Box::new(inside.clone()));
        assert!(satisfies(&c, &ev, &mut env, 0).unwrap());
        assert!(satisfies(&c, &ev, &mut env, 60).unwrap());
        assert!(!satisfies(&c, &ev, &mut env, 61).unwrap());
        let evw = Formula::EventuallyWithin(10, Box::new(inside.clone()));
        assert!(satisfies(&c, &evw, &mut env, 30).unwrap());
        assert!(!satisfies(&c, &evw, &mut env, 29).unwrap());
        let eva = Formula::EventuallyAfter(15, Box::new(inside.clone()));
        assert!(satisfies(&c, &eva, &mut env, 40).unwrap()); // 40+15 <= 60
        assert!(!satisfies(&c, &eva, &mut env, 46).unwrap());
        let af = Formula::AlwaysFor(5, Box::new(inside.clone()));
        assert!(satisfies(&c, &af, &mut env, 40).unwrap());
        assert!(satisfies(&c, &af, &mut env, 55).unwrap());
        assert!(!satisfies(&c, &af, &mut env, 56).unwrap());
        let nx = Formula::Nexttime(Box::new(inside.clone()));
        assert!(satisfies(&c, &nx, &mut env, 39).unwrap());
        assert!(!satisfies(&c, &nx, &mut env, 60).unwrap());
    }

    #[test]
    fn until_scan_semantics() {
        let c = ctx();
        let mut env = env_for(1);
        // OUTSIDE(o,P) Until INSIDE(o,P): holds from 0 (outside until entering).
        let f = Formula::Outside(Term::var("o"), "P".into())
            .until(Formula::Inside(Term::var("o"), "P".into()));
        assert!(satisfies(&c, &f, &mut env, 0).unwrap());
        assert!(satisfies(&c, &f, &mut env, 60).unwrap()); // inside now
        assert!(!satisfies(&c, &f, &mut env, 61).unwrap()); // outside forever after
    }

    #[test]
    fn assignment_binds_current_value() {
        let c = ctx();
        let mut env = env_for(1);
        // [x <- o.X] Nexttime (o.X = x + 1): x advances by 1 per tick.
        let f = Formula::Assign(
            "x".into(),
            Term::attr(Term::var("o"), "X"),
            Box::new(Formula::Nexttime(Box::new(Formula::Cmp(
                CmpOp::Eq,
                Term::attr(Term::var("o"), "X"),
                Term::Arith(
                    crate::ast::ArithOp::Add,
                    Box::new(Term::var("x")),
                    Box::new(Term::Const(Value::Int(1))),
                ),
            )))),
        );
        assert!(satisfies(&c, &f, &mut env, 10).unwrap());
    }

    #[test]
    fn naive_answer_enumerates_objects() {
        let c = ctx();
        let q = Query::parse("RETRIEVE o WHERE Eventually INSIDE(o, P)").unwrap();
        let a = naive_answer(&c, &q).unwrap();
        // Object 1 passes through P; object 2 sits inside P (x=50).
        assert_eq!(a.ids(), vec![1, 2]);
        // Object 1's satisfaction: Eventually holds from 0 through 60.
        assert_eq!(
            a.intervals_for(&[Value::Id(1)]).unwrap().last_tick(),
            Some(60)
        );
    }

    #[test]
    fn naive_answer_rejects_unlisted_free_vars() {
        let c = ctx();
        let q = Query {
            targets: vec!["o".into()],
            formula: Formula::Cmp(
                CmpOp::Le,
                Term::Dist(Box::new(Term::var("o")), Box::new(Term::var("n"))),
                Term::val(5.0),
            ),
        };
        assert!(matches!(naive_answer(&c, &q), Err(FtlError::Unsafe(_))));
    }
}
