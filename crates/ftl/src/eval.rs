//! The appendix algorithm: bottom-up interval-relation evaluation.
//!
//! "The algorithm computes `R_g`, inductively, for each subformula `g` in
//! increasing lengths of the subformula.  After the termination of the
//! algorithm, we will have the relation `R_f` corresponding to the original
//! formula `f`."
//!
//! * atomic predicates — the "routines" (spatial predicate solvers from
//!   `most-spatial`, comparison solving from [`crate::numeric`]) produce one
//!   row per relevant instantiation of the atom's object variables;
//! * `g1 ∧ g2` — interval-intersection join;
//! * `g1 Until g2` — the maximal-chain join (via
//!   [`most_temporal::IntervalSet::until`], property-tested against the
//!   appendix's chain construction);
//! * `[x ← q] g1` — the relation `Q` of the atomic query (here:
//!   [`crate::numeric::value_series`], finite because assignable terms are
//!   piecewise-constant), joined with `g1`'s relation by pinning `x` to each
//!   value of `Q` and intersecting validity intervals;
//! * the remaining temporal operators are per-row interval-set transforms;
//! * `∨` / `¬` (extensions) evaluate under active-domain semantics.

use crate::answer::{Answer, AnswerTuple};
use crate::ast::{CmpOp, Formula, Query, Term};
use crate::context::EvalContext;
use crate::error::{FtlError, FtlResult};
use crate::numeric::{compare_terms, is_motion_attr, value_series};
use crate::relation::VarRelation;
use crate::semantics::Env;
use most_dbms::value::Value;
use most_spatial::predicates::{inside_polygon, piecewise, within_sphere};
use most_spatial::{MovingPoint, Point, Trajectory};
use most_temporal::{Interval, IntervalSet, Tick};
use std::collections::BTreeSet;

/// Evaluates a query with the appendix algorithm, producing the
/// materialized `Answer(CQ)` that serves both instantaneous and continuous
/// queries.
pub fn evaluate_query(ctx: &dyn EvalContext, q: &Query) -> FtlResult<Answer> {
    let mut obj_vars = syntactic_object_vars(&q.formula);
    for t in &q.targets {
        obj_vars.insert(t.clone());
    }
    let rel = eval_formula(ctx, &q.formula, &obj_vars)?;
    // Expand over the domain for targets the formula does not constrain,
    // project away (existentially) unretrieved variables, and order columns
    // by the target list.
    let domain = |_: &str| {
        Ok(ctx
            .object_ids()
            .into_iter()
            .map(Value::Id)
            .collect::<Vec<_>>())
    };
    let projected = rel.expand(&q.targets, domain)?;
    let tuples = projected
        .into_rows()
        .into_iter()
        .map(|(values, intervals)| AnswerTuple { values, intervals })
        .collect();
    Ok(Answer::new(q.targets.clone(), tuples))
}

/// Evaluates a bare formula to its relation `R_f`.  `extra_object_vars`
/// names variables that must be treated as ranging over objects even if
/// they never occur in an object position inside `f`.
pub fn evaluate_formula(
    ctx: &dyn EvalContext,
    f: &Formula,
    extra_object_vars: &[String],
) -> FtlResult<VarRelation> {
    let mut obj_vars = syntactic_object_vars(f);
    for v in extra_object_vars {
        obj_vars.insert(v.clone());
    }
    eval_formula(ctx, f, &obj_vars)
}

/// Variables appearing in an object position anywhere in the formula:
/// attribute bases, `DIST` arguments, `INSIDE`/`OUTSIDE`/`WITHIN_SPHERE`
/// point terms.
pub fn syntactic_object_vars(f: &Formula) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_object_vars(f, &mut out);
    out
}

fn collect_term_object_vars(t: &Term, out: &mut BTreeSet<String>) {
    match t {
        Term::Attr(base, _) => {
            if let Term::Var(v) = base.as_ref() {
                out.insert(v.clone());
            }
            collect_term_object_vars(base, out);
        }
        Term::Dist(a, b) => {
            for side in [a.as_ref(), b.as_ref()] {
                if let Term::Var(v) = side {
                    out.insert(v.clone());
                }
                collect_term_object_vars(side, out);
            }
        }
        Term::Arith(_, a, b) => {
            collect_term_object_vars(a, out);
            collect_term_object_vars(b, out);
        }
        Term::Var(_) | Term::Const(_) | Term::Time | Term::Point(..) => {}
    }
}

fn collect_object_vars(f: &Formula, out: &mut BTreeSet<String>) {
    match f {
        Formula::Bool(_) => {}
        Formula::Cmp(_, a, b) => {
            collect_term_object_vars(a, out);
            collect_term_object_vars(b, out);
        }
        Formula::Inside(t, _) | Formula::Outside(t, _) => {
            if let Term::Var(v) = t {
                out.insert(v.clone());
            }
            collect_term_object_vars(t, out);
        }
        Formula::InsideMoving(t, _, a) | Formula::OutsideMoving(t, _, a) => {
            for side in [t, a] {
                if let Term::Var(v) = side {
                    out.insert(v.clone());
                }
                collect_term_object_vars(side, out);
            }
        }
        Formula::WithinSphere(_, ts) => {
            for t in ts {
                if let Term::Var(v) = t {
                    out.insert(v.clone());
                }
                collect_term_object_vars(t, out);
            }
        }
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Until(a, b) => {
            collect_object_vars(a, out);
            collect_object_vars(b, out);
        }
        Formula::UntilWithin(_, a, b) => {
            collect_object_vars(a, out);
            collect_object_vars(b, out);
        }
        Formula::Not(a)
        | Formula::Nexttime(a)
        | Formula::Eventually(a)
        | Formula::Always(a)
        | Formula::EventuallyWithin(_, a)
        | Formula::EventuallyAfter(_, a)
        | Formula::AlwaysFor(_, a) => collect_object_vars(a, out),
        Formula::Assign(_, term, body) => {
            collect_term_object_vars(term, out);
            collect_object_vars(body, out);
        }
    }
}

/// Evaluation entry point for every subformula: when a compiled-plan cache
/// session is active (see [`crate::plan::evaluate_compiled`]) and `f` is
/// one of the plan's atoms, its relation is replayed from — or recorded
/// into — the session; everything else falls through to the bottom-up
/// computation unchanged.
fn eval_formula(
    ctx: &dyn EvalContext,
    f: &Formula,
    obj_vars: &BTreeSet<String>,
) -> FtlResult<VarRelation> {
    match crate::plan::probe(f) {
        crate::plan::Probe::Hit(rel) => Ok(rel),
        crate::plan::Probe::Miss(key) => {
            let rel = eval_formula_uncached(ctx, f, obj_vars)?;
            crate::plan::store(key, &rel);
            Ok(rel)
        }
        crate::plan::Probe::Off => eval_formula_uncached(ctx, f, obj_vars),
    }
}

fn eval_formula_uncached(
    ctx: &dyn EvalContext,
    f: &Formula,
    obj_vars: &BTreeSet<String>,
) -> FtlResult<VarRelation> {
    let h = ctx.horizon();
    match f {
        Formula::Bool(true) => Ok(VarRelation::nullary(IntervalSet::full(h))),
        Formula::Bool(false) => Ok(VarRelation::nullary(IntervalSet::empty())),
        Formula::Cmp(op, lhs, rhs) => {
            let vars = atom_object_vars(&[lhs, rhs], obj_vars);
            let eval_one = |env: &Env| compare_terms(ctx, env, *op, lhs, rhs);
            // Section 4 integration: a range comparison over one object's
            // non-motion attribute may fetch an index-pruned candidate
            // superset (non-candidates produce empty interval sets and
            // would be dropped anyway).
            match attr_range_prune(ctx, *op, lhs, rhs, &vars) {
                Some(ids) => atom_relation_over(ctx, &vars, &ids, eval_one),
                None => atom_relation(ctx, &vars, eval_one),
            }
        }
        Formula::Inside(term, region) => {
            let poly = ctx
                .region(region)
                .ok_or_else(|| FtlError::UnknownRegion(region.clone()))?;
            let vars = atom_object_vars(&[term], obj_vars);
            // Section 4 integration: when the context maintains a position
            // index, restrict enumeration to objects whose motion can enter
            // the region at all.  Only sound for a bare object variable
            // (INSIDE is monotone in the candidate set: non-candidates have
            // empty interval sets and would be dropped anyway).
            let pruned = match (term, ctx.inside_candidates(&poly)) {
                (Term::Var(_), Some(ids)) => Some(ids),
                _ => None,
            };
            let eval_one = |env: &Env| {
                Ok(match point_motion(ctx, env, term)? {
                    Some(traj) => piecewise(&traj, h, |leg, h| inside_polygon(leg, &poly, h)),
                    None => IntervalSet::empty(),
                })
            };
            match pruned {
                Some(ids) => atom_relation_over(ctx, &vars, &ids, eval_one),
                None => atom_relation(ctx, &vars, eval_one),
            }
        }
        Formula::Outside(term, region) => {
            let poly = ctx
                .region(region)
                .ok_or_else(|| FtlError::UnknownRegion(region.clone()))?;
            let vars = atom_object_vars(&[term], obj_vars);
            atom_relation(ctx, &vars, |env| {
                Ok(match point_motion(ctx, env, term)? {
                    Some(traj) => piecewise(&traj, h, |leg, h| inside_polygon(leg, &poly, h))
                        .complement(h),
                    None => IntervalSet::empty(),
                })
            })
        }
        Formula::InsideMoving(term, region, anchor)
        | Formula::OutsideMoving(term, region, anchor) => {
            let poly = ctx
                .region(region)
                .ok_or_else(|| FtlError::UnknownRegion(region.clone()))?;
            let negated = matches!(f, Formula::OutsideMoving(..));
            let vars = atom_object_vars(&[term, anchor], obj_vars);
            atom_relation(ctx, &vars, |env| {
                let (point, anch) = match (
                    point_motion(ctx, env, term)?,
                    point_motion(ctx, env, anchor)?,
                ) {
                    (Some(p), Some(a)) => (p, a),
                    _ => return Ok(IntervalSet::empty()),
                };
                // The region rides with the anchor: o(t) ∈ P + (a(t) − a(0))
                // ⇔ the *relative* motion o(t) − a(t) + a(0) lies in P.
                // Relative motion is piecewise linear, so the static
                // polygon routine applies per aligned leg span.
                let a0 = anch.position_at_tick(0);
                let mut acc = IntervalSet::empty();
                for (leg_p, lo_p, hi_p) in point.legs_between(0, h.end()) {
                    for (leg_a, lo, hi) in anch.legs_between(lo_p, hi_p) {
                        if lo > hi {
                            continue;
                        }
                        let p_at = leg_p.position_at_tick(lo);
                        let a_at = leg_a.position_at_tick(lo);
                        let rel = MovingPoint::new(
                            Point::new(a0.x + p_at.x - a_at.x, a0.y + p_at.y - a_at.y),
                            lo,
                            leg_p.velocity - leg_a.velocity,
                        );
                        let span = IntervalSet::singleton(Interval::new(lo, hi));
                        acc = acc
                            .union(&inside_polygon(rel, &poly, h).intersect(&span));
                    }
                }
                Ok(if negated { acc.complement(h) } else { acc })
            })
        }
        Formula::WithinSphere(r, terms) => {
            let refs: Vec<&Term> = terms.iter().collect();
            let vars = atom_object_vars(&refs, obj_vars);
            atom_relation(ctx, &vars, |env| {
                let mut trajs = Vec::with_capacity(terms.len());
                for t in terms {
                    match point_motion(ctx, env, t)? {
                        Some(traj) => trajs.push(traj),
                        None => return Ok(IntervalSet::empty()),
                    }
                }
                Ok(within_sphere_piecewise(*r, &trajs, h))
            })
        }
        Formula::And(a, b) => Ok(eval_formula(ctx, a, obj_vars)?
            .and_join(&eval_formula(ctx, b, obj_vars)?)),
        Formula::Or(a, b) => {
            let ra = eval_formula(ctx, a, obj_vars)?;
            let rb = eval_formula(ctx, b, obj_vars)?;
            let union_vars: Vec<String> = {
                let mut v = ra.vars().to_vec();
                for w in rb.vars() {
                    if !v.contains(w) {
                        v.push(w.clone());
                    }
                }
                v
            };
            let domain = object_domain(ctx, obj_vars);
            let ea = ra.expand(&union_vars, &domain)?;
            let eb = rb.expand(&union_vars, &domain)?;
            ea.or_union(&eb)
        }
        Formula::Not(a) => {
            let ra = eval_formula(ctx, a, obj_vars)?;
            let domain = object_domain(ctx, obj_vars);
            ra.complement(h, domain)
        }
        Formula::Until(a, b) => {
            most_obs::inc("ftl.temporal_ops");
            let ra = eval_formula(ctx, a, obj_vars)?;
            let rb = expand_for_until(ctx, &ra, eval_formula(ctx, b, obj_vars)?, obj_vars)?;
            Ok(ra.until_join(&rb))
        }
        Formula::UntilWithin(c, a, b) => {
            most_obs::inc("ftl.temporal_ops");
            let ra = eval_formula(ctx, a, obj_vars)?;
            let rb = expand_for_until(ctx, &ra, eval_formula(ctx, b, obj_vars)?, obj_vars)?;
            Ok(ra.until_within_join(*c, &rb))
        }
        Formula::Nexttime(a) => {
            most_obs::inc("ftl.temporal_ops");
            Ok(eval_formula(ctx, a, obj_vars)?.map_sets(|s| s.next_time(h)))
        }
        Formula::Eventually(a) => {
            most_obs::inc("ftl.temporal_ops");
            Ok(eval_formula(ctx, a, obj_vars)?.map_sets(|s| s.eventually()))
        }
        Formula::Always(a) => {
            most_obs::inc("ftl.temporal_ops");
            Ok(eval_formula(ctx, a, obj_vars)?.map_sets(|s| s.always(h)))
        }
        Formula::EventuallyWithin(c, a) => {
            most_obs::inc("ftl.temporal_ops");
            Ok(eval_formula(ctx, a, obj_vars)?.map_sets(|s| s.eventually_within(*c)))
        }
        Formula::EventuallyAfter(c, a) => {
            most_obs::inc("ftl.temporal_ops");
            Ok(eval_formula(ctx, a, obj_vars)?.map_sets(|s| s.eventually_after(*c)))
        }
        Formula::AlwaysFor(c, a) => {
            most_obs::inc("ftl.temporal_ops");
            Ok(eval_formula(ctx, a, obj_vars)?.map_sets(|s| s.always_for(*c, h)))
        }
        Formula::Assign(x, term, body) => {
            eval_assignment(ctx, x, term, body, obj_vars)
        }
    }
}

/// The assignment quantifier: for each instantiation of the term's object
/// variables and each value `v` in the term's (finite, piecewise-constant)
/// series, evaluate `body[x := v]` and keep its intervals clipped to the
/// ticks at which the term actually has value `v`.
fn eval_assignment(
    ctx: &dyn EvalContext,
    x: &str,
    term: &Term,
    body: &Formula,
    obj_vars: &BTreeSet<String>,
) -> FtlResult<VarRelation> {
    let term_vars: Vec<String> = term
        .free_vars()
        .into_iter()
        .filter(|v| obj_vars.contains(*v))
        .map(|v| v.to_owned())
        .collect();
    for v in term.free_vars() {
        if !obj_vars.contains(v) {
            return Err(FtlError::Unsafe(format!(
                "variable `{v}` in an assignment term is neither an object variable nor bound"
            )));
        }
    }
    let ids = ctx.object_ids();
    let mut combined: Option<VarRelation> = None;
    let mut inst = Vec::with_capacity(term_vars.len());
    eval_assignment_rec(
        ctx,
        x,
        term,
        body,
        obj_vars,
        &term_vars,
        &ids,
        &mut inst,
        &mut combined,
    )?;
    Ok(combined.unwrap_or_else(|| {
        // No instantiation produced rows (e.g. empty object domain).
        VarRelation::new(term_vars, Vec::new())
    }))
}

#[allow(clippy::too_many_arguments)]
fn eval_assignment_rec(
    ctx: &dyn EvalContext,
    x: &str,
    term: &Term,
    body: &Formula,
    obj_vars: &BTreeSet<String>,
    term_vars: &[String],
    ids: &[u64],
    inst: &mut Vec<Value>,
    combined: &mut Option<VarRelation>,
) -> FtlResult<()> {
    if inst.len() < term_vars.len() {
        for &id in ids {
            inst.push(Value::Id(id));
            eval_assignment_rec(
                ctx, x, term, body, obj_vars, term_vars, ids, inst, combined,
            )?;
            inst.pop();
        }
        return Ok(());
    }
    let mut env = Env::new();
    for (name, v) in term_vars.iter().zip(inst.iter()) {
        env.bind(name.clone(), v.clone());
    }
    let series = value_series(ctx, &env, term)?;
    for (value, valid) in series {
        let pinned = body.pin(x, &value);
        let rb = eval_formula(ctx, &pinned, obj_vars)?;
        // Clip to the validity interval of this value and attach the term's
        // instantiation columns, joining on any shared variables.
        let clipped = rb.map_sets(|s| s.intersect(&valid));
        let attached = attach_instantiation(&clipped, term_vars, inst);
        *combined = Some(match combined.take() {
            Some(acc) => merge_disjunctive(acc, attached)?,
            None => attached,
        });
    }
    Ok(())
}

/// Attaches fixed instantiation columns to a relation: rows that disagree
/// with the instantiation on shared variables are dropped; missing columns
/// are appended.
fn attach_instantiation(
    rel: &VarRelation,
    vars: &[String],
    values: &[Value],
) -> VarRelation {
    let mut out_vars = rel.vars().to_vec();
    let mut extra: Vec<(usize, &Value)> = Vec::new();
    for (i, v) in vars.iter().enumerate() {
        if !out_vars.contains(v) {
            out_vars.push(v.clone());
            extra.push((i, &values[i]));
        }
    }
    let shared: Vec<(usize, usize)> = vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| rel.vars().iter().position(|w| w == v).map(|j| (i, j)))
        .collect();
    let rows = rel
        .rows()
        .iter()
        .filter(|(vals, _)| shared.iter().all(|&(i, j)| vals[j] == values[i]))
        .map(|(vals, set)| {
            let mut v = vals.clone();
            for &(i, _) in &extra {
                v.push(values[i].clone());
            }
            (v, set.clone())
        })
        .collect();
    VarRelation::new(out_vars, rows)
}

/// Unions two relations from different branches of an assignment series
/// (same variable sets by construction; defensive error otherwise).
fn merge_disjunctive(a: VarRelation, b: VarRelation) -> FtlResult<VarRelation> {
    if a.vars() == b.vars() {
        a.or_union(&b)
    } else {
        let vars = a.vars().to_vec();
        let b2 = b.reorder(&vars)?;
        a.or_union(&b2)
    }
}

/// Detects a range comparison of the shape `x.NAME op const` (either
/// orientation) over a single object variable and a **non-motion**
/// attribute, and asks the context's dynamic-attribute index for a
/// candidate superset.  `None` means "no pruning": the shape didn't match,
/// the attribute is served from the trajectory, or no index is available.
fn attr_range_prune(
    ctx: &dyn EvalContext,
    op: CmpOp,
    lhs: &Term,
    rhs: &Term,
    vars: &[String],
) -> Option<Vec<u64>> {
    if vars.len() != 1 {
        return None;
    }
    let (attr, op, bound) = match (lhs, rhs) {
        (Term::Attr(base, name), Term::Const(c))
            if matches!(base.as_ref(), Term::Var(_)) =>
        {
            (name, op, c.as_f64()?)
        }
        (Term::Const(c), Term::Attr(base, name))
            if matches!(base.as_ref(), Term::Var(_)) =>
        {
            (name, op.flipped(), c.as_f64()?)
        }
        _ => return None,
    };
    if is_motion_attr(attr) {
        return None;
    }
    // Candidate windows are closed supersets: strict bounds keep the
    // boundary value (exact per-candidate evaluation discards it).
    let (lo, hi) = match op {
        CmpOp::Le | CmpOp::Lt => (f64::NEG_INFINITY, bound),
        CmpOp::Ge | CmpOp::Gt => (bound, f64::INFINITY),
        CmpOp::Eq => (bound, bound),
        // `!=` holds almost everywhere; pruning cannot help.
        CmpOp::Ne => return None,
    };
    ctx.attr_range_candidates(attr, lo, hi)
}

/// The object variables (in first-appearance order) among the free
/// variables of the given terms.
fn atom_object_vars(terms: &[&Term], obj_vars: &BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for t in terms {
        for v in t.free_vars() {
            if obj_vars.contains(v) && !out.iter().any(|o| o == v) {
                out.push(v.to_owned());
            }
        }
    }
    out
}

/// Candidate count below which the single-variable loop stays serial even
/// when the context offers workers (thread spawn would dominate).
const PARALLEL_MIN_CANDIDATES: usize = 16;

/// [`atom_relation`] with an explicit candidate id set (index pruning).
fn atom_relation_over(
    ctx: &dyn EvalContext,
    vars: &[String],
    ids: &[u64],
    eval_one: impl Fn(&Env) -> FtlResult<IntervalSet> + Sync,
) -> FtlResult<VarRelation> {
    most_obs::inc("ftl.atoms");
    most_obs::inc("ftl.pruned");
    // Pruned = domain minus candidates: what the index saved this atom.
    let domain = ctx.object_ids().len() as u64;
    most_obs::add("ftl.candidates_pruned", domain.saturating_sub(ids.len() as u64));
    match vars.first() {
        Some(var) => {
            let rows = single_var_rows(var, ids, ctx.eval_workers(), &eval_one)?;
            Ok(VarRelation::new(vars.to_vec(), rows))
        }
        None => {
            let set = eval_one(&Env::new())?;
            Ok(VarRelation::nullary(set))
        }
    }
}

/// Builds an atom's relation by enumerating instantiations of its object
/// variables over the active domain.  Each binding is evaluated
/// independently of every other (the atom routines read only the
/// environment and the context), which both removes per-binding allocation
/// churn — one reused [`Env`], rows built in place — and lets the
/// single-variable case shard candidate objects over scoped worker threads
/// when [`EvalContext::eval_workers`] allows.
fn atom_relation(
    ctx: &dyn EvalContext,
    vars: &[String],
    eval_one: impl Fn(&Env) -> FtlResult<IntervalSet> + Sync,
) -> FtlResult<VarRelation> {
    let ids = ctx.object_ids();
    most_obs::inc("ftl.atoms");
    match vars.len() {
        0 => {
            let set = eval_one(&Env::new())?;
            Ok(VarRelation::nullary(set))
        }
        1 => {
            let rows = single_var_rows(&vars[0], &ids, ctx.eval_workers(), &eval_one)?;
            Ok(VarRelation::new(vars.to_vec(), rows))
        }
        k => {
            // The k-fold product is one atom's candidate load: a log2
            // histogram observation keeps the per-atom distribution visible
            // (a single saturating counter add flattened it).
            let product = (ids.len() as u64).saturating_pow(k as u32);
            most_obs::observe("ftl.candidates", product);
            most_obs::add("ftl.candidates_evaluated", product);
            // Odometer over the k-fold product of the domain, last variable
            // fastest (the same lexicographic order the old recursion
            // produced).  One Env is rebound in place per instantiation.
            let mut rows = Vec::new();
            if ids.is_empty() {
                return Ok(VarRelation::new(vars.to_vec(), rows));
            }
            let mut idx = vec![0usize; k];
            let mut env = Env::new();
            loop {
                for (name, &i) in vars.iter().zip(idx.iter()) {
                    env.set(name, Value::Id(ids[i]));
                }
                let set = eval_one(&env)?;
                if !set.is_empty() {
                    rows.push((idx.iter().map(|&i| Value::Id(ids[i])).collect(), set));
                }
                let mut d = k;
                loop {
                    if d == 0 {
                        return Ok(VarRelation::new(vars.to_vec(), rows));
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < ids.len() {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
    }
}

/// The single-variable candidate loop: one row per object with a non-empty
/// interval set.  With `workers > 1` and enough candidates, contiguous id
/// shards evaluate on scoped threads — disjoint objects never share state,
/// so the shards are independent and the concatenation (re-sorted by
/// [`VarRelation::new`]) is identical to the serial result.
type Rows = Vec<(Vec<Value>, IntervalSet)>;

fn single_var_rows(
    var: &str,
    ids: &[u64],
    workers: usize,
    eval_one: &(impl Fn(&Env) -> FtlResult<IntervalSet> + Sync),
) -> FtlResult<Rows> {
    // One registry batch per atom's candidate loop, never per candidate.
    most_obs::observe("ftl.candidates", ids.len() as u64);
    most_obs::add("ftl.candidates_evaluated", ids.len() as u64);
    let serial = |shard: &[u64]| -> FtlResult<Rows> {
        let mut env = Env::new();
        let mut rows = Vec::new();
        for &id in shard {
            env.set(var, Value::Id(id));
            let set = eval_one(&env)?;
            if !set.is_empty() {
                rows.push((vec![Value::Id(id)], set));
            }
        }
        Ok(rows)
    };
    let workers = workers.max(1).min(ids.len());
    if workers <= 1 || ids.len() < PARALLEL_MIN_CANDIDATES {
        return serial(ids);
    }
    let chunk = ids.len().div_ceil(workers);
    let results: Vec<FtlResult<Rows>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|shard| s.spawn(move || serial(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("atom worker panicked"))
                .collect()
        });
    let mut rows = Vec::new();
    for r in results {
        rows.extend(r?);
    }
    Ok(rows)
}

/// Resolves a point term (object variable / POINT literal) to its motion.
fn point_motion(
    ctx: &dyn EvalContext,
    env: &Env,
    term: &Term,
) -> FtlResult<Option<Trajectory>> {
    match term {
        Term::Point(x, y) => Ok(Some(Trajectory::new(MovingPoint::stationary(Point::new(
            *x, *y,
        ))))),
        Term::Var(name) => match env.get(name) {
            Some(Value::Id(id)) => Ok(ctx.trajectory(*id)),
            Some(Value::Null) | None => Ok(None),
            Some(other) => Err(FtlError::Type(format!(
                "variable `{name}` = {other} is not an object in a spatial predicate"
            ))),
        },
        // Constant object references arise from pinned evaluation (e.g.
        // incremental continuous-query refresh).
        Term::Const(Value::Id(id)) => Ok(ctx.trajectory(*id)),
        Term::Const(Value::Null) => Ok(None),
        other => Err(FtlError::Type(format!(
            "`{other}` is not a point term (expected an object variable or POINT literal)"
        ))),
    }
}

/// `WITHIN_SPHERE` over piecewise-linear motions: the horizon is split at
/// every motion-vector switch, and the single-leg routine runs per span.
fn within_sphere_piecewise(
    r: f64,
    trajs: &[Trajectory],
    h: most_temporal::Horizon,
) -> IntervalSet {
    let mut cuts: BTreeSet<Tick> = BTreeSet::new();
    cuts.insert(0);
    for traj in trajs {
        for leg in traj.legs() {
            if leg.since <= h.end() {
                cuts.insert(leg.since);
            }
        }
    }
    let cuts: Vec<Tick> = cuts.into_iter().collect();
    let mut acc = IntervalSet::empty();
    for (i, &lo) in cuts.iter().enumerate() {
        let hi = cuts.get(i + 1).map(|&n| n - 1).unwrap_or(h.end());
        if lo > hi {
            continue;
        }
        let movers: Vec<MovingPoint> = trajs.iter().map(|t| t.leg_at(lo)).collect();
        let span = IntervalSet::singleton(Interval::new(lo, hi));
        acc = acc.union(&within_sphere(r, &movers, h).intersect(&span));
    }
    acc
}

/// Completes `f Until g` when `f` binds variables `g` does not: a state
/// satisfies `Until` outright wherever `g` holds, *for every* value of the
/// extra variables, so `g`'s relation is expanded over the active domain
/// before the right-driven join.  (The appendix's literal join would drop
/// those instantiations; the Section 3.3 semantics — and the per-tick
/// oracle — keep them.)
fn expand_for_until(
    ctx: &dyn EvalContext,
    left: &VarRelation,
    right: VarRelation,
    obj_vars: &BTreeSet<String>,
) -> FtlResult<VarRelation> {
    let missing: Vec<String> = left
        .vars()
        .iter()
        .filter(|v| !right.vars().contains(v))
        .cloned()
        .collect();
    if missing.is_empty() {
        return Ok(right);
    }
    let mut union_vars = right.vars().to_vec();
    union_vars.extend(missing);
    right.expand(&union_vars, object_domain(ctx, obj_vars))
}

fn object_domain<'a>(
    ctx: &'a dyn EvalContext,
    obj_vars: &'a BTreeSet<String>,
) -> impl Fn(&str) -> FtlResult<Vec<Value>> + 'a {
    move |var: &str| {
        if obj_vars.contains(var) {
            Ok(ctx.object_ids().into_iter().map(Value::Id).collect())
        } else {
            Err(FtlError::Unsafe(format!(
                "variable `{var}` requires domain expansion but is not an object variable"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MemoryContext;
    use most_spatial::{Polygon, Velocity};

    /// The running scenario: two cars on a highway and a parked one, with a
    /// polygon "downtown" and prices.
    fn ctx() -> MemoryContext {
        let mut c = MemoryContext::new(200);
        c.add_object(
            1,
            Trajectory::starting_at(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0)),
        );
        c.add_object(
            2,
            Trajectory::starting_at(Point::new(100.0, 0.0), Velocity::new(-1.0, 0.0)),
        );
        c.add_object(
            3,
            Trajectory::starting_at(Point::new(55.0, 2.0), Velocity::zero()),
        );
        c.set_attr(1, "PRICE", 80.0);
        c.set_attr(2, "PRICE", 150.0);
        c.set_attr(3, "PRICE", 60.0);
        c.add_region("P", Polygon::rectangle(50.0, -10.0, 70.0, 10.0));
        c.add_region("Q", Polygon::rectangle(150.0, -10.0, 170.0, 10.0));
        c
    }

    fn answer(src: &str) -> Answer {
        evaluate_query(&ctx(), &Query::parse(src).unwrap()).unwrap()
    }

    fn check_against_oracle(src: &str) {
        let c = ctx();
        let q = Query::parse(src).unwrap();
        let fast = evaluate_query(&c, &q).unwrap();
        let slow = crate::semantics::naive_answer(&c, &q).unwrap();
        assert_eq!(fast, slow, "query: {src}");
    }

    #[test]
    fn paper_query_i_price_and_entry() {
        // Example (I): objects entering P within 60 with PRICE <= 100.
        let a = answer(
            "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 60 INSIDE(o, P)",
        );
        // Object 1 reaches x=50 at t=50 — within 60 from t>=0? Eventually
        // within 60 INSIDE holds at t=0 (enters at 50 <= 60). Object 3 is
        // already inside (always). Object 2's price is too high.
        assert_eq!(a.ids(), vec![1, 3]);
        check_against_oracle(
            "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 60 INSIDE(o, P)",
        );
    }

    #[test]
    fn paper_query_ii_enter_and_stay() {
        let src = "RETRIEVE o WHERE Eventually within 60 (INSIDE(o, P) AND Always for 10 INSIDE(o, P))";
        let a = answer(src);
        // Object 1 is inside P for ticks 50..=70 (21 ticks) so it can stay
        // 10 ticks from t=50..60; reachable within 60 of tick 0. Object 2
        // inside 30..=50, can stay 10 from 30..40. Object 3 always inside.
        assert_eq!(a.ids(), vec![1, 2, 3]);
        check_against_oracle(src);
    }

    #[test]
    fn paper_query_iii_two_polygons() {
        // Enter P within 60, stay 5, and after at least 50 more be in Q.
        let src = "RETRIEVE o WHERE Eventually within 60 (INSIDE(o, P) AND Always for 5 INSIDE(o, P) AND Eventually after 50 INSIDE(o, Q))";
        let a = answer(src);
        // Only object 1 continues east into Q (reaches x=150 at t=150).
        assert_eq!(a.ids(), vec![1]);
        check_against_oracle(src);
    }

    #[test]
    fn paper_until_pairs() {
        // Pairs staying within 120 of each other until both in P.
        let src =
            "RETRIEVE o, n WHERE DIST(o, n) <= 120 Until (INSIDE(o, P) AND INSIDE(n, P))";
        check_against_oracle(src);
        let a = answer(src);
        assert!(!a.is_empty());
    }

    #[test]
    fn dist_to_fixed_point() {
        let src = "RETRIEVE o WHERE Eventually within 100 (DIST(o, POINT(60, 0)) <= 5)";
        let a = answer(src);
        // Object 3 sits at (55, 2): √29 > 5 away, never qualifies.
        assert_eq!(a.ids(), vec![1, 2]);
        check_against_oracle(src);
    }

    #[test]
    fn outside_and_negation_extension() {
        check_against_oracle("RETRIEVE o WHERE Always OUTSIDE(o, Q) AND o.PRICE <= 100");
        check_against_oracle("RETRIEVE o WHERE NOT Eventually INSIDE(o, P)");
        check_against_oracle("RETRIEVE o WHERE NOT (o.PRICE <= 100)");
    }

    #[test]
    fn disjunction_extension() {
        check_against_oracle("RETRIEVE o WHERE INSIDE(o, P) OR o.PRICE <= 70");
        // Disjunction with different variable sets (expansion).
        check_against_oracle(
            "RETRIEVE o, n WHERE INSIDE(o, P) OR DIST(o, n) <= 10",
        );
    }

    #[test]
    fn nexttime_and_untilwithin() {
        check_against_oracle("RETRIEVE o WHERE Nexttime INSIDE(o, P)");
        check_against_oracle(
            "RETRIEVE o WHERE OUTSIDE(o, P) until_within 55 INSIDE(o, P)",
        );
    }

    #[test]
    fn within_sphere_query() {
        let src = "RETRIEVE o, n WHERE Eventually WITHIN_SPHERE(10, o, n, POINT(50, 0))";
        check_against_oracle(src);
    }

    #[test]
    fn assignment_speed_binding() {
        // Objects whose speed never changes: with a single-leg context the
        // pinned comparison holds everywhere.
        let src = "RETRIEVE o WHERE [x <- o.SPEED] Always (o.SPEED = x)";
        let a = answer(src);
        assert_eq!(a.ids(), vec![1, 2, 3]);
        check_against_oracle(src);
    }

    #[test]
    fn assignment_with_piecewise_speed() {
        // The Section 2.3 persistent-query scenario evaluated over a
        // recorded history: speed 5, then 7 at t=30, then 10 at t=60.
        let mut c = MemoryContext::new(100);
        let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(5.0, 0.0));
        traj.update_velocity(30, Velocity::new(7.0, 0.0));
        traj.update_velocity(60, Velocity::new(10.0, 0.0));
        c.add_object(1, traj);
        c.add_object(
            2,
            Trajectory::starting_at(Point::new(10.0, 10.0), Velocity::new(3.0, 0.0)),
        );
        let q = Query::parse(
            "RETRIEVE o WHERE [x <- o.SPEED] Eventually (o.SPEED >= 2 * x)",
        )
        .unwrap();
        let fast = evaluate_query(&c, &q).unwrap();
        let slow = crate::semantics::naive_answer(&c, &q).unwrap();
        assert_eq!(fast, slow);
        // Object 1: speed doubles (5 -> 10); the binding x=5 is valid on
        // ticks 0..=29 and Eventually(speed >= 10) holds up to tick 99... so
        // ticks 0..=29 qualify.  Object 2 never accelerates.
        assert_eq!(fast.ids(), vec![1]);
        assert_eq!(
            fast.intervals_for(&[Value::Id(1)]).unwrap().last_tick(),
            Some(29)
        );
    }

    #[test]
    fn unconstrained_target_expands_over_domain() {
        let a = answer("RETRIEVE o WHERE true");
        assert_eq!(a.ids(), vec![1, 2, 3]);
    }

    #[test]
    fn unsafe_value_variable_rejected() {
        let c = ctx();
        let q = Query::parse("RETRIEVE o WHERE o.PRICE <= x").unwrap();
        assert!(matches!(
            evaluate_query(&c, &q),
            Err(FtlError::Unsafe(_))
        ));
    }

    #[test]
    fn unknown_region_rejected() {
        let c = ctx();
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, NOWHERE)").unwrap();
        assert!(matches!(
            evaluate_query(&c, &q),
            Err(FtlError::UnknownRegion(_))
        ));
    }

    #[test]
    fn id_comparison_filters_pairs() {
        // o <> n excludes the diagonal.
        let src = "RETRIEVE o, n WHERE o <> n AND Eventually (DIST(o, n) <= 1)";
        check_against_oracle(src);
        let a = answer(src);
        for (vals, _) in a.rows() {
            assert_ne!(vals[0], vals[1]);
        }
    }

    #[test]
    fn time_object_is_queryable() {
        // INSIDE(o,P) while time <= 55: only ticks <= 55 qualify.
        let src = "RETRIEVE o WHERE INSIDE(o, P) AND time <= 55";
        check_against_oracle(src);
        let a = answer(src);
        assert!(a
            .intervals_for(&[Value::Id(1)])
            .is_some_and(|s| s.last_tick() == Some(55)));
    }
}

/// One row of an evaluation trace: a subformula and the size of its
/// relation `R_g`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Nesting depth within the formula tree (0 = whole formula).
    pub depth: usize,
    /// The subformula, pretty-printed.
    pub formula: String,
    /// Rows (instantiations) in `R_g`.
    pub rows: usize,
    /// Total satisfaction intervals across all rows.
    pub spans: u64,
    /// Total satisfied ticks across all rows.
    pub ticks: u64,
}

/// Evaluates a query and additionally reports the relation sizes of every
/// subformula — the quantities the appendix's cost statement is about
/// ("in the worst case, this algorithm may run in time proportional to the
/// product of the sizes of R1 and R2").
///
/// Diagnostics only: each subformula is re-evaluated independently, so this
/// costs more than [`evaluate_query`]; use it to understand a slow query,
/// not to serve one.
pub fn explain_query(
    ctx: &dyn EvalContext,
    q: &Query,
) -> FtlResult<(Answer, Vec<TraceNode>)> {
    let mut obj_vars = syntactic_object_vars(&q.formula);
    for t in &q.targets {
        obj_vars.insert(t.clone());
    }
    let mut trace = Vec::new();
    collect_trace(ctx, &q.formula, &obj_vars, 0, &mut trace)?;
    let answer = evaluate_query(ctx, q)?;
    Ok((answer, trace))
}

fn collect_trace(
    ctx: &dyn EvalContext,
    f: &Formula,
    obj_vars: &BTreeSet<String>,
    depth: usize,
    out: &mut Vec<TraceNode>,
) -> FtlResult<()> {
    // Children first (bottom-up order, matching the appendix's
    // "increasing lengths of the subformula").
    match f {
        Formula::And(a, b)
        | Formula::Or(a, b)
        | Formula::Until(a, b)
        | Formula::UntilWithin(_, a, b) => {
            collect_trace(ctx, a, obj_vars, depth + 1, out)?;
            collect_trace(ctx, b, obj_vars, depth + 1, out)?;
        }
        Formula::Not(a)
        | Formula::Nexttime(a)
        | Formula::Eventually(a)
        | Formula::Always(a)
        | Formula::EventuallyWithin(_, a)
        | Formula::EventuallyAfter(_, a)
        | Formula::AlwaysFor(_, a) => {
            collect_trace(ctx, a, obj_vars, depth + 1, out)?;
        }
        Formula::Assign(_, _, body) => {
            // The body contains the bound variable; it cannot be evaluated
            // standalone, so only its *structure* recurses through the
            // pinned evaluation inside eval_formula.  Trace the quantified
            // formula as one node.
            let _ = body;
        }
        _ => {}
    }
    match eval_formula(ctx, f, obj_vars) {
        Ok(rel) => {
            let spans: u64 = rel.rows().iter().map(|(_, s)| s.span_count() as u64).sum();
            let ticks: u64 = rel.rows().iter().map(|(_, s)| s.tick_count()).sum();
            out.push(TraceNode {
                depth,
                formula: f.to_string(),
                rows: rel.len(),
                spans,
                ticks,
            });
            Ok(())
        }
        // Subformulas with unbound (assignment) variables cannot be
        // evaluated standalone; record them without sizes.
        Err(FtlError::Unsafe(_)) => {
            out.push(TraceNode {
                depth,
                formula: format!("{f}  (depends on enclosing assignment)"),
                rows: 0,
                spans: 0,
                ticks: 0,
            });
            Ok(())
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::context::MemoryContext;
    use most_spatial::{Point, Polygon, Trajectory, Velocity};

    fn ctx() -> MemoryContext {
        let mut c = MemoryContext::new(100);
        c.add_object(
            1,
            Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0)),
        );
        c.add_object(
            2,
            Trajectory::starting_at(Point::new(200.0, 0.0), Velocity::zero()),
        );
        c.set_attr(1, "PRICE", 50.0);
        c.set_attr(2, "PRICE", 150.0);
        c.add_region("P", Polygon::rectangle(40.0, -10.0, 60.0, 10.0));
        c
    }

    #[test]
    fn trace_is_bottom_up_and_sized() {
        let c = ctx();
        let q = Query::parse(
            "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually INSIDE(o, P)",
        )
        .unwrap();
        let (answer, trace) = explain_query(&c, &q).unwrap();
        assert_eq!(answer.ids(), vec![1]);
        // Nodes: PRICE atom, INSIDE atom, Eventually, And (bottom-up).
        assert_eq!(trace.len(), 4);
        assert!(trace[0].formula.contains("PRICE"));
        assert!(trace[1].formula.contains("INSIDE"));
        assert!(trace[2].formula.starts_with("Eventually"));
        assert_eq!(trace[3].depth, 0);
        // The INSIDE atom has one row (object 1 crosses P) with one span.
        assert_eq!(trace[1].rows, 1);
        assert_eq!(trace[1].spans, 1);
        assert_eq!(trace[1].ticks, 21); // ticks 40..=60
        // Eventually expands it back to tick 0.
        assert_eq!(trace[2].ticks, 61);
        // The conjunction intersects with the PRICE row.
        assert_eq!(trace[3].rows, 1);
    }

    #[test]
    fn assignment_bodies_flagged_not_failed() {
        let c = ctx();
        let q = Query::parse(
            "RETRIEVE o WHERE [x <- o.SPEED] Eventually (o.SPEED >= x)",
        )
        .unwrap();
        let (_, trace) = explain_query(&c, &q).unwrap();
        let root = trace.last().unwrap();
        assert_eq!(root.depth, 0);
        assert!(root.rows > 0, "the quantified formula itself evaluates");
    }
}
