//! FTL errors.

use std::fmt;

/// Result alias for FTL operations.
pub type FtlResult<T> = Result<T, FtlError>;

/// Errors raised while parsing or evaluating FTL queries.
#[derive(Debug, Clone, PartialEq)]
pub enum FtlError {
    /// Lexical or syntactic error, with a byte offset into the source.
    Parse {
        /// Error description.
        message: String,
        /// Byte offset where the error was detected.
        offset: usize,
    },
    /// A region name used in `INSIDE`/`OUTSIDE` is not registered.
    UnknownRegion(String),
    /// An object id referenced by the query does not exist.
    UnknownObject(u64),
    /// The query is unsafe: its answer cannot be represented finitely under
    /// the evaluation strategy (e.g. a value variable that is never bound by
    /// an assignment quantifier, or negation over non-object variables).
    Unsafe(String),
    /// A term or comparison falls outside the supported fragment (e.g.
    /// multiplying two time-varying terms, which would exceed quadratic
    /// degree).
    Unsupported(String),
    /// Values of incompatible kinds were combined.
    Type(String),
}

impl FtlError {
    /// Parse-error helper.
    pub fn parse(message: impl Into<String>, offset: usize) -> Self {
        FtlError::Parse { message: message.into(), offset }
    }
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            FtlError::UnknownRegion(r) => write!(f, "unknown region `{r}`"),
            FtlError::UnknownObject(o) => write!(f, "unknown object #{o}"),
            FtlError::Unsafe(d) => write!(f, "unsafe query: {d}"),
            FtlError::Unsupported(d) => write!(f, "unsupported construct: {d}"),
            FtlError::Type(d) => write!(f, "type error: {d}"),
        }
    }
}

impl std::error::Error for FtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FtlError::parse("unexpected `)`", 7)
            .to_string()
            .contains("byte 7"));
        assert_eq!(
            FtlError::UnknownRegion("P".into()).to_string(),
            "unknown region `P`"
        );
        assert!(FtlError::Unsafe("negation over value variable".into())
            .to_string()
            .starts_with("unsafe query"));
    }
}
