//! Tokenizer for the FTL concrete syntax.
//!
//! Keywords are matched case-insensitively so both the paper's typography
//! (`Eventually within 3`) and SQL-style shouting (`RETRIEVE o WHERE ...`)
//! parse.

use crate::error::{FtlError, FtlResult};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (variable, attribute or region name).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `RETRIEVE`
    Retrieve,
    /// `WHERE`
    Where,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `NOT`
    Not,
    /// `Until`
    Until,
    /// `until_within`
    UntilWithin,
    /// `Nexttime`
    Nexttime,
    /// `Eventually`
    Eventually,
    /// `Always`
    Always,
    /// `within`
    Within,
    /// `after`
    After,
    /// `for`
    For,
    /// `true`
    True,
    /// `false`
    False,
    /// `time`
    Time,
    /// `DIST`
    Dist,
    /// `INSIDE`
    Inside,
    /// `OUTSIDE`
    Outside,
    /// `WITHIN_SPHERE`
    WithinSphere,
    /// `POINT`
    Point,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `<-`
    Assign,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(n) => write!(f, "integer {n}"),
            Token::Float(x) => write!(f, "float {x}"),
            Token::Str(s) => write!(f, "string '{s}'"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Tokenizes FTL source text.
pub fn tokenize(src: &str) -> FtlResult<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let token = match c {
            '(' => {
                i += 1;
                Token::LParen
            }
            ')' => {
                i += 1;
                Token::RParen
            }
            '[' => {
                i += 1;
                Token::LBracket
            }
            ']' => {
                i += 1;
                Token::RBracket
            }
            ',' => {
                i += 1;
                Token::Comma
            }
            '.' => {
                i += 1;
                Token::Dot
            }
            '+' => {
                i += 1;
                Token::Plus
            }
            '-' => {
                i += 1;
                Token::Minus
            }
            '*' => {
                i += 1;
                Token::Star
            }
            '/' => {
                i += 1;
                Token::Slash
            }
            '=' => {
                i += 1;
                Token::Eq
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Ne
                } else {
                    return Err(FtlError::parse("expected `!=`", i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    i += 2;
                    Token::Le
                }
                Some(&b'>') => {
                    i += 2;
                    Token::Ne
                }
                Some(&b'-') => {
                    i += 2;
                    Token::Assign
                }
                _ => {
                    i += 1;
                    Token::Lt
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Ge
                } else {
                    i += 1;
                    Token::Gt
                }
            }
            '\'' => {
                i += 1;
                let s_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(FtlError::parse("unterminated string literal", start));
                }
                let s = src[s_start..i].to_owned();
                i += 1;
                Token::Str(s)
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        FtlError::parse(format!("invalid float literal `{text}`"), start)
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        FtlError::parse(format!("invalid integer literal `{text}`"), start)
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                keyword_or_ident(&src[start..i])
            }
            other => {
                return Err(FtlError::parse(format!("unexpected character `{other}`"), i))
            }
        };
        out.push(Spanned { token, offset: start });
    }
    Ok(out)
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_uppercase().as_str() {
        "RETRIEVE" => Token::Retrieve,
        "WHERE" => Token::Where,
        "AND" => Token::And,
        "OR" => Token::Or,
        "NOT" => Token::Not,
        "UNTIL" => Token::Until,
        "UNTIL_WITHIN" => Token::UntilWithin,
        "NEXTTIME" => Token::Nexttime,
        "EVENTUALLY" => Token::Eventually,
        "ALWAYS" => Token::Always,
        "WITHIN" => Token::Within,
        "AFTER" => Token::After,
        "FOR" => Token::For,
        "TRUE" => Token::True,
        "FALSE" => Token::False,
        "TIME" => Token::Time,
        "DIST" => Token::Dist,
        "INSIDE" => Token::Inside,
        "OUTSIDE" => Token::Outside,
        "WITHIN_SPHERE" => Token::WithinSphere,
        "POINT" => Token::Point,
        _ => Token::Ident(word.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(toks("retrieve WHERE until"), vec![Token::Retrieve, Token::Where, Token::Until]);
        assert_eq!(toks("Eventually within"), vec![Token::Eventually, Token::Within]);
    }

    #[test]
    fn identifiers_preserve_case() {
        assert_eq!(toks("myVar"), vec![Token::Ident("myVar".into())]);
        assert_eq!(toks("P_1"), vec![Token::Ident("P_1".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Int(42)]);
        assert_eq!(toks("3.5"), vec![Token::Float(3.5)]);
        // A dot not followed by a digit is attribute access.
        assert_eq!(
            toks("o.PRICE"),
            vec![Token::Ident("o".into()), Token::Dot, Token::Ident("PRICE".into())]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= < > = <> != <-"),
            vec![
                Token::Le,
                Token::Ge,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Assign
            ]
        );
        assert_eq!(
            toks("+ - * /"),
            vec![Token::Plus, Token::Minus, Token::Star, Token::Slash]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(toks("'Rest Inn'"), vec![Token::Str("Rest Inn".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn offsets_reported() {
        let ts = tokenize("a  <= b").unwrap();
        assert_eq!(ts[1].offset, 3);
    }

    #[test]
    fn bad_character() {
        let e = tokenize("a % b").unwrap_err();
        assert!(matches!(e, FtlError::Parse { offset: 2, .. }));
    }

    #[test]
    fn full_query_shape() {
        let ts = toks("RETRIEVE o WHERE Eventually within 3 (INSIDE(o, P))");
        assert_eq!(ts[0], Token::Retrieve);
        assert!(ts.contains(&Token::Inside));
        assert!(ts.contains(&Token::Int(3)));
    }
}
