//! Query answers: the relation `Answer(CQ)` of Section 2.3.
//!
//! "When a continuous query is entered our processing algorithm evaluates
//! the query once, and returns a set of tuples.  Each tuple consists of an
//! instantiation of the predicate's variables and a time interval
//! `begin`–`end`."  An [`Answer`] stores exactly that, grouped per
//! instantiation as a normalized interval set, and knows how to present
//! itself at a clock tick (instantaneous display) or as flat
//! `(instantiation, begin, end)` rows (the paper's representation).

use most_dbms::value::Value;
use most_temporal::{Interval, IntervalSet, Tick};
use std::fmt;

/// One answer row: an instantiation of the query's target variables and the
/// ticks at which it satisfies the formula.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerTuple {
    /// Values of the target variables, in target order.
    pub values: Vec<Value>,
    /// Ticks during which this instantiation is in the answer.
    pub intervals: IntervalSet,
}

/// The materialized answer of an FTL query (`Answer(CQ)` in the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Answer {
    /// Target variable names, in RETRIEVE order.
    pub vars: Vec<String>,
    /// Rows, sorted by instantiation for determinism.
    pub tuples: Vec<AnswerTuple>,
}

impl Answer {
    /// Creates an answer, sorting rows and dropping empty interval sets.
    pub fn new(vars: Vec<String>, mut tuples: Vec<AnswerTuple>) -> Self {
        tuples.retain(|t| !t.intervals.is_empty());
        tuples.sort_by(|a, b| a.values.cmp(&b.values));
        Answer { vars, tuples }
    }

    /// Number of instantiations in the answer.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether no instantiation ever satisfies the query.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The instantiations to display at clock tick `t` — how the system
    /// serves a continuous query from the materialized answer ("the system
    /// presents to the user at each clock-tick `t` the instantiations of the
    /// tuples having an interval that contains `t`").
    pub fn at_tick(&self, t: Tick) -> Vec<&AnswerTuple> {
        self.tuples
            .iter()
            .filter(|tup| tup.intervals.contains(t))
            .collect()
    }

    /// The instantaneous answer at tick 0 (query entry time).
    pub fn now(&self) -> Vec<&AnswerTuple> {
        self.at_tick(0)
    }

    /// Flattens to the paper's `(instantiation, begin, end)` rows, sorted by
    /// instantiation then interval.
    pub fn rows(&self) -> Vec<(Vec<Value>, Interval)> {
        let mut out = Vec::new();
        for tup in &self.tuples {
            for iv in tup.intervals.intervals() {
                out.push((tup.values.clone(), *iv));
            }
        }
        out
    }

    /// Looks up the interval set of one instantiation.
    pub fn intervals_for(&self, values: &[Value]) -> Option<&IntervalSet> {
        self.tuples
            .iter()
            .find(|t| t.values == values)
            .map(|t| &t.intervals)
    }

    /// The first tick at which an instantiation enters the answer — the
    /// "reaching-time" of Section 2.3's "tuples (motel, reaching-time)
    /// representing the motels that I will reach, and the time when I will
    /// do so".
    pub fn first_satisfaction(&self, values: &[Value]) -> Option<most_temporal::Tick> {
        self.intervals_for(values).and_then(|s| s.first_tick())
    }

    /// All `(instantiation, reaching-time)` pairs, sorted by reaching time
    /// then instantiation.
    pub fn reaching_times(&self) -> Vec<(Vec<Value>, most_temporal::Tick)> {
        let mut out: Vec<(Vec<Value>, most_temporal::Tick)> = self
            .tuples
            .iter()
            .filter_map(|t| t.intervals.first_tick().map(|ft| (t.values.clone(), ft)))
            .collect();
        out.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
        out
    }

    /// Convenience: the single-variable instantiations as ids, for queries
    /// like `RETRIEVE o WHERE ...` over objects.
    pub fn ids(&self) -> Vec<u64> {
        self.tuples
            .iter()
            .filter_map(|t| t.values.first().and_then(|v| v.as_id()))
            .collect()
    }

    /// The row-wise union of two answers over the same target variables:
    /// an instantiation present in both contributes the union of its
    /// interval sets.  Commutative and associative (interval-set union
    /// is), so folding any permutation of parts yields an identical
    /// answer — the algebraic property a scatter-gather combine across
    /// database partitions leans on.
    ///
    /// # Panics
    ///
    /// Panics if the two answers disagree on their target-variable lists;
    /// callers combining untrusted parts must check `vars` first.
    pub fn union_with(&self, other: &Answer) -> Answer {
        assert_eq!(
            self.vars, other.vars,
            "Answer::union_with: answers disagree on target variables"
        );
        // Duplicate instantiations *within* one side union too — answers
        // are sorted but not deduplicated, so a plain collect would keep
        // only the last duplicate's intervals.
        let mut rows: std::collections::BTreeMap<Vec<Value>, IntervalSet> =
            std::collections::BTreeMap::new();
        for tup in self.tuples.iter().chain(&other.tuples) {
            rows.entry(tup.values.clone())
                .and_modify(|s| *s = s.union(&tup.intervals))
                .or_insert_with(|| tup.intervals.clone());
        }
        Answer::new(
            self.vars.clone(),
            rows.into_iter()
                .map(|(values, intervals)| AnswerTuple { values, intervals })
                .collect(),
        )
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.vars.join(", "))?;
        for (values, iv) in self.rows() {
            let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}  @{}", vs.join(", "), iv)?;
        }
        Ok(())
    }
}

most_testkit::json_struct!(AnswerTuple { values, intervals });
most_testkit::json_struct!(Answer { vars, tuples });

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Answer {
        Answer::new(
            vec!["o".into()],
            vec![
                AnswerTuple {
                    values: vec![Value::Id(2)],
                    intervals: IntervalSet::from_intervals([
                        Interval::new(10, 15),
                        Interval::new(20, 25),
                    ]),
                },
                AnswerTuple {
                    values: vec![Value::Id(5)],
                    intervals: IntervalSet::singleton(Interval::new(12, 14)),
                },
                AnswerTuple {
                    values: vec![Value::Id(9)],
                    intervals: IntervalSet::empty(),
                },
            ],
        )
    }

    #[test]
    fn empty_rows_dropped_and_sorted() {
        let a = sample();
        assert_eq!(a.len(), 2);
        assert_eq!(a.ids(), vec![2, 5]);
    }

    #[test]
    fn at_tick_presents_live_instantiations() {
        // The paper's own example: tuples (2,(10,15)) and (5,(12,14)):
        // "the system displays the object with id = 2 between clock ticks 10
        // and 15, and between clock-ticks 12 and 14 it also displays the
        // object with id = 5".
        let a = sample();
        assert_eq!(a.at_tick(11).len(), 1);
        assert_eq!(a.at_tick(13).len(), 2);
        assert_eq!(a.at_tick(16).len(), 0);
        assert_eq!(a.at_tick(22).len(), 1);
        assert!(a.now().is_empty());
    }

    #[test]
    fn rows_flatten_interval_sets() {
        let a = sample();
        let rows = a.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, Interval::new(10, 15));
        assert_eq!(rows[1].1, Interval::new(20, 25));
    }

    #[test]
    fn lookup_by_instantiation() {
        let a = sample();
        assert!(a.intervals_for(&[Value::Id(5)]).is_some());
        assert!(a.intervals_for(&[Value::Id(9)]).is_none());
    }

    #[test]
    fn reaching_times_sorted_by_entry() {
        let a = sample();
        assert_eq!(a.first_satisfaction(&[Value::Id(2)]), Some(10));
        assert_eq!(a.first_satisfaction(&[Value::Id(5)]), Some(12));
        assert_eq!(a.first_satisfaction(&[Value::Id(9)]), None);
        let rt = a.reaching_times();
        assert_eq!(rt.len(), 2);
        assert_eq!(rt[0], (vec![Value::Id(2)], 10));
        assert_eq!(rt[1], (vec![Value::Id(5)], 12));
    }

    #[test]
    fn display_contains_rows() {
        let s = sample().to_string();
        assert!(s.contains("#2"));
        assert!(s.contains("[12, 14]"));
    }
}
