//! Future Temporal Logic (FTL), the query language of the MOST model.
//!
//! Section 3 of the paper defines FTL: queries are
//! `RETRIEVE <target-list> WHERE <formula>` where formulas combine atomic
//! predicates (spatial methods and comparisons over attribute terms) with
//! `∧`, the assignment quantifier `[x ← term]`, and the temporal operators
//! `Until` and `Nexttime`; `Eventually`, `Always` and the bounded real-time
//! operators of Section 3.4 (`Eventually within c`, `Eventually after c`,
//! `Always for c`, `until_within c`) are derived.
//!
//! This crate provides the full pipeline:
//!
//! * [`lexer`] / [`parser`] — a concrete syntax for FTL (the paper presents
//!   formulas mathematically; the grammar here follows the paper's
//!   typography: `Eventually within 3 (INSIDE(o, P))`);
//! * [`ast`] — formulas, terms and [`ast::Query`];
//! * [`context`] — the [`context::EvalContext`] trait through which the
//!   evaluator sees the database (object domain, trajectories, static
//!   attributes, named regions).  `most-core` implements it for MOST
//!   databases; tests implement tiny in-memory contexts;
//! * [`semantics`] — the *reference evaluator*: a direct transcription of
//!   the Section 3.3 satisfaction relation, state by state.  It is the
//!   correctness oracle for the interval algorithm and the "evaluate the
//!   query at every point in time" baseline that Section 6 attributes to
//!   black-box method evaluation;
//! * [`numeric`] — piecewise-quadratic analysis of attribute terms, turning
//!   comparison atoms into tick-interval sets without enumerating states;
//! * [`relation`] — the appendix's relations `R_g`: instantiations of free
//!   variables paired with normalized interval sets, with the join
//!   machinery (conjunction, until, disjunction/negation extensions);
//! * [`eval`] — the appendix algorithm: bottom-up computation of `R_g` per
//!   subformula, producing an [`answer::Answer`] of
//!   `(instantiation, interval)` tuples that serves instantaneous *and*
//!   continuous queries with a single evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod ast;
pub mod context;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod numeric;
pub mod parser;
pub mod plan;
pub mod relation;
pub mod semantics;

pub use answer::Answer;
pub use ast::{Formula, Query, Term};
pub use context::EvalContext;
pub use error::{FtlError, FtlResult};
pub use eval::{evaluate_query, explain_query, TraceNode};
pub use plan::{evaluate_compiled, AtomCache, CompiledPlan};
