//! The evaluation context: how the FTL evaluator sees the database.
//!
//! The appendix assumes "the current database state reflects the positions
//! of objects as of [time zero], and for each dynamic variable we have
//! functions denoting how these variables change over time", so that "the
//! future history of the database is implicitly defined".  [`EvalContext`]
//! is that implicit history: the object domain, each object's (piecewise-)
//! linear motion, its static attributes and the named regions queries may
//! reference.
//!
//! For an *instantaneous* or *continuous* query every trajectory has a
//! single leg (the current motion vector, extrapolated).  For a *persistent*
//! query the trajectory and attribute series contain the recorded updates —
//! which is precisely why persistent evaluation "requires saving of
//! information about the way the database is updated over time"
//! (Section 2.3).

use most_dbms::value::Value;
use most_spatial::{Polygon, Trajectory};
use most_temporal::{Horizon, Interval};
use std::collections::BTreeMap;

/// The evaluator's read-only view of a MOST database history starting at
/// tick 0 (= the query entry time, per the appendix convention).
///
/// The `Sync` bound lets the evaluator fan the per-object candidate loop of
/// an atom across scoped worker threads (see
/// [`EvalContext::eval_workers`]); every implementation is a read-only view
/// over plain data, so the bound costs nothing.
pub trait EvalContext: Sync {
    /// The finite evaluation horizon (query expiration time).
    fn horizon(&self) -> Horizon;

    /// The active domain: ids of all objects, ascending.
    fn object_ids(&self) -> Vec<u64>;

    /// The motion of object `id` over the horizon (single-leg for
    /// instantaneous/continuous evaluation).
    fn trajectory(&self, id: u64) -> Option<Trajectory>;

    /// A static attribute's value series over the horizon: pairs of
    /// `(value, interval)` with disjoint intervals in order.  For
    /// instantaneous evaluation this is a single pair covering the horizon;
    /// persistent contexts return the recorded piecewise history.
    fn attr_series(&self, id: u64, name: &str) -> Vec<(Value, Interval)>;

    /// A named region (polygon) referenced by `INSIDE` / `OUTSIDE`.
    fn region(&self, name: &str) -> Option<Polygon>;

    /// Index-assisted candidate pruning for `INSIDE` atoms (the purpose of
    /// the Section 4 index: "avoid examining each moving object in the
    /// database").  Returns ids of every object whose motion *could* enter
    /// `region` within the horizon — a superset of the true answer; the
    /// evaluator still computes exact intervals per candidate.  `None`
    /// (the default) means "no index; enumerate the whole domain".
    fn inside_candidates(&self, _region: &Polygon) -> Option<Vec<u64>> {
        None
    }

    /// Index-assisted candidate pruning for attribute range atoms
    /// (`o.NAME <= c` and friends): ids of every object whose attribute
    /// `attr` *could* take a value in `[lo, hi]` somewhere on the horizon —
    /// a superset of the true answer; the evaluator still computes exact
    /// interval sets per candidate.  `None` (the default) means "no index;
    /// enumerate the whole domain".  Implementations must only return
    /// `Some` when every object carrying `attr` is covered by the index
    /// (objects without the attribute never satisfy a range comparison and
    /// may be pruned freely).
    fn attr_range_candidates(&self, _attr: &str, _lo: f64, _hi: f64) -> Option<Vec<u64>> {
        None
    }

    /// How many worker threads the evaluator may use for the per-object
    /// candidate loop of a single-variable atom.  `1` (the default) keeps
    /// evaluation strictly serial; contexts backed by large databases can
    /// raise it to split candidate objects over `std::thread::scope`
    /// workers (each binding is evaluated independently of the others, so
    /// the split is sound by construction).
    fn eval_workers(&self) -> usize {
        1
    }

    /// A *scalar dynamic attribute*'s piecewise-polynomial series: for each
    /// validity interval, coefficients `[a, b, c]` of `a·t² + b·t + c`
    /// (local evaluation time).  The paper's model covers "dynamic
    /// attributes \[that\] represent, for example, temperature, or fuel
    /// consumption"; this hook feeds them to the evaluator.  Defaults to
    /// empty (no such attribute), in which case the evaluator falls back to
    /// [`EvalContext::attr_series`].
    fn dynamic_series(&self, _id: u64, _name: &str) -> Vec<(Interval, [f64; 3])> {
        Vec::new()
    }
}

/// A self-contained in-memory context: the simplest possible MOST "database"
/// for tests, examples and benchmarks.
#[derive(Debug, Clone, Default)]
pub struct MemoryContext {
    horizon: Horizon,
    objects: BTreeMap<u64, MemoryObject>,
    regions: BTreeMap<String, Polygon>,
    workers: usize,
}

#[derive(Debug, Clone)]
struct MemoryObject {
    trajectory: Trajectory,
    attrs: BTreeMap<String, Vec<(Value, Interval)>>,
}

impl MemoryContext {
    /// Creates a context with the given horizon end.
    pub fn new(horizon_end: u64) -> Self {
        MemoryContext {
            horizon: Horizon::new(horizon_end),
            objects: BTreeMap::new(),
            regions: BTreeMap::new(),
            workers: 1,
        }
    }

    /// Allows the evaluator to use up to `n` worker threads for atom
    /// candidate loops (see [`EvalContext::eval_workers`]).
    pub fn set_workers(&mut self, n: usize) -> &mut Self {
        self.workers = n.max(1);
        self
    }

    /// Adds an object with its motion.
    pub fn add_object(&mut self, id: u64, trajectory: Trajectory) -> &mut Self {
        self.objects.insert(
            id,
            MemoryObject { trajectory, attrs: BTreeMap::new() },
        );
        self
    }

    /// Sets a static attribute constant over the horizon.
    pub fn set_attr(&mut self, id: u64, name: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        let iv = Interval::new(0, self.horizon.end());
        if let Some(o) = self.objects.get_mut(&id) {
            o.attrs.insert(name.into(), vec![(value.into(), iv)]);
        }
        self
    }

    /// Sets a static attribute's piecewise series (for persistent-query
    /// style histories).
    pub fn set_attr_series(
        &mut self,
        id: u64,
        name: impl Into<String>,
        series: Vec<(Value, Interval)>,
    ) -> &mut Self {
        if let Some(o) = self.objects.get_mut(&id) {
            o.attrs.insert(name.into(), series);
        }
        self
    }

    /// Registers a named region.
    pub fn add_region(&mut self, name: impl Into<String>, poly: Polygon) -> &mut Self {
        self.regions.insert(name.into(), poly);
        self
    }
}

impl EvalContext for MemoryContext {
    fn horizon(&self) -> Horizon {
        self.horizon
    }

    fn object_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    fn trajectory(&self, id: u64) -> Option<Trajectory> {
        self.objects.get(&id).map(|o| o.trajectory.clone())
    }

    fn attr_series(&self, id: u64, name: &str) -> Vec<(Value, Interval)> {
        self.objects
            .get(&id)
            .and_then(|o| o.attrs.get(name))
            .cloned()
            .unwrap_or_default()
    }

    fn region(&self, name: &str) -> Option<Polygon> {
        self.regions.get(name).cloned()
    }

    fn eval_workers(&self) -> usize {
        // `Default`-constructed contexts have `workers == 0`; clamp.
        self.workers.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::{Point, Velocity};

    #[test]
    fn memory_context_round_trip() {
        let mut ctx = MemoryContext::new(100);
        ctx.add_object(
            1,
            Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0)),
        );
        ctx.set_attr(1, "PRICE", 80.0);
        ctx.add_region("P", Polygon::rectangle(0.0, 0.0, 10.0, 10.0));

        assert_eq!(ctx.horizon().end(), 100);
        assert_eq!(ctx.object_ids(), vec![1]);
        assert!(ctx.trajectory(1).is_some());
        assert!(ctx.trajectory(2).is_none());
        let series = ctx.attr_series(1, "PRICE");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].0, Value::from(80.0));
        assert!(ctx.attr_series(1, "NOPE").is_empty());
        assert!(ctx.region("P").is_some());
        assert!(ctx.region("Q").is_none());
    }

    #[test]
    fn attr_series_piecewise() {
        let mut ctx = MemoryContext::new(10);
        ctx.add_object(
            1,
            Trajectory::starting_at(Point::origin(), Velocity::zero()),
        );
        ctx.set_attr_series(
            1,
            "SPEED_CLASS",
            vec![
                (Value::Int(1), Interval::new(0, 4)),
                (Value::Int(2), Interval::new(5, 10)),
            ],
        );
        let s = ctx.attr_series(1, "SPEED_CLASS");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].0, Value::Int(2));
    }
}
