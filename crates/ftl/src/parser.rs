//! Recursive-descent parser for FTL.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! query    := RETRIEVE ident (',' ident)* WHERE formula
//! formula  := or_f (Until or_f | until_within INT or_f)?      (right assoc)
//! or_f     := and_f (OR and_f)*
//! and_f    := unary (AND unary)*
//! unary    := NOT unary
//!           | Nexttime unary
//!           | Eventually (within INT | after INT)? unary
//!           | Always (for INT)? unary
//!           | '[' ident '<-' term ']' unary
//!           | primary
//! primary  := true | false
//!           | INSIDE '(' term ',' region [',' term] ')'   -- anchor => moving region
//!           | OUTSIDE '(' term ',' region [',' term] ')'
//!           | WITHIN_SPHERE '(' number (',' term)+ ')'
//!           | '(' formula ')'            (backtracks to a term comparison)
//!           | term cmp term
//! region   := ident                                  -- registered region
//!           | RECT '(' n ',' n ',' n ',' n ')'       -- inline, desugars
//!           | CIRCLE '(' n ',' n ',' n ')'           -- inline, desugars
//! term     := mul (('+'|'-') mul)*
//! mul      := factor (('*'|'/') factor)*
//! factor   := '-' factor | number | string | time
//!           | DIST '(' term ',' term ')' | POINT '(' snumber ',' snumber ')'
//!           | ident ('.' ident)* | '(' term ')'
//! ```

use crate::ast::{ArithOp, CmpOp, Formula, Query, Term};
use crate::error::{FtlError, FtlResult};
use crate::lexer::{tokenize, Spanned, Token};
use most_dbms::value::Value;

/// Parses a complete `RETRIEVE ... WHERE ...` query.
pub fn parse_query(src: &str) -> FtlResult<Query> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0, src_len: src.len() };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parses a bare formula.
pub fn parse_formula(src: &str) -> FtlResult<Formula> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0, src_len: src.len() };
    let f = p.formula()?;
    p.expect_end()?;
    Ok(f)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map(|s| s.offset).unwrap_or(self.src_len)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> FtlResult<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {t}, found {}",
                self.peek().map(|p| p.to_string()).unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_end(&mut self) -> FtlResult<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(format!("unexpected {t} after the formula"))),
        }
    }

    fn err(&self, message: impl Into<String>) -> FtlError {
        FtlError::parse(message, self.offset())
    }

    fn ident(&mut self) -> FtlResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn duration(&mut self) -> FtlResult<u64> {
        match self.next() {
            Some(Token::Int(n)) => Ok(n),
            other => Err(self.err(format!(
                "expected a tick count, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn number(&mut self) -> FtlResult<f64> {
        let neg = self.eat(&Token::Minus);
        let v = match self.next() {
            Some(Token::Int(n)) => n as f64,
            Some(Token::Float(x)) => x,
            other => {
                return Err(self.err(format!(
                    "expected a number, found {}",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        Ok(if neg { -v } else { v })
    }

    fn query(&mut self) -> FtlResult<Query> {
        self.expect(Token::Retrieve)?;
        let mut targets = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            targets.push(self.ident()?);
        }
        self.expect(Token::Where)?;
        let formula = self.formula()?;
        Ok(Query { targets, formula })
    }

    fn formula(&mut self) -> FtlResult<Formula> {
        let left = self.or_formula()?;
        if self.eat(&Token::Until) {
            let right = self.formula()?; // right associative
            Ok(left.until(right))
        } else if self.eat(&Token::UntilWithin) {
            let c = self.duration()?;
            let right = self.formula()?;
            Ok(Formula::UntilWithin(c, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn or_formula(&mut self) -> FtlResult<Formula> {
        let mut f = self.and_formula()?;
        while self.eat(&Token::Or) {
            f = f.or(self.and_formula()?);
        }
        Ok(f)
    }

    fn and_formula(&mut self) -> FtlResult<Formula> {
        let mut f = self.unary_formula()?;
        while self.eat(&Token::And) {
            f = f.and(self.unary_formula()?);
        }
        Ok(f)
    }

    fn unary_formula(&mut self) -> FtlResult<Formula> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(self.unary_formula()?.negate())
            }
            Some(Token::Nexttime) => {
                self.pos += 1;
                Ok(Formula::Nexttime(Box::new(self.unary_formula()?)))
            }
            Some(Token::Eventually) => {
                self.pos += 1;
                if self.eat(&Token::Within) {
                    let c = self.duration()?;
                    Ok(Formula::EventuallyWithin(c, Box::new(self.unary_formula()?)))
                } else if self.eat(&Token::After) {
                    let c = self.duration()?;
                    Ok(Formula::EventuallyAfter(c, Box::new(self.unary_formula()?)))
                } else {
                    Ok(Formula::Eventually(Box::new(self.unary_formula()?)))
                }
            }
            Some(Token::Always) => {
                self.pos += 1;
                if self.eat(&Token::For) {
                    let c = self.duration()?;
                    Ok(Formula::AlwaysFor(c, Box::new(self.unary_formula()?)))
                } else {
                    Ok(Formula::Always(Box::new(self.unary_formula()?)))
                }
            }
            Some(Token::LBracket) => {
                self.pos += 1;
                let x = self.ident()?;
                self.expect(Token::Assign)?;
                let term = self.term()?;
                self.expect(Token::RBracket)?;
                Ok(Formula::Assign(x, term, Box::new(self.unary_formula()?)))
            }
            _ => self.primary_formula(),
        }
    }

    fn primary_formula(&mut self) -> FtlResult<Formula> {
        match self.peek() {
            Some(Token::True) => {
                self.pos += 1;
                Ok(Formula::Bool(true))
            }
            Some(Token::False) => {
                self.pos += 1;
                Ok(Formula::Bool(false))
            }
            Some(Token::Inside) => {
                self.pos += 1;
                self.expect(Token::LParen)?;
                let t = self.term()?;
                self.expect(Token::Comma)?;
                let f = self.region_operand(t, false)?;
                self.expect(Token::RParen)?;
                Ok(f)
            }
            Some(Token::Outside) => {
                self.pos += 1;
                self.expect(Token::LParen)?;
                let t = self.term()?;
                self.expect(Token::Comma)?;
                let f = self.region_operand(t, true)?;
                self.expect(Token::RParen)?;
                Ok(f)
            }
            Some(Token::WithinSphere) => {
                self.pos += 1;
                self.expect(Token::LParen)?;
                let r = self.number()?;
                let mut terms = Vec::new();
                while self.eat(&Token::Comma) {
                    terms.push(self.term()?);
                }
                self.expect(Token::RParen)?;
                if terms.is_empty() {
                    return Err(self.err("WITHIN_SPHERE needs at least one point term"));
                }
                Ok(Formula::WithinSphere(r, terms))
            }
            Some(Token::LParen) => {
                // Could be a parenthesized formula or a parenthesized term
                // beginning a comparison; try the formula first, backtrack
                // on failure or when a comparison operator follows.
                let save = self.pos;
                self.pos += 1;
                if let Ok(f) = self.formula() {
                    if self.eat(&Token::RParen) && !self.peek_is_cmp_or_arith() {
                        return Ok(f);
                    }
                }
                self.pos = save;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    /// The second operand of `INSIDE` / `OUTSIDE`: a registered region name,
    /// or one of the inline literals `RECT(x0, y0, x1, y1)` /
    /// `CIRCLE(cx, cy, r)`, which desugar to coordinate comparisons and a
    /// `DIST` bound respectively (so the evaluator sees only core atoms).
    fn region_operand(&mut self, point: Term, negated: bool) -> FtlResult<Formula> {
        let name = self.ident()?;
        let inner = match name.to_ascii_uppercase().as_str() {
            "RECT" if self.peek() == Some(&Token::LParen) => {
                self.pos += 1;
                let x0 = self.number()?;
                self.expect(Token::Comma)?;
                let y0 = self.number()?;
                self.expect(Token::Comma)?;
                let x1 = self.number()?;
                self.expect(Token::Comma)?;
                let y1 = self.number()?;
                self.expect(Token::RParen)?;
                let (x0, x1) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
                let (y0, y1) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
                let x = Term::attr(point.clone(), "X");
                let y = Term::attr(point, "Y");
                Formula::Cmp(CmpOp::Ge, x.clone(), Term::val(x0))
                    .and(Formula::Cmp(CmpOp::Le, x, Term::val(x1)))
                    .and(Formula::Cmp(CmpOp::Ge, y.clone(), Term::val(y0)))
                    .and(Formula::Cmp(CmpOp::Le, y, Term::val(y1)))
            }
            "CIRCLE" if self.peek() == Some(&Token::LParen) => {
                self.pos += 1;
                let cx = self.number()?;
                self.expect(Token::Comma)?;
                let cy = self.number()?;
                self.expect(Token::Comma)?;
                let r = self.number()?;
                self.expect(Token::RParen)?;
                Formula::Cmp(
                    CmpOp::Le,
                    Term::Dist(Box::new(point), Box::new(Term::Point(cx, cy))),
                    Term::val(r),
                )
            }
            _ => {
                // Optional third argument: the region moves rigidly with an
                // anchor object (Section 1's circle drawn around the car).
                if self.eat(&Token::Comma) {
                    let anchor = self.term()?;
                    return Ok(if negated {
                        Formula::OutsideMoving(point, name, anchor)
                    } else {
                        Formula::InsideMoving(point, name, anchor)
                    });
                }
                return Ok(if negated {
                    Formula::Outside(point, name)
                } else {
                    Formula::Inside(point, name)
                });
            }
        };
        Ok(if negated { inner.negate() } else { inner })
    }

    fn peek_is_cmp_or_arith(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                Token::Eq
                    | Token::Ne
                    | Token::Lt
                    | Token::Le
                    | Token::Gt
                    | Token::Ge
                    | Token::Plus
                    | Token::Minus
                    | Token::Star
                    | Token::Slash
            )
        )
    }

    fn comparison(&mut self) -> FtlResult<Formula> {
        let lhs = self.term()?;
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator, found {}",
                    other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let rhs = self.term()?;
        Ok(Formula::Cmp(op, lhs, rhs))
    }

    fn term(&mut self) -> FtlResult<Term> {
        let mut t = self.mul_term()?;
        loop {
            if self.eat(&Token::Plus) {
                t = Term::Arith(ArithOp::Add, Box::new(t), Box::new(self.mul_term()?));
            } else if self.eat(&Token::Minus) {
                t = Term::Arith(ArithOp::Sub, Box::new(t), Box::new(self.mul_term()?));
            } else {
                return Ok(t);
            }
        }
    }

    fn mul_term(&mut self) -> FtlResult<Term> {
        let mut t = self.factor()?;
        loop {
            if self.eat(&Token::Star) {
                t = Term::Arith(ArithOp::Mul, Box::new(t), Box::new(self.factor()?));
            } else if self.eat(&Token::Slash) {
                t = Term::Arith(ArithOp::Div, Box::new(t), Box::new(self.factor()?));
            } else {
                return Ok(t);
            }
        }
    }

    fn factor(&mut self) -> FtlResult<Term> {
        match self.next() {
            Some(Token::Minus) => {
                let inner = self.factor()?;
                Ok(Term::Arith(
                    ArithOp::Sub,
                    Box::new(Term::Const(Value::Int(0))),
                    Box::new(inner),
                ))
            }
            Some(Token::Int(n)) => Ok(Term::Const(Value::Int(n as i64))),
            Some(Token::Float(x)) => Ok(Term::Const(Value::from(x))),
            Some(Token::Str(s)) => Ok(Term::Const(Value::Str(s))),
            Some(Token::Time) => Ok(Term::Time),
            Some(Token::Dist) => {
                self.expect(Token::LParen)?;
                let a = self.term()?;
                self.expect(Token::Comma)?;
                let b = self.term()?;
                self.expect(Token::RParen)?;
                Ok(Term::Dist(Box::new(a), Box::new(b)))
            }
            Some(Token::Point) => {
                self.expect(Token::LParen)?;
                let x = self.number()?;
                self.expect(Token::Comma)?;
                let y = self.number()?;
                self.expect(Token::RParen)?;
                Ok(Term::Point(x, y))
            }
            Some(Token::Ident(name)) => {
                let mut t = Term::Var(name);
                while self.eat(&Token::Dot) {
                    let attr = self.ident()?;
                    t = Term::Attr(Box::new(t), attr);
                }
                Ok(t)
            }
            Some(Token::LParen) => {
                let t = self.term()?;
                self.expect(Token::RParen)?;
                Ok(t)
            }
            other => Err(self.err(format!(
                "expected a term, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_ii() {
        // Example (II) of Section 3.4.
        let q = parse_query(
            "RETRIEVE o WHERE Eventually within 3 ((INSIDE(o, P) AND Always for 2 INSIDE(o, P)))",
        )
        .unwrap();
        assert_eq!(q.targets, vec!["o"]);
        match q.formula {
            Formula::EventuallyWithin(3, inner) => match *inner {
                Formula::And(a, b) => {
                    assert_eq!(*a, Formula::Inside(Term::var("o"), "P".into()));
                    assert!(matches!(*b, Formula::AlwaysFor(2, _)));
                }
                other => panic!("unexpected {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn paper_until_query() {
        // Section 3.2: DIST(o, n) <= 5 Until (INSIDE(o, P) AND INSIDE(n, P))
        let q = parse_query(
            "RETRIEVE o, n WHERE DIST(o, n) <= 5 Until (INSIDE(o, P) AND INSIDE(n, P))",
        )
        .unwrap();
        assert_eq!(q.targets, vec!["o", "n"]);
        assert!(matches!(q.formula, Formula::Until(..)));
        assert!(q.formula.is_conjunctive());
    }

    #[test]
    fn assignment_quantifier() {
        let f = parse_formula("[x <- o.SPEED] Eventually (o.SPEED >= 2 * x)").unwrap();
        match f {
            Formula::Assign(x, term, body) => {
                assert_eq!(x, "x");
                assert_eq!(term, Term::attr(Term::var("o"), "SPEED"));
                assert!(matches!(*body, Formula::Eventually(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parenthesized_term_comparison_backtracks() {
        let f = parse_formula("(time + 3) <= 10").unwrap();
        assert!(matches!(f, Formula::Cmp(CmpOp::Le, _, _)));
        // And a parenthesized formula still parses as a formula.
        let f = parse_formula("(INSIDE(o, P))").unwrap();
        assert!(matches!(f, Formula::Inside(..)));
    }

    #[test]
    fn until_is_right_associative() {
        let f = parse_formula("a = 1 Until b = 2 Until c = 3").unwrap();
        match f {
            Formula::Until(_, rhs) => assert!(matches!(*rhs, Formula::Until(..))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn until_within_parses() {
        let f = parse_formula("INSIDE(o, P) until_within 5 INSIDE(o, Q)").unwrap();
        assert!(matches!(f, Formula::UntilWithin(5, _, _)));
    }

    #[test]
    fn precedence_or_binds_looser_than_and() {
        let f = parse_formula("a = 1 OR b = 2 AND c = 3").unwrap();
        match f {
            Formula::Or(_, rhs) => assert!(matches!(*rhs, Formula::And(..))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn terms_with_arithmetic_precedence() {
        let f = parse_formula("o.PRICE + 2 * 3 <= 100").unwrap();
        match f {
            Formula::Cmp(CmpOp::Le, lhs, _) => match lhs {
                Term::Arith(ArithOp::Add, _, rhs) => {
                    assert!(matches!(*rhs, Term::Arith(ArithOp::Mul, _, _)));
                }
                other => panic!("unexpected {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn negative_numbers_and_points() {
        let f = parse_formula("DIST(o, POINT(-3, 4.5)) <= 2").unwrap();
        match f {
            Formula::Cmp(_, Term::Dist(_, b), _) => {
                assert_eq!(*b, Term::Point(-3.0, 4.5));
            }
            other => panic!("unexpected {other}"),
        }
        let f = parse_formula("o.VX = -2").unwrap();
        assert!(matches!(f, Formula::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn within_sphere_parses() {
        let f = parse_formula("WITHIN_SPHERE(2.5, o, n, m)").unwrap();
        match f {
            Formula::WithinSphere(r, ts) => {
                assert_eq!(r, 2.5);
                assert_eq!(ts.len(), 3);
            }
            other => panic!("unexpected {other}"),
        }
        assert!(parse_formula("WITHIN_SPHERE(2.5)").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_query("RETRIEVE WHERE true").unwrap_err();
        assert!(matches!(e, FtlError::Parse { .. }));
        let e = parse_formula("INSIDE(o P)").unwrap_err();
        assert!(e.to_string().contains("expected"));
        let e = parse_formula("a = 1 extra").unwrap_err();
        assert!(e.to_string().contains("after the formula"));
    }

    #[test]
    fn display_parses_back() {
        let src = "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 3 INSIDE(o, P)";
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
