//! FTL abstract syntax: terms, formulas and queries.

use most_dbms::value::Value;
use std::fmt;

/// Comparison operators usable in atomic formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two values (numeric coercion as in the
    /// substrate DBMS).
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        let ord = a.query_cmp(b);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => !ord.is_eq(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }

    /// The comparison with operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Arithmetic operators in terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A term: "a variable or the application of a function to other terms"
/// (Section 3.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable — an object variable (ranging over the database's
    /// objects) or a value variable bound by an assignment quantifier.
    Var(String),
    /// A constant.
    Const(Value),
    /// The special `time` database object (Section 2: "its value increases
    /// by one in each clock tick").
    Time,
    /// Attribute access `o.ATTR`.  The attribute names `X`, `Y`, `VX`,
    /// `VY` and `SPEED` denote the position coordinates and motion-vector
    /// sub-attributes of a moving object (the paper's
    /// `X.POSITION`, `X.POSITION.function` etc.); any other name is a
    /// static attribute.
    Attr(Box<Term>, String),
    /// `DIST(a, b)` — the distance method on two point terms.
    Dist(Box<Term>, Box<Term>),
    /// A literal stationary point `POINT(x, y)`.
    Point(f64, f64),
    /// Arithmetic on numeric terms.
    Arith(ArithOp, Box<Term>, Box<Term>),
}

impl Term {
    /// Variable helper.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Constant helper.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// `base.attr` helper.
    pub fn attr(base: Term, name: impl Into<String>) -> Term {
        Term::Attr(Box::new(base), name.into())
    }

    /// Free variables of the term, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Term::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            Term::Const(_) | Term::Time | Term::Point(..) => {}
            Term::Attr(b, _) => b.collect_vars(out),
            Term::Dist(a, b) | Term::Arith(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Pre-order walk over the term and every subterm.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Var(_) | Term::Const(_) | Term::Time | Term::Point(..) => {}
            Term::Attr(b, _) => b.visit(f),
            Term::Dist(a, b) | Term::Arith(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    /// Returns the term with variable `x` replaced by a constant.
    pub fn pin(&self, x: &str, v: &Value) -> Term {
        match self {
            Term::Var(name) if name == x => Term::Const(v.clone()),
            Term::Var(_) | Term::Const(_) | Term::Time | Term::Point(..) => self.clone(),
            Term::Attr(b, a) => Term::Attr(Box::new(b.pin(x, v)), a.clone()),
            Term::Dist(a, b) => Term::Dist(Box::new(a.pin(x, v)), Box::new(b.pin(x, v))),
            Term::Arith(op, a, b) => {
                Term::Arith(*op, Box::new(a.pin(x, v)), Box::new(b.pin(x, v)))
            }
        }
    }
}

/// An FTL formula (Section 3.2 syntax; `Or`/`Not` are the extensions
/// discussed in DESIGN.md D3 — the paper's processing algorithm covers the
/// conjunctive fragment).
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// Boolean constant.
    Bool(bool),
    /// Comparison atom `t1 op t2`.
    Cmp(CmpOp, Term, Term),
    /// `INSIDE(o, R)` — point term inside the named region.
    Inside(Term, String),
    /// `OUTSIDE(o, R)` — point term outside the named region.
    Outside(Term, String),
    /// `INSIDE(o, R, anchor)` — the region `R` (defined in world
    /// coordinates at evaluation time) moves "as a rigid body having the
    /// motion vector of" the anchor object (Section 1's circle drawn around
    /// the car).
    InsideMoving(Term, String, Term),
    /// `OUTSIDE(o, R, anchor)` — complement of [`Formula::InsideMoving`].
    OutsideMoving(Term, String, Term),
    /// `WITHIN_SPHERE(r, o1, ..., ok)` — the point terms fit in a sphere of
    /// radius `r`.
    WithinSphere(f64, Vec<Term>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction (extension).
    Or(Box<Formula>, Box<Formula>),
    /// Negation (extension; evaluated under active-domain semantics).
    Not(Box<Formula>),
    /// `f Until g`.
    Until(Box<Formula>, Box<Formula>),
    /// `Nexttime f`.
    Nexttime(Box<Formula>),
    /// `Eventually f` (= `true Until f`).
    Eventually(Box<Formula>),
    /// `Always f` (= `¬ Eventually ¬ f`).
    Always(Box<Formula>),
    /// `Eventually within c (f)` (Section 3.4).
    EventuallyWithin(u64, Box<Formula>),
    /// `Eventually after c (f)` (Section 3.4).
    EventuallyAfter(u64, Box<Formula>),
    /// `Always for c (f)` (Section 3.4).
    AlwaysFor(u64, Box<Formula>),
    /// `f until_within c g` (Section 3.4).
    UntilWithin(u64, Box<Formula>, Box<Formula>),
    /// Assignment quantifier `[x ← term] f` — "binds a variable to the
    /// result of a query in one of the database states of the history".
    Assign(String, Term, Box<Formula>),
}

impl Formula {
    /// `self AND other`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self Until other`.
    pub fn until(self, other: Formula) -> Formula {
        Formula::Until(Box::new(self), Box::new(other))
    }

    /// Free variables in first-occurrence order ("a variable is free if it
    /// is not in the scope of an assignment quantifier").
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        let push_term = |t: &Term, bound: &Vec<String>, out: &mut Vec<String>| {
            for v in t.free_vars() {
                if !bound.iter().any(|b| b == v) && !out.iter().any(|o| o == v) {
                    out.push(v.to_owned());
                }
            }
        };
        match self {
            Formula::Bool(_) => {}
            Formula::Cmp(_, a, b) => {
                push_term(a, bound, out);
                push_term(b, bound, out);
            }
            Formula::Inside(t, _) | Formula::Outside(t, _) => push_term(t, bound, out),
            Formula::InsideMoving(t, _, a) | Formula::OutsideMoving(t, _, a) => {
                push_term(t, bound, out);
                push_term(a, bound, out);
            }
            Formula::WithinSphere(_, ts) => {
                for t in ts {
                    push_term(t, bound, out);
                }
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Until(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::UntilWithin(_, a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::Not(a)
            | Formula::Nexttime(a)
            | Formula::Eventually(a)
            | Formula::Always(a)
            | Formula::EventuallyWithin(_, a)
            | Formula::EventuallyAfter(_, a)
            | Formula::AlwaysFor(_, a) => a.collect_free(bound, out),
            Formula::Assign(x, term, f) => {
                push_term(term, bound, out);
                bound.push(x.clone());
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// Pre-order walk over the formula and every subformula (terms are not
    /// descended into — pair with [`Formula::visit_terms`] /
    /// [`Term::visit`] for that).  This is the visitor that static analyses
    /// such as `most-core`'s dependency-set extraction are built on.
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::Bool(_)
            | Formula::Cmp(..)
            | Formula::Inside(..)
            | Formula::Outside(..)
            | Formula::InsideMoving(..)
            | Formula::OutsideMoving(..)
            | Formula::WithinSphere(..) => {}
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Until(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::UntilWithin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Formula::Not(a)
            | Formula::Nexttime(a)
            | Formula::Eventually(a)
            | Formula::Always(a)
            | Formula::EventuallyWithin(_, a)
            | Formula::EventuallyAfter(_, a)
            | Formula::AlwaysFor(_, a) => a.visit(f),
            Formula::Assign(_, _, body) => body.visit(f),
        }
    }

    /// Calls `f` once for every top-level term of every atom in the
    /// formula (including assignment source terms).  Use [`Term::visit`] on
    /// each to reach subterms.
    pub fn visit_terms(&self, f: &mut impl FnMut(&Term)) {
        self.visit(&mut |g| match g {
            Formula::Cmp(_, a, b) => {
                f(a);
                f(b);
            }
            Formula::Inside(t, _) | Formula::Outside(t, _) => f(t),
            Formula::InsideMoving(t, _, a) | Formula::OutsideMoving(t, _, a) => {
                f(t);
                f(a);
            }
            Formula::WithinSphere(_, ts) => {
                for t in ts {
                    f(t);
                }
            }
            Formula::Assign(_, term, _) => f(term),
            _ => {}
        });
    }

    /// Whether the formula is conjunctive (no negation / disjunction) — the
    /// fragment for which the paper states its algorithm.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            Formula::Not(_) | Formula::Or(..) => false,
            Formula::Bool(_)
            | Formula::Cmp(..)
            | Formula::Inside(..)
            | Formula::Outside(..)
            | Formula::InsideMoving(..)
            | Formula::OutsideMoving(..)
            | Formula::WithinSphere(..) => true,
            Formula::And(a, b) | Formula::Until(a, b) | Formula::UntilWithin(_, a, b) => {
                a.is_conjunctive() && b.is_conjunctive()
            }
            Formula::Nexttime(a)
            | Formula::Eventually(a)
            | Formula::Always(a)
            | Formula::EventuallyWithin(_, a)
            | Formula::EventuallyAfter(_, a)
            | Formula::AlwaysFor(_, a)
            | Formula::Assign(_, _, a) => a.is_conjunctive(),
        }
    }

    /// Returns the formula with variable `x` pinned to a constant value
    /// (used to evaluate the assignment quantifier).
    pub fn pin(&self, x: &str, v: &Value) -> Formula {
        match self {
            Formula::Bool(b) => Formula::Bool(*b),
            Formula::Cmp(op, a, b) => Formula::Cmp(*op, a.pin(x, v), b.pin(x, v)),
            Formula::Inside(t, r) => Formula::Inside(t.pin(x, v), r.clone()),
            Formula::Outside(t, r) => Formula::Outside(t.pin(x, v), r.clone()),
            Formula::InsideMoving(t, r, a) => {
                Formula::InsideMoving(t.pin(x, v), r.clone(), a.pin(x, v))
            }
            Formula::OutsideMoving(t, r, a) => {
                Formula::OutsideMoving(t.pin(x, v), r.clone(), a.pin(x, v))
            }
            Formula::WithinSphere(r, ts) => {
                Formula::WithinSphere(*r, ts.iter().map(|t| t.pin(x, v)).collect())
            }
            Formula::And(a, b) => a.pin(x, v).and(b.pin(x, v)),
            Formula::Or(a, b) => a.pin(x, v).or(b.pin(x, v)),
            Formula::Not(a) => a.pin(x, v).negate(),
            Formula::Until(a, b) => a.pin(x, v).until(b.pin(x, v)),
            Formula::UntilWithin(c, a, b) => {
                Formula::UntilWithin(*c, Box::new(a.pin(x, v)), Box::new(b.pin(x, v)))
            }
            Formula::Nexttime(a) => Formula::Nexttime(Box::new(a.pin(x, v))),
            Formula::Eventually(a) => Formula::Eventually(Box::new(a.pin(x, v))),
            Formula::Always(a) => Formula::Always(Box::new(a.pin(x, v))),
            Formula::EventuallyWithin(c, a) => {
                Formula::EventuallyWithin(*c, Box::new(a.pin(x, v)))
            }
            Formula::EventuallyAfter(c, a) => {
                Formula::EventuallyAfter(*c, Box::new(a.pin(x, v)))
            }
            Formula::AlwaysFor(c, a) => Formula::AlwaysFor(*c, Box::new(a.pin(x, v))),
            Formula::Assign(y, term, f) if y != x => Formula::Assign(
                y.clone(),
                term.pin(x, v),
                Box::new(f.pin(x, v)),
            ),
            // Shadowing: the inner x is a different variable; only the term
            // (evaluated in the outer scope) sees the pin.
            Formula::Assign(y, term, f) => {
                Formula::Assign(y.clone(), term.pin(x, v), f.clone())
            }
        }
    }
}

/// A complete FTL query: `RETRIEVE <targets> WHERE <formula>`.
///
/// ```
/// use most_ftl::Query;
///
/// let q = Query::parse(
///     "RETRIEVE o, n WHERE DIST(o, n) <= 5 Until (INSIDE(o, P) AND INSIDE(n, P))",
/// )
/// .unwrap();
/// assert_eq!(q.targets, vec!["o", "n"]);
/// assert!(q.formula.is_conjunctive());
/// // Display round-trips through the parser.
/// assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The target list (free variables whose instantiations are returned).
    pub targets: Vec<String>,
    /// The WHERE condition.
    pub formula: Formula,
}

impl Query {
    /// Parses a query from the concrete syntax (see [`crate::parser`]).
    pub fn parse(src: &str) -> crate::error::FtlResult<Query> {
        crate::parser::parse_query(src)
    }

    /// Parses a bare formula (no RETRIEVE clause).
    pub fn parse_formula(src: &str) -> crate::error::FtlResult<Formula> {
        crate::parser::parse_formula(src)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(v) => write!(f, "{v}"),
            Term::Time => write!(f, "time"),
            Term::Attr(b, a) => write!(f, "{b}.{a}"),
            Term::Dist(a, b) => write!(f, "DIST({a}, {b})"),
            Term::Point(x, y) => write!(f, "POINT({x}, {y})"),
            Term::Arith(op, a, b) => {
                let s = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({a} {s} {b})")
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Bool(b) => write!(f, "{b}"),
            Formula::Cmp(op, a, b) => {
                let s = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "<>",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{a} {s} {b}")
            }
            Formula::Inside(t, r) => write!(f, "INSIDE({t}, {r})"),
            Formula::Outside(t, r) => write!(f, "OUTSIDE({t}, {r})"),
            Formula::InsideMoving(t, r, a) => write!(f, "INSIDE({t}, {r}, {a})"),
            Formula::OutsideMoving(t, r, a) => write!(f, "OUTSIDE({t}, {r}, {a})"),
            Formula::WithinSphere(r, ts) => {
                write!(f, "WITHIN_SPHERE({r}")?;
                for t in ts {
                    write!(f, ", {t}")?;
                }
                write!(f, ")")
            }
            Formula::And(a, b) => write!(f, "({a} AND {b})"),
            Formula::Or(a, b) => write!(f, "({a} OR {b})"),
            Formula::Not(a) => write!(f, "(NOT {a})"),
            Formula::Until(a, b) => write!(f, "({a} Until {b})"),
            Formula::UntilWithin(c, a, b) => write!(f, "({a} until_within {c} {b})"),
            Formula::Nexttime(a) => write!(f, "Nexttime ({a})"),
            Formula::Eventually(a) => write!(f, "Eventually ({a})"),
            Formula::Always(a) => write!(f, "Always ({a})"),
            Formula::EventuallyWithin(c, a) => write!(f, "Eventually within {c} ({a})"),
            Formula::EventuallyAfter(c, a) => write!(f, "Eventually after {c} ({a})"),
            Formula::AlwaysFor(c, a) => write!(f, "Always for {c} ({a})"),
            Formula::Assign(x, t, a) => write!(f, "[{x} <- {t}] ({a})"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RETRIEVE {} WHERE {}", self.targets.join(", "), self.formula)
    }
}

most_testkit::json_enum!(CmpOp { Eq, Ne, Lt, Le, Gt, Ge });
most_testkit::json_enum!(ArithOp { Add, Sub, Mul, Div });
most_testkit::json_enum!(Term {
    Var(name),
    Const(v),
    Time,
    Attr(base, attr),
    Dist(a, b),
    Point(x, y),
    Arith(op, a, b),
});
most_testkit::json_enum!(Formula {
    Bool(b),
    Cmp(op, a, b),
    Inside(t, region),
    Outside(t, region),
    InsideMoving(t, region, anchor),
    OutsideMoving(t, region, anchor),
    WithinSphere(radius, terms),
    And(a, b),
    Or(a, b),
    Not(f),
    Until(a, b),
    Nexttime(f),
    Eventually(f),
    Always(f),
    EventuallyWithin(c, f),
    EventuallyAfter(c, f),
    AlwaysFor(c, f),
    UntilWithin(c, a, b),
    Assign(var, term, f),
});
most_testkit::json_struct!(Query { targets, formula });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_free_vars_dedup_in_order() {
        let t = Term::Arith(
            ArithOp::Add,
            Box::new(Term::Dist(Box::new(Term::var("o")), Box::new(Term::var("n")))),
            Box::new(Term::attr(Term::var("o"), "PRICE")),
        );
        assert_eq!(t.free_vars(), vec!["o", "n"]);
    }

    #[test]
    fn formula_free_vars_respect_assignment_scope() {
        // [x <- o.SPEED] (n.SPEED = x): free are o (term) and n; x is bound.
        let f = Formula::Assign(
            "x".into(),
            Term::attr(Term::var("o"), "SPEED"),
            Box::new(Formula::Cmp(
                CmpOp::Eq,
                Term::attr(Term::var("n"), "SPEED"),
                Term::var("x"),
            )),
        );
        assert_eq!(f.free_vars(), vec!["o", "n"]);
    }

    #[test]
    fn shadowed_assignment_keeps_inner_binding() {
        // [x <- 1] ([x <- 2] (x = 2)): pinning outer x must not touch the
        // inner body.
        let inner = Formula::Assign(
            "x".into(),
            Term::val(2i64),
            Box::new(Formula::Cmp(CmpOp::Eq, Term::var("x"), Term::val(2i64))),
        );
        let pinned = inner.pin("x", &Value::Int(1));
        // Inner body unchanged.
        match pinned {
            Formula::Assign(_, _, body) => {
                assert_eq!(
                    *body,
                    Formula::Cmp(CmpOp::Eq, Term::var("x"), Term::val(2i64))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conjunctive_detection() {
        let atom = Formula::Cmp(CmpOp::Le, Term::attr(Term::var("o"), "PRICE"), Term::val(100i64));
        assert!(atom.is_conjunctive());
        assert!(atom.clone().and(atom.clone()).is_conjunctive());
        assert!(Formula::Eventually(Box::new(atom.clone())).is_conjunctive());
        assert!(!atom.clone().negate().is_conjunctive());
        assert!(!atom.clone().or(atom.clone()).is_conjunctive());
    }

    #[test]
    fn pin_replaces_everywhere_outside_shadow() {
        let f = Formula::Cmp(
            CmpOp::Gt,
            Term::var("x"),
            Term::Arith(ArithOp::Mul, Box::new(Term::val(2i64)), Box::new(Term::var("x"))),
        );
        let p = f.pin("x", &Value::Int(3));
        assert_eq!(p.free_vars(), Vec::<String>::new());
    }

    #[test]
    fn display_round_trip_shapes() {
        let f = Formula::EventuallyWithin(
            3,
            Box::new(Formula::Inside(Term::var("o"), "P".into())),
        );
        assert_eq!(f.to_string(), "Eventually within 3 (INSIDE(o, P))");
        let q = Query { targets: vec!["o".into()], formula: f };
        assert!(q.to_string().starts_with("RETRIEVE o WHERE"));
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert!(CmpOp::Le.apply(&Value::Int(1), &Value::from(1.0)));
        assert!(CmpOp::Ne.apply(&Value::Int(1), &Value::Int(2)));
    }
}
