//! Moving regions (Section 1): "the driver may draw around [the car's
//! position] a circle ... and indicate that C moves as a rigid body having
//! the motion vector of the car" — `INSIDE(m, R, car)`.

use most_ftl::context::MemoryContext;
use most_ftl::semantics::naive_answer;
use most_ftl::{evaluate_query, Query};
use most_dbms::value::Value;
use most_spatial::{Point, Polygon, Trajectory, Velocity};

/// A car driving east with a 10×10 box region around its start, and two
/// stationary motels: one on the road ahead, one far off.
fn ctx() -> MemoryContext {
    let mut c = MemoryContext::new(200);
    c.add_object(
        1, // the car
        Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0)),
    );
    c.add_object(2, Trajectory::starting_at(Point::new(80.0, 2.0), Velocity::zero()));
    c.add_object(3, Trajectory::starting_at(Point::new(80.0, 90.0), Velocity::zero()));
    // Region defined in world coordinates at evaluation time, centred on
    // the car's start.
    c.add_region("C", Polygon::rectangle(-5.0, -5.0, 5.0, 5.0));
    c
}

#[test]
fn region_rides_with_the_anchor() {
    let c = ctx();
    let q = Query::parse("RETRIEVE m WHERE m <> o AND o.SPEED >= 1 AND INSIDE(m, C, o)")
        .unwrap();
    // Make o unambiguous: only the car has speed >= 1.
    let a = evaluate_query(&c, &q).unwrap();
    // Motel 2 is inside the moving box while the car is near x=80 (offset
    // ±5, y=2 within ±5); motel 3 never is.
    assert_eq!(a.ids(), vec![2]);
    let set = a.intervals_for(&[Value::Id(2)]).unwrap();
    assert_eq!(set.first_tick(), Some(75));
    assert_eq!(set.last_tick(), Some(85));
}

#[test]
fn matches_oracle_on_piecewise_anchors() {
    let mut c = ctx();
    // Give the car a turn mid-way; the region follows.
    let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
    traj.update_velocity(60, Velocity::new(0.0, 1.0));
    c.add_object(1, traj);
    for src in [
        "RETRIEVE m, o WHERE m <> o AND Eventually INSIDE(m, C, o)",
        "RETRIEVE m, o WHERE m <> o AND Always OUTSIDE(m, C, o)",
        "RETRIEVE m, o WHERE m <> o AND (OUTSIDE(m, C, o) Until INSIDE(m, C, o))",
    ] {
        let q = Query::parse(src).unwrap();
        let fast = evaluate_query(&c, &q).unwrap();
        let slow = naive_answer(&c, &q).unwrap();
        assert_eq!(fast, slow, "{src}");
    }
}

#[test]
fn stationary_anchor_equals_static_region() {
    let mut c = ctx();
    c.add_object(4, Trajectory::starting_at(Point::new(0.0, 0.0), Velocity::zero()));
    // Anchored to a parked object, the moving form degenerates to the
    // static one.
    let moving = Query::parse("RETRIEVE m WHERE Eventually INSIDE(m, C, POINT(0, 0))");
    // POINT anchors are allowed too (a degenerate stationary anchor).
    let q_static = Query::parse("RETRIEVE m WHERE Eventually INSIDE(m, C)").unwrap();
    let q_moving = moving.unwrap();
    let a = evaluate_query(&c, &q_moving).unwrap();
    let b = evaluate_query(&c, &q_static).unwrap();
    assert_eq!(a, b);
}

#[test]
fn display_round_trips() {
    let src = "RETRIEVE m, o WHERE Eventually INSIDE(m, C, o)";
    let q = Query::parse(src).unwrap();
    assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
}
