//! Parser robustness: arbitrary input must produce `Ok` or a structured
//! parse error — never a panic — and everything that parses must
//! pretty-print back to an equivalent AST.

use most_ftl::{FtlError, Query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC*") {
        match Query::parse(&s) {
            Ok(_) => {}
            Err(FtlError::Parse { .. }) => {}
            Err(other) => prop_assert!(false, "non-parse error from parser: {other}"),
        }
    }

    #[test]
    fn token_soup_never_panics(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("RETRIEVE"), Just("WHERE"), Just("o"), Just("n"), Just("x"),
                Just("AND"), Just("OR"), Just("NOT"), Just("Until"), Just("Nexttime"),
                Just("Eventually"), Just("Always"), Just("within"), Just("after"),
                Just("for"), Just("INSIDE"), Just("OUTSIDE"), Just("DIST"),
                Just("WITHIN_SPHERE"), Just("POINT"), Just("time"), Just("true"),
                Just("false"), Just("("), Just(")"), Just("["), Just("]"),
                Just(","), Just("."), Just("<="), Just(">="), Just("<"), Just(">"),
                Just("="), Just("<>"), Just("<-"), Just("+"), Just("-"), Just("*"),
                Just("/"), Just("3"), Just("2.5"), Just("'s'"), Just("until_within"),
            ],
            0..25
        )
    ) {
        let src = tokens.join(" ");
        match Query::parse(&src) {
            Ok(q) => {
                // Whatever parses must round-trip through Display.
                let again = Query::parse(&q.to_string());
                prop_assert_eq!(again.expect("display reparses"), q);
            }
            Err(FtlError::Parse { .. }) => {}
            Err(other) => prop_assert!(false, "non-parse error: {other}"),
        }
    }

    #[test]
    fn parse_errors_point_into_the_source(s in "RETRIEVE [a-z]{1,5} WHERE [a-z<>=. ()0-9]{0,30}") {
        if let Err(FtlError::Parse { offset, .. }) = Query::parse(&s) {
            prop_assert!(offset <= s.len(), "offset {} beyond input {}", offset, s.len());
        }
    }
}
