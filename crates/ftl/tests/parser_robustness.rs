//! Parser robustness: arbitrary input must produce `Ok` or a structured
//! parse error — never a panic — and everything that parses must
//! pretty-print back to an equivalent AST.

use most_ftl::{FtlError, Query};
use most_testkit::check::{ints, select, tuple2, vecs, Check, Gen};

/// Arbitrary (mostly printable, occasionally exotic) strings.
fn arb_string() -> Gen<String> {
    let pool: Vec<char> = ('\u{20}'..='\u{7e}')
        .chain(['\t', '\n', 'é', 'λ', '∀', '🚗', '\u{0}', '\u{7f}'])
        .collect();
    vecs(select(&pool), 0..40).map(|cs| cs.into_iter().collect())
}

#[test]
fn arbitrary_strings_never_panic() {
    Check::new("ftl::arbitrary_strings_never_panic").cases(512).run(&arb_string(), |s| {
        match Query::parse(s) {
            Ok(_) => {}
            Err(FtlError::Parse { .. }) => {}
            Err(other) => panic!("non-parse error from parser: {other}"),
        }
    });
}

#[test]
fn token_soup_never_panics() {
    let tokens = vecs(
        select(&[
            "RETRIEVE", "WHERE", "o", "n", "x", "AND", "OR", "NOT", "Until", "Nexttime",
            "Eventually", "Always", "within", "after", "for", "INSIDE", "OUTSIDE", "DIST",
            "WITHIN_SPHERE", "POINT", "time", "true", "false", "(", ")", "[", "]", ",", ".",
            "<=", ">=", "<", ">", "=", "<>", "<-", "+", "-", "*", "/", "3", "2.5", "'s'",
            "until_within",
        ]),
        0..25,
    );
    Check::new("ftl::token_soup_never_panics").cases(512).run(&tokens, |tokens| {
        let src = tokens.join(" ");
        match Query::parse(&src) {
            Ok(q) => {
                // Whatever parses must round-trip through Display.
                let again = Query::parse(&q.to_string());
                assert_eq!(again.expect("display reparses"), q);
            }
            Err(FtlError::Parse { .. }) => {}
            Err(other) => panic!("non-parse error: {other}"),
        }
    });
}

#[test]
fn parse_errors_point_into_the_source() {
    let target = vecs(select(&('a'..='z').collect::<Vec<char>>()), 1..6)
        .map(|cs| cs.into_iter().collect::<String>());
    let body_pool: Vec<char> = ('a'..='z')
        .chain(['<', '>', '=', '.', ' ', '(', ')'])
        .chain('0'..='9')
        .collect();
    let body = vecs(select(&body_pool), 0..31).map(|cs| cs.into_iter().collect::<String>());
    let gen = tuple2(target, body).map(|(t, b)| format!("RETRIEVE {t} WHERE {b}"));
    // Also shift the error offset around with a random prefix of spaces.
    let gen = tuple2(gen, ints(0usize..3)).map(|(s, pad)| format!("{}{s}", " ".repeat(pad)));
    Check::new("ftl::parse_errors_point_into_the_source").cases(512).run(&gen, |s| {
        if let Err(FtlError::Parse { offset, .. }) = Query::parse(s) {
            assert!(offset <= s.len(), "offset {} beyond input {}", offset, s.len());
        }
    });
}
