//! Property tests: the appendix interval algorithm must agree with the
//! naive per-tick Section 3.3 oracle on random scenarios and random
//! formulas.

use most_ftl::context::MemoryContext;
use most_ftl::semantics::naive_answer;
use most_ftl::{evaluate_query, Query};
use most_spatial::{Point, Polygon, Trajectory, Velocity};
use proptest::prelude::*;

const H_END: u64 = 60;

#[derive(Debug, Clone)]
#[allow(clippy::type_complexity)]
struct Scenario {
    objects: Vec<(Point, Velocity, Option<(u64, Velocity)>, f64)>, // pos, vel, update, price
    region_p: (f64, f64, f64, f64),
    region_q: (f64, f64, f64, f64),
}

fn arb_coord() -> impl Strategy<Value = f64> {
    (-60i32..=60).prop_map(|v| v as f64)
}

fn arb_vel() -> impl Strategy<Value = Velocity> {
    ((-8i32..=8), (-8i32..=8)).prop_map(|(x, y)| Velocity::new(x as f64 * 0.25, y as f64 * 0.25))
}

fn arb_object() -> impl Strategy<Value = (Point, Velocity, Option<(u64, Velocity)>, f64)> {
    (
        (arb_coord(), arb_coord()).prop_map(|(x, y)| Point::new(x, y)),
        arb_vel(),
        prop::option::of((1..H_END, arb_vel())),
        (0u32..200).prop_map(|p| p as f64),
    )
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(arb_object(), 1..5),
        (arb_coord(), arb_coord(), 5u32..40, 5u32..40),
        (arb_coord(), arb_coord(), 5u32..40, 5u32..40),
    )
        .prop_map(|(objects, p, q)| Scenario {
            objects,
            region_p: (p.0, p.1, p.0 + p.2 as f64, p.1 + p.3 as f64),
            region_q: (q.0, q.1, q.0 + q.2 as f64, q.1 + q.3 as f64),
        })
}

fn build_context(s: &Scenario) -> MemoryContext {
    let mut ctx = MemoryContext::new(H_END);
    for (i, (pos, vel, update, price)) in s.objects.iter().enumerate() {
        let mut traj = Trajectory::starting_at(*pos, *vel);
        if let Some((t, v2)) = update {
            traj.update_velocity(*t, *v2);
        }
        ctx.add_object(i as u64 + 1, traj);
        ctx.set_attr(i as u64 + 1, "PRICE", *price);
    }
    let (x0, y0, x1, y1) = s.region_p;
    ctx.add_region("P", Polygon::rectangle(x0, y0, x1, y1));
    let (x0, y0, x1, y1) = s.region_q;
    ctx.add_region("Q", Polygon::rectangle(x0, y0, x1, y1));
    ctx
}

/// Query templates exercising every operator; `{c}` is replaced by a small
/// duration.
const TEMPLATES: &[&str] = &[
    "RETRIEVE o WHERE Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE Always OUTSIDE(o, Q)",
    "RETRIEVE o WHERE Eventually within {c} INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually after {c} INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually (INSIDE(o, P) AND Always for {c} INSIDE(o, P))",
    "RETRIEVE o WHERE Nexttime Nexttime INSIDE(o, P)",
    "RETRIEVE o WHERE OUTSIDE(o, P) Until INSIDE(o, P)",
    "RETRIEVE o WHERE OUTSIDE(o, P) until_within {c} INSIDE(o, P)",
    "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE INSIDE(o, P) OR INSIDE(o, Q)",
    "RETRIEVE o WHERE NOT Eventually INSIDE(o, P)",
    "RETRIEVE o, n WHERE Eventually (DIST(o, n) <= {c})",
    "RETRIEVE o, n WHERE DIST(o, n) <= 40 Until (INSIDE(o, P) AND INSIDE(n, P))",
    "RETRIEVE o, n WHERE Eventually WITHIN_SPHERE(8, o, n)",
    "RETRIEVE o WHERE Eventually (o.X >= 10 AND o.Y <= 20)",
    "RETRIEVE o WHERE [x <- o.SPEED] Eventually (o.SPEED >= 2 * x)",
    "RETRIEVE o WHERE Always (time <= {c} OR OUTSIDE(o, P))",
    "RETRIEVE o WHERE Eventually (DIST(o, POINT(10, 10)) <= {c})",
    "RETRIEVE o, n WHERE o <> n AND Eventually (DIST(o, n) <= 5)",
    "RETRIEVE o WHERE Eventually (o.VX >= 1 AND INSIDE(o, P))",
    "RETRIEVE o WHERE [x <- o.SPEED] [y <- o.PRICE] Eventually (o.SPEED >= x AND o.PRICE <= y)",
    "RETRIEVE o WHERE (INSIDE(o, P) OR INSIDE(o, Q)) Until OUTSIDE(o, P)",
    "RETRIEVE o WHERE Always Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually Always INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually within {c} Nexttime INSIDE(o, P)",
    "RETRIEVE o, n WHERE o <> n AND Eventually INSIDE(o, P, n)",
    "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 40 Until INSIDE(o, P))",
    "RETRIEVE o, n WHERE o <> n AND Always OUTSIDE(o, Q, n)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_algorithm_matches_oracle(
        s in arb_scenario(),
        template_idx in 0..TEMPLATES.len(),
        c in 1u64..30
    ) {
        let ctx = build_context(&s);
        let src = TEMPLATES[template_idx].replace("{c}", &c.to_string());
        let q = Query::parse(&src).expect("template parses");
        let fast = evaluate_query(&ctx, &q).expect("interval evaluation succeeds");
        let slow = naive_answer(&ctx, &q).expect("oracle evaluation succeeds");
        prop_assert_eq!(fast, slow, "query: {}", src);
    }

    #[test]
    fn answers_are_normalized(
        s in arb_scenario(),
        template_idx in 0..TEMPLATES.len(),
        c in 1u64..30
    ) {
        let ctx = build_context(&s);
        let src = TEMPLATES[template_idx].replace("{c}", &c.to_string());
        let q = Query::parse(&src).expect("template parses");
        let a = evaluate_query(&ctx, &q).expect("evaluation succeeds");
        for tup in &a.tuples {
            prop_assert!(tup.intervals.is_normalized());
            prop_assert!(!tup.intervals.is_empty());
            prop_assert_eq!(tup.values.len(), q.targets.len());
        }
    }
}
