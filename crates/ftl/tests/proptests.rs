//! Property tests: the appendix interval algorithm must agree with the
//! naive per-tick Section 3.3 oracle on random scenarios and random
//! formulas.

use most_ftl::context::MemoryContext;
use most_ftl::semantics::naive_answer;
use most_ftl::{evaluate_query, Query};
use most_spatial::{Point, Polygon, Trajectory, Velocity};
use most_testkit::check::{ints, just, one_of, tuple2, tuple3, tuple4, vecs, Check, Gen};

const H_END: u64 = 60;

#[derive(Debug, Clone)]
#[allow(clippy::type_complexity)]
struct Scenario {
    objects: Vec<(Point, Velocity, Option<(u64, Velocity)>, f64)>, // pos, vel, update, price
    region_p: (f64, f64, f64, f64),
    region_q: (f64, f64, f64, f64),
}

fn arb_coord() -> Gen<f64> {
    ints(-60i32..=60).map(|v| v as f64)
}

fn arb_vel() -> Gen<Velocity> {
    tuple2(ints(-8i32..=8), ints(-8i32..=8))
        .map(|(x, y)| Velocity::new(x as f64 * 0.25, y as f64 * 0.25))
}

#[allow(clippy::type_complexity)]
fn arb_object() -> Gen<(Point, Velocity, Option<(u64, Velocity)>, f64)> {
    tuple4(
        tuple2(arb_coord(), arb_coord()).map(|(x, y)| Point::new(x, y)),
        arb_vel(),
        one_of(vec![
            just(None),
            tuple2(ints(1..H_END), arb_vel()).map(Some),
        ]),
        ints(0u32..200).map(|p| p as f64),
    )
}

fn arb_rect_tuple() -> Gen<(f64, f64, f64, f64)> {
    tuple4(arb_coord(), arb_coord(), ints(5u32..40), ints(5u32..40))
        .map(|(x, y, w, h)| (x, y, x + w as f64, y + h as f64))
}

fn arb_scenario() -> Gen<Scenario> {
    tuple3(vecs(arb_object(), 1..5), arb_rect_tuple(), arb_rect_tuple()).map(
        |(objects, region_p, region_q)| Scenario { objects, region_p, region_q },
    )
}

fn build_context(s: &Scenario) -> MemoryContext {
    let mut ctx = MemoryContext::new(H_END);
    for (i, (pos, vel, update, price)) in s.objects.iter().enumerate() {
        let mut traj = Trajectory::starting_at(*pos, *vel);
        if let Some((t, v2)) = update {
            traj.update_velocity(*t, *v2);
        }
        ctx.add_object(i as u64 + 1, traj);
        ctx.set_attr(i as u64 + 1, "PRICE", *price);
    }
    let (x0, y0, x1, y1) = s.region_p;
    ctx.add_region("P", Polygon::rectangle(x0, y0, x1, y1));
    let (x0, y0, x1, y1) = s.region_q;
    ctx.add_region("Q", Polygon::rectangle(x0, y0, x1, y1));
    ctx
}

/// Query templates exercising every operator; `{c}` is replaced by a small
/// duration.
const TEMPLATES: &[&str] = &[
    "RETRIEVE o WHERE Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE Always OUTSIDE(o, Q)",
    "RETRIEVE o WHERE Eventually within {c} INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually after {c} INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually (INSIDE(o, P) AND Always for {c} INSIDE(o, P))",
    "RETRIEVE o WHERE Nexttime Nexttime INSIDE(o, P)",
    "RETRIEVE o WHERE OUTSIDE(o, P) Until INSIDE(o, P)",
    "RETRIEVE o WHERE OUTSIDE(o, P) until_within {c} INSIDE(o, P)",
    "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE INSIDE(o, P) OR INSIDE(o, Q)",
    "RETRIEVE o WHERE NOT Eventually INSIDE(o, P)",
    "RETRIEVE o, n WHERE Eventually (DIST(o, n) <= {c})",
    "RETRIEVE o, n WHERE DIST(o, n) <= 40 Until (INSIDE(o, P) AND INSIDE(n, P))",
    "RETRIEVE o, n WHERE Eventually WITHIN_SPHERE(8, o, n)",
    "RETRIEVE o WHERE Eventually (o.X >= 10 AND o.Y <= 20)",
    "RETRIEVE o WHERE [x <- o.SPEED] Eventually (o.SPEED >= 2 * x)",
    "RETRIEVE o WHERE Always (time <= {c} OR OUTSIDE(o, P))",
    "RETRIEVE o WHERE Eventually (DIST(o, POINT(10, 10)) <= {c})",
    "RETRIEVE o, n WHERE o <> n AND Eventually (DIST(o, n) <= 5)",
    "RETRIEVE o WHERE Eventually (o.VX >= 1 AND INSIDE(o, P))",
    "RETRIEVE o WHERE [x <- o.SPEED] [y <- o.PRICE] Eventually (o.SPEED >= x AND o.PRICE <= y)",
    "RETRIEVE o WHERE (INSIDE(o, P) OR INSIDE(o, Q)) Until OUTSIDE(o, P)",
    "RETRIEVE o WHERE Always Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually Always INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually within {c} Nexttime INSIDE(o, P)",
    "RETRIEVE o, n WHERE o <> n AND Eventually INSIDE(o, P, n)",
    "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 40 Until INSIDE(o, P))",
    "RETRIEVE o, n WHERE o <> n AND Always OUTSIDE(o, Q, n)",
];

#[test]
fn interval_algorithm_matches_oracle() {
    Check::new("ftl::interval_algorithm_matches_oracle").cases(48).run(
        &tuple3(arb_scenario(), ints(0..TEMPLATES.len()), ints(1u64..30)),
        |(s, template_idx, c)| {
            let ctx = build_context(s);
            let src = TEMPLATES[*template_idx].replace("{c}", &c.to_string());
            let q = Query::parse(&src).expect("template parses");
            let fast = evaluate_query(&ctx, &q).expect("interval evaluation succeeds");
            let slow = naive_answer(&ctx, &q).expect("oracle evaluation succeeds");
            assert_eq!(fast, slow, "query: {src}");
        },
    );
}

#[test]
fn answers_are_normalized() {
    Check::new("ftl::answers_are_normalized").cases(48).run(
        &tuple3(arb_scenario(), ints(0..TEMPLATES.len()), ints(1u64..30)),
        |(s, template_idx, c)| {
            let ctx = build_context(s);
            let src = TEMPLATES[*template_idx].replace("{c}", &c.to_string());
            let q = Query::parse(&src).expect("template parses");
            let a = evaluate_query(&ctx, &q).expect("evaluation succeeds");
            for tup in &a.tuples {
                assert!(tup.intervals.is_normalized());
                assert!(!tup.intervals.is_empty());
                assert_eq!(tup.values.len(), q.targets.len());
            }
        },
    );
}
