//! Inline region literals: `INSIDE(o, RECT(...))` and `INSIDE(o, CIRCLE(...))`
//! desugar to core atoms and must agree with the equivalent registered
//! region / DIST formulations.

use most_ftl::context::MemoryContext;
use most_ftl::{evaluate_query, Query};
use most_spatial::{Point, Polygon, Trajectory, Velocity};

fn ctx() -> MemoryContext {
    let mut c = MemoryContext::new(200);
    c.add_object(
        1,
        Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.25)),
    );
    c.add_object(
        2,
        Trajectory::starting_at(Point::new(150.0, 40.0), Velocity::new(-1.0, 0.0)),
    );
    c.add_region("P", Polygon::rectangle(50.0, 0.0, 90.0, 30.0));
    c
}

#[test]
fn rect_literal_matches_registered_region() {
    let c = ctx();
    let via_name = Query::parse("RETRIEVE o WHERE Eventually INSIDE(o, P)").unwrap();
    let via_lit =
        Query::parse("RETRIEVE o WHERE Eventually INSIDE(o, RECT(50, 0, 90, 30))").unwrap();
    assert_eq!(
        evaluate_query(&c, &via_name).unwrap(),
        evaluate_query(&c, &via_lit).unwrap()
    );
}

#[test]
fn rect_literal_normalizes_corner_order() {
    let c = ctx();
    let a = Query::parse("RETRIEVE o WHERE INSIDE(o, RECT(50, 0, 90, 30))").unwrap();
    let b = Query::parse("RETRIEVE o WHERE INSIDE(o, RECT(90, 30, 50, 0))").unwrap();
    assert_eq!(evaluate_query(&c, &a).unwrap(), evaluate_query(&c, &b).unwrap());
}

#[test]
fn circle_literal_matches_dist_formulation() {
    let c = ctx();
    let via_lit =
        Query::parse("RETRIEVE o WHERE Eventually INSIDE(o, CIRCLE(70, 15, 25))").unwrap();
    let via_dist =
        Query::parse("RETRIEVE o WHERE Eventually (DIST(o, POINT(70, 15)) <= 25)").unwrap();
    assert_eq!(
        evaluate_query(&c, &via_lit).unwrap(),
        evaluate_query(&c, &via_dist).unwrap()
    );
}

#[test]
fn outside_literals_are_complements() {
    let c = ctx();
    let inside = Query::parse("RETRIEVE o WHERE INSIDE(o, RECT(50, 0, 90, 30))").unwrap();
    let outside = Query::parse("RETRIEVE o WHERE OUTSIDE(o, RECT(50, 0, 90, 30))").unwrap();
    let a = evaluate_query(&c, &inside).unwrap();
    let b = evaluate_query(&c, &outside).unwrap();
    use most_dbms::value::Value;
    for id in [1u64, 2] {
        let sa = a.intervals_for(&[Value::Id(id)]).cloned().unwrap_or_default();
        let sb = b.intervals_for(&[Value::Id(id)]).cloned().unwrap_or_default();
        assert!(sa.intersect(&sb).is_empty(), "object {id}");
        assert_eq!(
            sa.union(&sb).tick_count(),
            201,
            "object {id} covers the horizon"
        );
    }
}

#[test]
fn named_regions_still_work_and_errors_survive() {
    let c = ctx();
    // A region actually named RECT (no parenthesis follows): treated as a
    // name lookup and fails as unknown.
    let q = Query::parse("RETRIEVE o WHERE INSIDE(o, RECT)").unwrap();
    assert!(evaluate_query(&c, &q).is_err());
    // Malformed literal is a parse error.
    assert!(Query::parse("RETRIEVE o WHERE INSIDE(o, RECT(1, 2, 3))").is_err());
    assert!(Query::parse("RETRIEVE o WHERE INSIDE(o, CIRCLE(1, 2))").is_err());
}
