//! Solving linear and quadratic inequalities over real-valued time.
//!
//! The moving-object predicates reduce to inequalities of the form
//! `a·t² + b·t + c ≤ 0` (squared distance between two linearly moving points
//! minus `r²`) or `b·t + c ≤ 0` / `= 0` (a moving point crossing a line).
//! Solutions are unions of at most two real intervals, represented by
//! [`RealIntervals`]; [`crate::predicates`] converts them to exact tick
//! intervals.



/// A (possibly unbounded) closed real interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealInterval {
    /// Lower end (may be `-inf`).
    pub lo: f64,
    /// Upper end (may be `+inf`).
    pub hi: f64,
}

impl RealInterval {
    /// Creates `[lo, hi]`; `None` when empty.
    pub fn new(lo: f64, hi: f64) -> Option<Self> {
        (lo <= hi).then_some(RealInterval { lo, hi })
    }

    /// The whole real line.
    pub fn all() -> Self {
        RealInterval { lo: -f64::INFINITY, hi: f64::INFINITY }
    }
}

/// The solution set of a degree-≤2 inequality: at most two disjoint real
/// intervals, sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RealIntervals {
    intervals: Vec<RealInterval>,
}

impl RealIntervals {
    /// No solutions.
    pub fn none() -> Self {
        RealIntervals::default()
    }

    /// All of ℝ.
    pub fn all() -> Self {
        RealIntervals { intervals: vec![RealInterval::all()] }
    }

    /// Constructs from already-sorted, disjoint intervals.
    ///
    /// Used by callers that assemble candidate solution sets themselves
    /// (e.g. the FTL numeric-term analysis) before handing them to
    /// [`crate::predicates::exact_ticks`] for per-tick verification.
    pub fn of(intervals: Vec<RealInterval>) -> Self {
        RealIntervals { intervals }
    }

    /// Clips every interval to `[lo, hi]`, dropping the empty ones.
    pub fn clipped(&self, lo: f64, hi: f64) -> RealIntervals {
        RealIntervals {
            intervals: self
                .intervals
                .iter()
                .filter_map(|iv| RealInterval::new(iv.lo.max(lo), iv.hi.min(hi)))
                .collect(),
        }
    }

    /// The solution intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[RealInterval] {
        &self.intervals
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

/// Solves `a·t² + b·t + c ≤ 0` over ℝ.
///
/// Degenerate coefficients fall through to the linear / constant cases, so
/// the function is safe to call with `a = 0` (parallel motion) or
/// `a = b = 0` (identical motion).
pub fn solve_quadratic_le(a: f64, b: f64, c: f64) -> RealIntervals {
    if a == 0.0 {
        return solve_linear_le(b, c);
    }
    let disc = b * b - 4.0 * a * c;
    if a > 0.0 {
        // Upward parabola: solutions between the roots.
        if disc < 0.0 {
            RealIntervals::none()
        } else {
            let s = disc.sqrt();
            let r1 = (-b - s) / (2.0 * a);
            let r2 = (-b + s) / (2.0 * a);
            RealIntervals::of(vec![RealInterval { lo: r1, hi: r2 }])
        }
    } else {
        // Downward parabola: solutions outside the roots.
        if disc < 0.0 {
            RealIntervals::all()
        } else {
            let s = disc.sqrt();
            // With a < 0 the smaller root comes from the `+` branch.
            let r1 = (-b + s) / (2.0 * a);
            let r2 = (-b - s) / (2.0 * a);
            RealIntervals::of(vec![
                RealInterval { lo: -f64::INFINITY, hi: r1 },
                RealInterval { lo: r2, hi: f64::INFINITY },
            ])
        }
    }
}

/// Solves `b·t + c ≤ 0` over ℝ.
pub fn solve_linear_le(b: f64, c: f64) -> RealIntervals {
    if b == 0.0 {
        if c <= 0.0 {
            RealIntervals::all()
        } else {
            RealIntervals::none()
        }
    } else {
        let root = -c / b;
        if b > 0.0 {
            RealIntervals::of(vec![RealInterval { lo: -f64::INFINITY, hi: root }])
        } else {
            RealIntervals::of(vec![RealInterval { lo: root, hi: f64::INFINITY }])
        }
    }
}

/// Solves `b·t + c = 0` over ℝ, returning the root when unique.
///
/// Returns `None` both for no solution (`b = 0, c ≠ 0`) and for the
/// everywhere-zero case (`b = 0, c = 0`); callers treat a constant-zero
/// crossing function as "no crossing event" and rely on interval sampling.
pub fn solve_linear_eq(b: f64, c: f64) -> Option<f64> {
    (b != 0.0).then(|| -c / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holds(a: f64, b: f64, c: f64, t: f64) -> bool {
        a * t * t + b * t + c <= 0.0
    }

    fn check_against_samples(a: f64, b: f64, c: f64) {
        let sol = solve_quadratic_le(a, b, c);
        for i in -100..=100 {
            let t = i as f64 * 0.37;
            let in_sol = sol
                .intervals()
                .iter()
                .any(|iv| iv.lo - 1e-9 <= t && t <= iv.hi + 1e-9);
            let expected = holds(a, b, c, t);
            // Allow disagreement only within root tolerance.
            if in_sol != expected {
                let near_root = sol
                    .intervals()
                    .iter()
                    .flat_map(|iv| [iv.lo, iv.hi])
                    .any(|r| (t - r).abs() < 1e-6);
                assert!(near_root, "a={a} b={b} c={c} t={t}");
            }
        }
    }

    #[test]
    fn upward_parabola_with_roots() {
        // (t-2)(t-5) = t² -7t + 10 <= 0 on [2, 5]
        let sol = solve_quadratic_le(1.0, -7.0, 10.0);
        assert_eq!(sol.intervals().len(), 1);
        assert!((sol.intervals()[0].lo - 2.0).abs() < 1e-12);
        assert!((sol.intervals()[0].hi - 5.0).abs() < 1e-12);
        check_against_samples(1.0, -7.0, 10.0);
    }

    #[test]
    fn upward_parabola_no_roots() {
        assert!(solve_quadratic_le(1.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn downward_parabola_two_rays() {
        // -(t-2)(t-5) <= 0 outside (2, 5)
        let sol = solve_quadratic_le(-1.0, 7.0, -10.0);
        assert_eq!(sol.intervals().len(), 2);
        assert!((sol.intervals()[0].hi - 2.0).abs() < 1e-12);
        assert!((sol.intervals()[1].lo - 5.0).abs() < 1e-12);
        check_against_samples(-1.0, 7.0, -10.0);
    }

    #[test]
    fn downward_parabola_always_negative() {
        assert_eq!(solve_quadratic_le(-1.0, 0.0, -1.0), RealIntervals::all());
    }

    #[test]
    fn linear_cases() {
        // 2t - 6 <= 0  ->  t <= 3
        let sol = solve_linear_le(2.0, -6.0);
        assert_eq!(sol.intervals()[0].hi, 3.0);
        // -2t + 6 <= 0 ->  t >= 3
        let sol = solve_linear_le(-2.0, 6.0);
        assert_eq!(sol.intervals()[0].lo, 3.0);
        check_against_samples(0.0, 2.0, -6.0);
        check_against_samples(0.0, -2.0, 6.0);
    }

    #[test]
    fn constant_cases() {
        assert_eq!(solve_quadratic_le(0.0, 0.0, -1.0), RealIntervals::all());
        assert!(solve_quadratic_le(0.0, 0.0, 1.0).is_empty());
        assert_eq!(solve_quadratic_le(0.0, 0.0, 0.0), RealIntervals::all());
    }

    #[test]
    fn tangent_parabola_single_point() {
        // (t-3)² <= 0 only at t = 3
        let sol = solve_quadratic_le(1.0, -6.0, 9.0);
        assert_eq!(sol.intervals().len(), 1);
        assert!((sol.intervals()[0].lo - 3.0).abs() < 1e-9);
        assert!((sol.intervals()[0].hi - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linear_eq_root() {
        assert_eq!(solve_linear_eq(2.0, -8.0), Some(4.0));
        assert_eq!(solve_linear_eq(0.0, 1.0), None);
        assert_eq!(solve_linear_eq(0.0, 0.0), None);
    }
}
