//! Uniform linear motion: the paper's motion vector.
//!
//! Section 2.1 represents a dynamic attribute `A` by `A.value`,
//! `A.updatetime` and `A.function`, with the value at `A.updatetime + t0`
//! given by `A.value + A.function(t0)`.  For positions with linear functions
//! that is exactly a [`MovingPoint`]: an anchor point, the tick it was
//! recorded at, and a velocity.

use crate::point::{Point, Velocity};
use most_temporal::Tick;
use std::fmt;

/// A point moving with constant velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingPoint {
    /// Position at tick [`MovingPoint::since`] (the `value` sub-attribute).
    pub anchor: Point,
    /// Tick at which `anchor` was recorded (the `updatetime` sub-attribute).
    pub since: Tick,
    /// Displacement per tick (the `function` sub-attribute, linear case).
    pub velocity: Velocity,
}

impl MovingPoint {
    /// A point at `anchor` from tick `since`, moving with `velocity`.
    pub fn new(anchor: Point, since: Tick, velocity: Velocity) -> Self {
        MovingPoint { anchor, since, velocity }
    }

    /// A stationary point (zero motion vector).
    pub fn stationary(p: Point) -> Self {
        MovingPoint::new(p, 0, Velocity::zero())
    }

    /// A point anchored at tick 0 — the appendix's convention that query
    /// evaluation time is zero.
    pub fn from_origin(anchor: Point, velocity: Velocity) -> Self {
        MovingPoint::new(anchor, 0, velocity)
    }

    /// Position at real-valued time `t` (ticks; may precede `since`, in
    /// which case the motion is extrapolated backwards).
    pub fn position_at(self, t: f64) -> Point {
        let dt = t - self.since as f64;
        self.anchor + self.velocity * dt
    }

    /// Position at an integer clock tick.
    pub fn position_at_tick(self, t: Tick) -> Point {
        self.position_at(t as f64)
    }

    /// Distance to another moving point at real time `t`.
    pub fn dist_at(self, other: MovingPoint, t: f64) -> f64 {
        self.position_at(t).dist(other.position_at(t))
    }

    /// Re-anchors the motion at tick `t` without changing the trajectory.
    ///
    /// This models the paper's observation that an explicit update "may
    /// change its value sub-attribute, or its function sub-attribute, or
    /// both": re-anchoring changes `value`/`updatetime` while the induced
    /// position function stays identical.
    pub fn rebased_at(self, t: Tick) -> MovingPoint {
        MovingPoint::new(self.position_at_tick(t), t, self.velocity)
    }

    /// A new motion starting from this trajectory's position at tick `t`
    /// with a different velocity — a motion-vector update.
    pub fn redirected_at(self, t: Tick, velocity: Velocity) -> MovingPoint {
        MovingPoint::new(self.position_at_tick(t), t, velocity)
    }

    /// Whether the point never moves.
    pub fn is_stationary(self) -> bool {
        self.velocity.is_zero()
    }

    /// The relative motion `self - other`: a moving point tracing the
    /// difference vector, anchored at tick 0.
    ///
    /// `DIST(self, other) ≤ r` is equivalent to the relative motion staying
    /// inside the disk of radius `r` around the origin, which is how
    /// [`crate::predicates::dist_within`] reduces the two-object predicate to
    /// a quadratic inequality.
    pub fn relative_to(self, other: MovingPoint) -> MovingPoint {
        let p0 = self.position_at(0.0);
        let q0 = other.position_at(0.0);
        MovingPoint::new(
            Point::new(p0.x - q0.x, p0.y - q0.y),
            0,
            self.velocity - other.velocity,
        )
    }
}

impl fmt::Display for MovingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @t={} +{}", self.anchor, self.since, self.velocity)
    }
}

most_testkit::json_struct!(MovingPoint { anchor, since, velocity });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_advances_linearly() {
        let m = MovingPoint::from_origin(Point::new(1.0, 2.0), Velocity::new(2.0, -1.0));
        assert_eq!(m.position_at(0.0), Point::new(1.0, 2.0));
        assert_eq!(m.position_at(3.0), Point::new(7.0, -1.0));
        assert_eq!(m.position_at_tick(10), Point::new(21.0, -8.0));
    }

    #[test]
    fn anchor_tick_offsets_time() {
        let m = MovingPoint::new(Point::origin(), 5, Velocity::new(1.0, 0.0));
        assert_eq!(m.position_at_tick(5), Point::origin());
        assert_eq!(m.position_at_tick(8), Point::new(3.0, 0.0));
        // Extrapolation backwards.
        assert_eq!(m.position_at_tick(3), Point::new(-2.0, 0.0));
    }

    #[test]
    fn rebasing_preserves_trajectory() {
        let m = MovingPoint::from_origin(Point::new(1.0, 1.0), Velocity::new(0.5, 0.25));
        let r = m.rebased_at(8);
        assert_eq!(r.since, 8);
        for t in [0u64, 4, 8, 16] {
            assert_eq!(m.position_at_tick(t), r.position_at_tick(t));
        }
    }

    #[test]
    fn redirection_changes_course_from_t() {
        let m = MovingPoint::from_origin(Point::origin(), Velocity::new(1.0, 0.0));
        let r = m.redirected_at(4, Velocity::new(0.0, 1.0));
        assert_eq!(r.position_at_tick(4), Point::new(4.0, 0.0));
        assert_eq!(r.position_at_tick(6), Point::new(4.0, 2.0));
    }

    #[test]
    fn relative_motion_tracks_distance() {
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let b = MovingPoint::from_origin(Point::new(10.0, 0.0), Velocity::new(-1.0, 0.0));
        let rel = a.relative_to(b);
        for t in [0.0, 1.5, 5.0, 7.25] {
            let d = rel.position_at(t).dist(Point::origin());
            assert!((d - a.dist_at(b, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_detection() {
        assert!(MovingPoint::stationary(Point::new(2.0, 2.0)).is_stationary());
        assert!(!MovingPoint::from_origin(Point::origin(), Velocity::new(0.1, 0.0))
            .is_stationary());
    }
}
