//! Axis-aligned rectangles and circles.
//!
//! [`Rect`] doubles as the geometric primitive of the Section 4 index, whose
//! "hierarchical recursive decomposition of space \[is\] usually into
//! rectangles" over the (time × value) plane.

use crate::point::Point;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]` (closed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub min_x: f64,
    /// Bottom edge.
    pub min_y: f64,
    /// Right edge.
    pub max_x: f64,
    /// Top edge.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle; coordinates are normalized so min ≤ max.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// Width along x.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along y.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the point lies inside (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.min_x <= p.x && p.x <= self.max_x && self.min_y <= p.y && p.y <= self.max_y
    }

    /// Whether two rectangles share at least a boundary point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Whether `other` lies entirely within `self`.
    pub fn covers(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && other.max_x <= self.max_x
            && self.min_y <= other.min_y
            && other.max_y <= self.max_y
    }

    /// The smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Area increase needed to also cover `other` (R-tree insertion
    /// heuristic).
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Splits into four equal quadrants: `[SW, SE, NW, NE]` (quadtree
    /// decomposition).
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min_x, self.min_y, c.x, c.y),
            Rect::new(c.x, self.min_y, self.max_x, c.y),
            Rect::new(self.min_x, c.y, c.x, self.max_y),
            Rect::new(c.x, c.y, self.max_x, self.max_y),
        ]
    }
}

/// A circle (the paper's "within a radius of 5 miles" display region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center point.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    /// Panics on a negative radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "circle radius must be non-negative");
        Circle { center, radius }
    }

    /// Whether the point lies inside (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// Bounding box of the circle.
    pub fn bounding_box(&self) -> Rect {
        Rect::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalizes() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!((r.min_x, r.min_y, r.max_x, r.max_y), (1.0, 2.0, 5.0, 6.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 16.0);
    }

    #[test]
    fn rect_containment_and_intersection() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert!(r.intersects(&Rect::new(9.0, 9.0, 20.0, 20.0)));
        assert!(r.intersects(&Rect::new(10.0, 0.0, 20.0, 10.0))); // touching
        assert!(!r.intersects(&Rect::new(11.0, 0.0, 20.0, 10.0)));
        assert!(r.covers(&Rect::new(1.0, 1.0, 9.0, 9.0)));
        assert!(!r.covers(&Rect::new(1.0, 1.0, 11.0, 9.0)));
    }

    #[test]
    fn rect_union_and_enlargement() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(3.0, 3.0, 4.0, 4.0);
        let u = a.union(&b);
        assert_eq!((u.min_x, u.min_y, u.max_x, u.max_y), (0.0, 0.0, 4.0, 4.0));
        assert_eq!(a.enlargement(&b), 16.0 - 4.0);
        assert_eq!(a.enlargement(&Rect::new(0.5, 0.5, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn quadrants_tile_the_rect() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let qs = r.quadrants();
        let total: f64 = qs.iter().map(|q| q.area()).sum();
        assert_eq!(total, r.area());
        assert!(qs[0].contains(Point::new(1.0, 1.0)));
        assert!(qs[3].contains(Point::new(3.0, 3.0)));
    }

    #[test]
    fn circle_containment() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point::new(1.0, 3.0)));
        assert!(c.contains(Point::new(2.0, 2.0)));
        assert!(!c.contains(Point::new(4.0, 1.0)));
        let bb = c.bounding_box();
        assert_eq!((bb.min_x, bb.max_x), (-1.0, 3.0));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        let _ = Circle::new(Point::origin(), -1.0);
    }
}
