//! 2-D points and velocity vectors.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A point in the plane.
///
/// The paper's spatial classes expose `X.POSITION` and `Y.POSITION` (and
/// `Z.POSITION`; this reproduction works in the plane, matching every example
/// in the paper — cars, motels, aircraft ranges projected to 2-D).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (the paper's `X.POSITION`).
    pub x: f64,
    /// Vertical coordinate (the paper's `Y.POSITION`).
    pub y: f64,
}

/// A velocity vector: displacement per clock tick.
///
/// This is the paper's *motion vector* — the `A.function` sub-attribute of a
/// position attribute, restricted (as in Section 4) to linear functions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Velocity {
    /// Displacement in `x` per tick (the paper's example
    /// `X.POSITION.function = 5 · t` has `dx = 5`).
    pub dx: f64,
    /// Displacement in `y` per tick.
    pub dy: f64,
}

impl Point {
    /// Creates the point `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other` (the paper's `DIST` method).
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root in comparisons).
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Displacement vector from `other` to `self`.
    pub fn delta(self, other: Point) -> Velocity {
        Velocity::new(self.x - other.x, self.y - other.y)
    }
}

impl Velocity {
    /// Creates the velocity `(dx, dy)`.
    pub const fn new(dx: f64, dy: f64) -> Self {
        Velocity { dx, dy }
    }

    /// The zero velocity (a stationary object).
    pub const fn zero() -> Self {
        Velocity { dx: 0.0, dy: 0.0 }
    }

    /// Whether both components are exactly zero.
    pub fn is_zero(self) -> bool {
        self.dx == 0.0 && self.dy == 0.0
    }

    /// Speed: Euclidean norm of the vector.
    pub fn speed(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared norm.
    pub fn norm_sq(self) -> f64 {
        self.dx * self.dx + self.dy * self.dy
    }

    /// Dot product.
    pub fn dot(self, other: Velocity) -> f64 {
        self.dx * other.dx + self.dy * other.dy
    }

    /// 2-D cross product (signed area of the parallelogram).
    pub fn cross(self, other: Velocity) -> f64 {
        self.dx * other.dy - self.dy * other.dx
    }

    /// A velocity with the same direction and the given speed; zero input
    /// stays zero.
    pub fn with_speed(self, speed: f64) -> Velocity {
        let n = self.speed();
        if n == 0.0 {
            Velocity::zero()
        } else {
            Velocity::new(self.dx / n * speed, self.dy / n * speed)
        }
    }
}

impl Add<Velocity> for Point {
    type Output = Point;
    fn add(self, v: Velocity) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }
}

impl Sub<Velocity> for Point {
    type Output = Point;
    fn sub(self, v: Velocity) -> Point {
        Point::new(self.x - v.dx, self.y - v.dy)
    }
}

impl Add for Velocity {
    type Output = Velocity;
    fn add(self, o: Velocity) -> Velocity {
        Velocity::new(self.dx + o.dx, self.dy + o.dy)
    }
}

impl Sub for Velocity {
    type Output = Velocity;
    fn sub(self, o: Velocity) -> Velocity {
        Velocity::new(self.dx - o.dx, self.dy - o.dy)
    }
}

impl Mul<f64> for Velocity {
    type Output = Velocity;
    fn mul(self, k: f64) -> Velocity {
        Velocity::new(self.dx * k, self.dy * k)
    }
}

impl Neg for Velocity {
    type Output = Velocity;
    fn neg(self) -> Velocity {
        Velocity::new(-self.dx, -self.dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Velocity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.dx, self.dy)
    }
}

most_testkit::json_struct!(Point { x, y });
most_testkit::json_struct!(Velocity { dx, dy });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(b.dist(a), 5.0);
    }

    #[test]
    fn point_velocity_arithmetic() {
        let p = Point::new(1.0, 2.0);
        let v = Velocity::new(0.5, -1.0);
        assert_eq!(p + v, Point::new(1.5, 1.0));
        assert_eq!(p - v, Point::new(0.5, 3.0));
        assert_eq!(p.delta(Point::origin()), Velocity::new(1.0, 2.0));
    }

    #[test]
    fn velocity_algebra() {
        let v = Velocity::new(3.0, 4.0);
        assert_eq!(v.speed(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.dot(Velocity::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Velocity::new(1.0, 0.0)), -4.0);
        assert_eq!(v * 2.0, Velocity::new(6.0, 8.0));
        assert_eq!(-v, Velocity::new(-3.0, -4.0));
        assert_eq!(v + v, Velocity::new(6.0, 8.0));
        assert_eq!(v - v, Velocity::zero());
    }

    #[test]
    fn with_speed_rescales() {
        let v = Velocity::new(3.0, 4.0).with_speed(10.0);
        assert!((v.speed() - 10.0).abs() < 1e-12);
        assert!((v.dx - 6.0).abs() < 1e-12);
        assert!(Velocity::zero().with_speed(5.0).is_zero());
    }

    #[test]
    fn zero_checks() {
        assert!(Velocity::zero().is_zero());
        assert!(!Velocity::new(0.0, 1e-12).is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
        assert_eq!(Velocity::new(0.5, 0.0).to_string(), "<0.5, 0>");
    }
}
