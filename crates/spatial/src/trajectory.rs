//! Piecewise-linear trajectories.
//!
//! Between explicit updates a moving object follows its motion vector; an
//! update at tick `u` replaces the vector from `u` onwards.  A [`Trajectory`]
//! records that entire piecewise history, which is what persistent-query
//! evaluation (Section 2.3) and the workload generators need: the paper's
//! example object whose `X.POSITION.function` is `5t`, then `7t` from minute
//! one, then `10t` from minute two, is a three-leg trajectory.

use crate::motion::MovingPoint;
use crate::point::{Point, Velocity};
use most_temporal::Tick;

/// A piecewise-linear motion history: a sequence of legs with strictly
/// increasing start ticks, each valid until the next leg begins (the last
/// leg extends forever).
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    legs: Vec<MovingPoint>,
}

impl Trajectory {
    /// Starts a trajectory with a single leg.
    pub fn new(initial: MovingPoint) -> Self {
        Trajectory { legs: vec![initial] }
    }

    /// Starts a trajectory at `p` with velocity `v` from tick 0.
    pub fn starting_at(p: Point, v: Velocity) -> Self {
        Trajectory::new(MovingPoint::from_origin(p, v))
    }

    /// The legs, ordered by start tick.
    pub fn legs(&self) -> &[MovingPoint] {
        &self.legs
    }

    /// Number of motion-vector updates recorded (legs − 1).
    pub fn update_count(&self) -> usize {
        self.legs.len() - 1
    }

    /// Applies a motion-vector update at tick `t`: from `t` onward the
    /// object moves with `v` from its position at `t` on the previous leg.
    /// Two updates at the same tick collapse into one (the last wins),
    /// matching the paper's instantaneous-update assumption.
    ///
    /// # Panics
    /// Panics when `t` precedes the start of the current last leg (updates
    /// must arrive in time order).
    pub fn update_velocity(&mut self, t: Tick, v: Velocity) {
        let last = *self.legs.last().expect("trajectory has at least one leg");
        assert!(
            t >= last.since,
            "updates must be in increasing tick order (t={t}, last={})",
            last.since
        );
        if t == last.since {
            *self.legs.last_mut().expect("non-empty") = MovingPoint::new(last.anchor, t, v);
        } else {
            self.legs.push(last.redirected_at(t, v));
        }
    }

    /// Teleports the object: at tick `t` both position and velocity are
    /// explicitly set (the paper's update of *both* sub-attributes).
    pub fn update_position_and_velocity(&mut self, t: Tick, p: Point, v: Velocity) {
        let last = *self.legs.last().expect("trajectory has at least one leg");
        assert!(t >= last.since, "updates must be in tick order");
        if t == last.since {
            *self.legs.last_mut().expect("non-empty") = MovingPoint::new(p, t, v);
        } else {
            self.legs.push(MovingPoint::new(p, t, v));
        }
    }

    /// The leg in force at tick `t`.
    ///
    /// Ticks before the first leg's start extrapolate the first leg
    /// backwards (consistent with [`MovingPoint::position_at`]).
    pub fn leg_at(&self, t: Tick) -> MovingPoint {
        match self.legs.binary_search_by_key(&t, |leg| leg.since) {
            Ok(i) => self.legs[i],
            Err(0) => self.legs[0],
            Err(i) => self.legs[i - 1],
        }
    }

    /// Position at tick `t`.
    pub fn position_at_tick(&self, t: Tick) -> Point {
        self.leg_at(t).position_at_tick(t)
    }

    /// Velocity in force at tick `t`.
    pub fn velocity_at_tick(&self, t: Tick) -> Velocity {
        self.leg_at(t).velocity
    }

    /// The legs overlapping the tick range `[from, to]`, each paired with
    /// the subrange it covers.  Used to evaluate spatial predicates piecewise
    /// over a history containing updates.
    pub fn legs_between(&self, from: Tick, to: Tick) -> Vec<(MovingPoint, Tick, Tick)> {
        let mut out = Vec::new();
        if from > to {
            return out;
        }
        for (i, leg) in self.legs.iter().enumerate() {
            let leg_start = if i == 0 { 0 } else { leg.since };
            let leg_end = self
                .legs
                .get(i + 1)
                .map(|next| next.since - 1)
                .unwrap_or(Tick::MAX);
            let lo = leg_start.max(from);
            let hi = leg_end.min(to);
            if lo <= hi {
                out.push((*leg, lo, hi));
            }
        }
        out
    }
}

impl most_testkit::ser::ToJson for Trajectory {
    fn to_json(&self) -> most_testkit::ser::Json {
        self.legs.to_json()
    }
}

impl most_testkit::ser::FromJson for Trajectory {
    fn from_json(j: &most_testkit::ser::Json) -> Result<Self, most_testkit::ser::JsonError> {
        let legs: Vec<MovingPoint> = most_testkit::ser::FromJson::from_json(j)?;
        if legs.is_empty() {
            return Err(most_testkit::ser::JsonError::Decode(
                "a trajectory needs at least one leg".to_owned(),
            ));
        }
        if legs.windows(2).any(|w| w[0].since >= w[1].since) {
            return Err(most_testkit::ser::JsonError::Decode(
                "trajectory legs must have strictly increasing start ticks".to_owned(),
            ));
        }
        Ok(Trajectory { legs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leg_trajectory() {
        let t = Trajectory::starting_at(Point::origin(), Velocity::new(2.0, 0.0));
        assert_eq!(t.position_at_tick(0), Point::origin());
        assert_eq!(t.position_at_tick(5), Point::new(10.0, 0.0));
        assert_eq!(t.update_count(), 0);
    }

    #[test]
    fn velocity_update_is_continuous() {
        // The Section 2.3 example: speed 5, then 7 from t=1, then 10 from t=2.
        let mut t = Trajectory::starting_at(Point::origin(), Velocity::new(5.0, 0.0));
        t.update_velocity(1, Velocity::new(7.0, 0.0));
        t.update_velocity(2, Velocity::new(10.0, 0.0));
        assert_eq!(t.position_at_tick(1), Point::new(5.0, 0.0));
        assert_eq!(t.position_at_tick(2), Point::new(12.0, 0.0));
        assert_eq!(t.position_at_tick(4), Point::new(32.0, 0.0));
        assert_eq!(t.velocity_at_tick(0), Velocity::new(5.0, 0.0));
        assert_eq!(t.velocity_at_tick(1), Velocity::new(7.0, 0.0));
        assert_eq!(t.velocity_at_tick(5), Velocity::new(10.0, 0.0));
        assert_eq!(t.update_count(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_order_update_panics() {
        let mut t = Trajectory::starting_at(Point::origin(), Velocity::zero());
        t.update_velocity(5, Velocity::new(1.0, 0.0));
        t.update_velocity(3, Velocity::new(2.0, 0.0));
    }

    #[test]
    fn teleport_update() {
        let mut t = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
        t.update_position_and_velocity(10, Point::new(100.0, 100.0), Velocity::zero());
        assert_eq!(t.position_at_tick(9), Point::new(9.0, 0.0));
        assert_eq!(t.position_at_tick(10), Point::new(100.0, 100.0));
        assert_eq!(t.position_at_tick(20), Point::new(100.0, 100.0));
    }

    #[test]
    fn legs_between_partitions_range() {
        let mut t = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
        t.update_velocity(10, Velocity::new(2.0, 0.0));
        t.update_velocity(20, Velocity::new(3.0, 0.0));
        let legs = t.legs_between(5, 25);
        assert_eq!(legs.len(), 3);
        assert_eq!((legs[0].1, legs[0].2), (5, 9));
        assert_eq!((legs[1].1, legs[1].2), (10, 19));
        assert_eq!((legs[2].1, legs[2].2), (20, 25));
        // Ranges within one leg:
        let legs = t.legs_between(12, 15);
        assert_eq!(legs.len(), 1);
        assert_eq!((legs[0].1, legs[0].2), (12, 15));
        assert!(t.legs_between(7, 3).is_empty());
    }

    #[test]
    fn leg_at_boundaries() {
        let mut t = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.0));
        t.update_velocity(10, Velocity::new(2.0, 0.0));
        assert_eq!(t.leg_at(9).velocity, Velocity::new(1.0, 0.0));
        assert_eq!(t.leg_at(10).velocity, Velocity::new(2.0, 0.0));
        assert_eq!(t.leg_at(11).velocity, Velocity::new(2.0, 0.0));
    }

    #[test]
    fn same_tick_initial_replacement() {
        let mut t = Trajectory::starting_at(Point::new(1.0, 1.0), Velocity::zero());
        t.update_velocity(0, Velocity::new(1.0, 1.0));
        assert_eq!(t.position_at_tick(2), Point::new(3.0, 3.0));
        assert_eq!(t.update_count(), 0);
    }
}
