//! Simple polygons: containment, edges, area and bounding boxes.
//!
//! The paper's `INSIDE(o, P)` / `OUTSIDE(o, P)` spatial methods take a point
//! object and a polygon object.  Containment treats the boundary as inside
//! (so `INSIDE` and `OUTSIDE` are complementary, as the paper's pairing
//! suggests).

use crate::point::{Point, Velocity};
use crate::region::Rect;
/// A simple (non-self-intersecting) polygon, vertices in order (either
/// orientation).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

/// One edge of a polygon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Edge start vertex.
    pub a: Point,
    /// Edge end vertex.
    pub b: Point,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Panics
    /// Panics when fewer than three vertices are supplied.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 3,
            "a polygon needs at least 3 vertices, got {}",
            vertices.len()
        );
        Polygon { vertices }
    }

    /// Axis-aligned rectangle polygon with corners `(x0, y0)` and `(x1, y1)`.
    pub fn rectangle(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        let (x0, x1) = if x0 <= x1 { (x0, x1) } else { (x1, x0) };
        let (y0, y1) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ])
    }

    /// Regular `n`-gon approximation of a circle (used for "within a radius
    /// of 5 miles"-style display regions that move with a vehicle, as in the
    /// paper's introduction).
    pub fn regular(center: Point, radius: f64, n: usize) -> Self {
        assert!(n >= 3, "need at least 3 sides");
        let vertices = (0..n)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(center.x + radius * a.cos(), center.y + radius * a.sin())
            })
            .collect();
        Polygon::new(vertices)
    }

    /// The vertices in order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Iterator over the edges, closing back to the first vertex.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Edge {
            a: self.vertices[i],
            b: self.vertices[(i + 1) % n],
        })
    }

    /// Point containment (boundary counts as inside), by ray casting with an
    /// explicit on-boundary check for robustness at vertices and horizontal
    /// edges.
    pub fn contains(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        // Standard even-odd ray cast to +x.
        let mut inside = false;
        for e in self.edges() {
            let (a, b) = (e.a, e.b);
            let crosses = (a.y > p.y) != (b.y > p.y);
            if crosses {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_at {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Whether `p` lies on the polygon boundary (within a small tolerance).
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|e| e.contains_point(p, 1e-9))
    }

    /// Signed area (positive for counter-clockwise orientation).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut s = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            s += a.x * b.y - b.x * a.y;
        }
        s / 2.0
    }

    /// Absolute area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Vertex centroid (arithmetic mean of the vertices).
    pub fn vertex_centroid(&self) -> Point {
        let n = self.vertices.len() as f64;
        let (sx, sy) = self
            .vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), v| (sx + v.x, sy + v.y));
        Point::new(sx / n, sy / n)
    }

    /// Whether the polygon is convex (no reflex vertices; collinear runs are
    /// tolerated).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign = 0.0f64;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cross = b.delta(a).cross(c.delta(b));
            if cross != 0.0 {
                if sign != 0.0 && sign.signum() != cross.signum() {
                    return false;
                }
                sign = cross;
            }
        }
        true
    }

    /// Whether the polygon is *simple* (no two non-adjacent edges
    /// intersect) — the precondition every containment routine assumes.
    /// O(n²); intended for validation at construction sites, not hot
    /// paths.
    pub fn is_simple(&self) -> bool {
        let edges: Vec<Edge> = self.edges().collect();
        let n = edges.len();
        for i in 0..n {
            for j in i + 1..n {
                // Adjacent edges share an endpoint by construction.
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    continue;
                }
                if segments_intersect(edges[i], edges[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for v in &self.vertices {
            min_x = min_x.min(v.x);
            min_y = min_y.min(v.y);
            max_x = max_x.max(v.x);
            max_y = max_y.max(v.y);
        }
        Rect::new(min_x, min_y, max_x, max_y)
    }

    /// Translates every vertex by `v` — the paper's "circle C moves as a
    /// rigid body having the motion vector of the car".
    pub fn translated(&self, v: Velocity) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&p| p + v).collect(),
        }
    }
}

/// Proper or touching intersection of two closed segments.
fn segments_intersect(a: Edge, b: Edge) -> bool {
    let d1 = direction(b.a, b.b, a.a);
    let d2 = direction(b.a, b.b, a.b);
    let d3 = direction(a.a, a.b, b.a);
    let d4 = direction(a.a, a.b, b.b);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && b.contains_point(a.a, 1e-12))
        || (d2 == 0.0 && b.contains_point(a.b, 1e-12))
        || (d3 == 0.0 && a.contains_point(b.a, 1e-12))
        || (d4 == 0.0 && a.contains_point(b.b, 1e-12))
}

fn direction(o: Point, a: Point, b: Point) -> f64 {
    a.delta(o).cross(b.delta(o))
}

impl Edge {
    /// Whether `p` lies on the closed segment within tolerance `eps`.
    pub fn contains_point(self, p: Point, eps: f64) -> bool {
        let ab = self.b.delta(self.a);
        let ap = p.delta(self.a);
        let cross = ab.cross(ap);
        // Distance from the line: |cross| / |ab|.
        let len = ab.speed();
        if len == 0.0 {
            return self.a.dist(p) <= eps;
        }
        if cross.abs() / len > eps {
            return false;
        }
        let dot = ab.dot(ap);
        -eps * len <= dot && dot <= ab.norm_sq() + eps * len
    }

    /// Edge direction vector.
    pub fn direction(self) -> Velocity {
        self.b.delta(self.a)
    }
}

impl most_testkit::ser::ToJson for Polygon {
    fn to_json(&self) -> most_testkit::ser::Json {
        self.vertices.to_json()
    }
}

impl most_testkit::ser::FromJson for Polygon {
    fn from_json(j: &most_testkit::ser::Json) -> Result<Self, most_testkit::ser::JsonError> {
        let vertices: Vec<Point> = most_testkit::ser::FromJson::from_json(j)?;
        if vertices.len() < 3 {
            return Err(most_testkit::ser::JsonError::Decode(format!(
                "a polygon needs at least 3 vertices, got {}",
                vertices.len()
            )));
        }
        Ok(Polygon { vertices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    #[should_panic]
    fn degenerate_polygon_panics() {
        let _ = Polygon::new(vec![Point::origin(), Point::new(1.0, 1.0)]);
    }

    #[test]
    fn square_containment() {
        let p = unit_square();
        assert!(p.contains(Point::new(0.5, 0.5)));
        assert!(!p.contains(Point::new(1.5, 0.5)));
        assert!(!p.contains(Point::new(-0.5, 0.5)));
        assert!(!p.contains(Point::new(0.5, 2.0)));
    }

    #[test]
    fn boundary_counts_as_inside() {
        let p = unit_square();
        assert!(p.contains(Point::new(0.0, 0.5))); // edge
        assert!(p.contains(Point::new(0.0, 0.0))); // vertex
        assert!(p.contains(Point::new(0.5, 1.0))); // top edge
    }

    #[test]
    fn concave_polygon_containment() {
        // L-shape: big square minus top-right quadrant.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5)));
        assert!(!l.is_convex());
    }

    #[test]
    fn area_and_centroid() {
        let p = unit_square();
        assert!((p.area() - 1.0).abs() < 1e-12);
        let c = p.vertex_centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn convexity() {
        assert!(unit_square().is_convex());
        assert!(Polygon::regular(Point::origin(), 2.0, 8).is_convex());
    }

    #[test]
    fn regular_polygon_radius() {
        let p = Polygon::regular(Point::new(1.0, 1.0), 3.0, 16);
        for v in p.vertices() {
            assert!((v.dist(Point::new(1.0, 1.0)) - 3.0).abs() < 1e-9);
        }
        assert!(p.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn bounding_box_encloses() {
        let p = Polygon::new(vec![
            Point::new(-1.0, 2.0),
            Point::new(3.0, -4.0),
            Point::new(0.0, 5.0),
        ]);
        let bb = p.bounding_box();
        assert_eq!((bb.min_x, bb.min_y, bb.max_x, bb.max_y), (-1.0, -4.0, 3.0, 5.0));
    }

    #[test]
    fn translation_moves_rigidly() {
        let p = unit_square().translated(Velocity::new(2.0, 3.0));
        assert!(p.contains(Point::new(2.5, 3.5)));
        assert!(!p.contains(Point::new(0.5, 0.5)));
        assert!((p.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_contains_point() {
        let e = Edge { a: Point::new(0.0, 0.0), b: Point::new(4.0, 0.0) };
        assert!(e.contains_point(Point::new(2.0, 0.0), 1e-9));
        assert!(e.contains_point(Point::new(0.0, 0.0), 1e-9));
        assert!(e.contains_point(Point::new(4.0, 0.0), 1e-9));
        assert!(!e.contains_point(Point::new(5.0, 0.0), 1e-9));
        assert!(!e.contains_point(Point::new(2.0, 0.1), 1e-9));
    }

    #[test]
    fn simplicity_detection() {
        assert!(unit_square().is_simple());
        assert!(Polygon::regular(Point::origin(), 3.0, 7).is_simple());
        // The classic bow-tie: edges (0,0)-(1,1) and (1,0)-(0,1) cross.
        let bowtie = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        assert!(!bowtie.is_simple());
        // Concave but simple.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(l.is_simple());
    }

    #[test]
    fn rectangle_normalizes_corner_order() {
        let p = Polygon::rectangle(1.0, 1.0, 0.0, 0.0);
        assert!(p.contains(Point::new(0.5, 0.5)));
    }
}
