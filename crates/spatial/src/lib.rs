//! Spatial substrate for the MOST / FTL reproduction.
//!
//! The paper's spatial object classes carry `X.POSITION` / `Y.POSITION`
//! attributes and a set of *spatial methods* — `INSIDE(o, P)`,
//! `OUTSIDE(o, P)`, `DIST(o1, o2)` and `WITHIN-A-SPHERE(r, o1, ..., ok)` —
//! whose truth at each state of the database history drives FTL's atomic
//! predicates.  Because positions are *dynamic attributes* (linear functions
//! of time between explicit updates), each spatial method induces, for a
//! given instantiation of objects, a set of clock-tick intervals during which
//! it holds.  The appendix assumes "a routine which, for each possible
//! relevant instantiation ... gives us the intervals during which the
//! relation is satisfied"; this crate *is* that routine.
//!
//! Modules:
//!
//! * [`point`] — 2-D points and velocity vectors;
//! * [`motion`] — uniform linear motion ([`MovingPoint`]) — the paper's
//!   motion vector;
//! * [`trajectory`] — piecewise-linear motion, for histories spanning
//!   explicit motion-vector updates;
//! * [`polygon`] — simple polygons with point containment and edge geometry;
//! * [`region`] — axis-aligned rectangles and circles;
//! * [`roots`] — linear/quadratic inequality solving over real time;
//! * [`predicates`] — the interval "routines": `DIST ≤ r`, `INSIDE`,
//!   `OUTSIDE`, `WITHIN-A-SPHERE`, exact at integer clock ticks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod motion;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod region;
pub mod roots;
pub mod trajectory;

pub use motion::MovingPoint;
pub use point::{Point, Velocity};
pub use polygon::Polygon;
pub use region::{Circle, Rect};
pub use trajectory::Trajectory;
