//! The atomic-predicate "routines" of the appendix: for each instantiation
//! of moving objects, the clock-tick intervals during which a spatial
//! relation holds.
//!
//! All results are **exact at integer clock ticks**: real-valued root
//! solving produces candidate intervals which are then verified (and, when
//! floating-point rounding demands it, adjusted by a bounded number of
//! ticks) against direct evaluation of the predicate at the boundary ticks.
//! FTL's semantics only ever inspect integer ticks, so tick-exactness is the
//! right notion of correctness here; the property tests compare every
//! routine against brute-force per-tick evaluation.

use crate::motion::MovingPoint;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::region::{Circle, Rect};
use crate::roots::{solve_linear_eq, solve_quadratic_le, RealIntervals};
use crate::trajectory::Trajectory;
use most_temporal::{Horizon, Interval, IntervalSet, Tick};

/// Maximum number of ticks a candidate boundary is nudged while reconciling
/// real-root rounding with exact per-tick evaluation.  Roots are computed in
/// double precision from double-precision inputs, so the error is far below
/// one tick; 8 leaves a wide margin.
const MAX_BOUNDARY_NUDGE: u64 = 8;

/// Converts real solution intervals into an exact tick [`IntervalSet`],
/// verifying boundaries with `pred` (exact evaluation of the predicate at an
/// integer tick).
///
/// `pred` must agree with the real solution away from its boundaries; the
/// conversion rounds each real interval to ticks and then nudges / shrinks
/// the boundaries (a bounded number of steps) until they match `pred`, which
/// absorbs floating-point error in root finding.  Exposed publicly because
/// the FTL numeric-term analysis assembles its own real solution sets.
pub fn exact_ticks<F: Fn(Tick) -> bool>(
    sol: &RealIntervals,
    h: Horizon,
    pred: F,
) -> IntervalSet {
    let mut out: Vec<Interval> = Vec::with_capacity(sol.intervals().len());
    for riv in sol.intervals() {
        let lo = riv.lo.max(0.0);
        let hi = riv.hi.min(h.end() as f64);
        if lo > hi + 1.0 {
            continue;
        }
        let mut begin = lo.ceil().max(0.0) as Tick;
        let mut end = if hi < 0.0 { 0 } else { hi.floor() as Tick };
        // Expand outwards if rounding clipped a satisfied tick.
        for _ in 0..MAX_BOUNDARY_NUDGE {
            if begin > 0 && pred(begin - 1) {
                begin -= 1;
            } else {
                break;
            }
        }
        for _ in 0..MAX_BOUNDARY_NUDGE {
            if end < h.end() && pred(end + 1) {
                end += 1;
            } else {
                break;
            }
        }
        // Shrink inwards if rounding included an unsatisfied tick.
        for _ in 0..MAX_BOUNDARY_NUDGE {
            if begin <= end && !pred(begin) {
                begin += 1;
            } else {
                break;
            }
        }
        for _ in 0..MAX_BOUNDARY_NUDGE {
            if begin <= end && !pred(end) {
                end -= 1;
            } else {
                break;
            }
        }
        if begin <= end && pred(begin) && pred(end) {
            out.push(Interval::new(begin, end));
        }
    }
    IntervalSet::from_intervals(out)
}

/// `DIST(a, b) ≤ r`: ticks at which two linearly moving points are within
/// distance `r`.
pub fn dist_within(a: MovingPoint, b: MovingPoint, r: f64, h: Horizon) -> IntervalSet {
    let rel = a.relative_to(b);
    let p0 = rel.position_at(0.0);
    let v = rel.velocity;
    // |p0 + v t|² ≤ r²
    let qa = v.norm_sq();
    let qb = 2.0 * (p0.x * v.dx + p0.y * v.dy);
    let qc = p0.x * p0.x + p0.y * p0.y - r * r;
    let sol = solve_quadratic_le(qa, qb, qc);
    exact_ticks(&sol, h, |t| a.dist_at(b, t as f64) <= r)
}

/// `DIST(a, b) ≥ r`: ticks at which two linearly moving points are at least
/// `r` apart.
pub fn dist_at_least(a: MovingPoint, b: MovingPoint, r: f64, h: Horizon) -> IntervalSet {
    let rel = a.relative_to(b);
    let p0 = rel.position_at(0.0);
    let v = rel.velocity;
    // |p0 + v t|² ≥ r²  ⇔  -(...) ≤ 0
    let qa = -v.norm_sq();
    let qb = -2.0 * (p0.x * v.dx + p0.y * v.dy);
    let qc = -(p0.x * p0.x + p0.y * p0.y - r * r);
    let sol = solve_quadratic_le(qa, qb, qc);
    exact_ticks(&sol, h, |t| a.dist_at(b, t as f64) >= r)
}

/// `INSIDE(o, P)` for a linearly moving point and a static simple polygon
/// (boundary counts as inside).
pub fn inside_polygon(m: MovingPoint, poly: &Polygon, h: Horizon) -> IntervalSet {
    if m.is_stationary() {
        return if poly.contains(m.anchor) {
            IntervalSet::full(h)
        } else {
            IntervalSet::empty()
        };
    }
    // Containment status can only change when the point crosses the
    // boundary; collect every candidate crossing time.
    let p0 = m.position_at(0.0);
    let v = m.velocity;
    let h_real = h.end() as f64;
    let mut events: Vec<f64> = vec![0.0, h_real];
    for e in poly.edges() {
        let ab = e.direction();
        let cross_v = ab.cross(v);
        let cross_p = ab.cross(p0.delta(e.a));
        if cross_v != 0.0 {
            // Single time at which the point lies on the edge's line.
            if let Some(t) = solve_linear_eq(cross_v, cross_p) {
                if (-1.0..=h_real + 1.0).contains(&t) {
                    events.push(t.clamp(0.0, h_real));
                }
            }
        } else if cross_p == 0.0 {
            // Moving along the edge's line: status changes where the
            // segment-parameter s(t) = dot(ab, p(t)-a)/|ab|² hits 0 or 1.
            let denom = ab.norm_sq();
            if denom > 0.0 {
                let s0 = ab.dot(p0.delta(e.a));
                let s1 = ab.dot(v);
                for target in [0.0, denom] {
                    if let Some(t) = solve_linear_eq(s1, s0 - target) {
                        if (-1.0..=h_real + 1.0).contains(&t) {
                            events.push(t.clamp(0.0, h_real));
                        }
                    }
                }
            }
        }
    }
    events.sort_by(|a, b| a.partial_cmp(b).expect("crossing times are finite"));
    events.dedup();

    // Between consecutive events the status is constant; sample midpoints.
    let mut spans: Vec<(f64, f64)> = Vec::new();
    for w in events.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mid = (lo + hi) / 2.0;
        if poly.contains(m.position_at(mid)) {
            match spans.last_mut() {
                Some(last) if last.1 >= lo => last.1 = hi,
                _ => spans.push((lo, hi)),
            }
        }
    }
    // Event points themselves may be inside (boundary) even when the
    // adjacent open intervals are not: widen spans by a half tick so the
    // per-tick verification in `exact_ticks` decides.
    let widened = spans
        .into_iter()
        .map(|(lo, hi)| crate::roots::RealInterval { lo: lo - 0.5, hi: hi + 0.5 });
    let real_intervals = RealIntervals::of(widened.collect());
    let pred = |t: Tick| poly.contains(m.position_at_tick(t));
    let mut result = exact_ticks(&real_intervals, h, pred);
    // Isolated boundary touches exactly at integer event ticks that fall in
    // gaps between spans: verify event ticks directly.
    let mut extra = Vec::new();
    for &e in &events {
        let t = e.round();
        if (0.0..=h_real).contains(&t) {
            let tick = t as Tick;
            if !result.contains(tick) && pred(tick) {
                extra.push(Interval::point(tick));
            }
        }
    }
    if !extra.is_empty() {
        result = result.union(&IntervalSet::from_intervals(extra));
    }
    result
}

/// `OUTSIDE(o, P)`: complement of [`inside_polygon`] within the horizon
/// (the paper pairs the two methods as complementary relations).
pub fn outside_polygon(m: MovingPoint, poly: &Polygon, h: Horizon) -> IntervalSet {
    inside_polygon(m, poly, h).complement(h)
}

/// Ticks at which a moving point is inside a static circle
/// (boundary inclusive).
pub fn inside_circle(m: MovingPoint, c: Circle, h: Horizon) -> IntervalSet {
    dist_within(m, MovingPoint::stationary(c.center), c.radius, h)
}

/// Ticks at which a moving point is inside a static axis-aligned rectangle
/// (boundary inclusive).
pub fn inside_rect(m: MovingPoint, r: Rect, h: Horizon) -> IntervalSet {
    let p0 = m.position_at(0.0);
    let v = m.velocity;
    // Intersection of four half-plane constraints, each linear in t.
    let mut acc = IntervalSet::full(h);
    let constraints = [
        (v.dx, p0.x - r.max_x),  // x(t) ≤ max_x
        (-v.dx, r.min_x - p0.x), // x(t) ≥ min_x
        (v.dy, p0.y - r.max_y),  // y(t) ≤ max_y
        (-v.dy, r.min_y - p0.y), // y(t) ≥ min_y
    ];
    for (b, c) in constraints {
        let sol = crate::roots::solve_linear_le(b, c);
        let ticks = exact_ticks(&sol, h, |t| {
            b * t as f64 + c <= 1e-9 // tolerance only guards rounding at ticks
        });
        acc = acc.intersect(&ticks);
        if acc.is_empty() {
            break;
        }
    }
    // Verify against the exact containment test at boundaries.
    refine_against(acc, h, |t| r.contains(m.position_at_tick(t)))
}

/// Re-verifies a candidate tick set against an exact per-tick predicate,
/// nudging interval boundaries by up to [`MAX_BOUNDARY_NUDGE`].
fn refine_against<F: Fn(Tick) -> bool>(set: IntervalSet, h: Horizon, pred: F) -> IntervalSet {
    let sol = RealIntervals::of(
        set.intervals()
            .iter()
            .map(|iv| crate::roots::RealInterval {
                lo: iv.begin() as f64,
                hi: iv.end() as f64,
            })
            .collect(),
    );
    exact_ticks(&sol, h, pred)
}

/// `WITHIN-A-SPHERE(r, o1, ..., ok)`: ticks at which all `k` moving points
/// fit in a disk of radius `r`.
///
/// Exact reduction for `k ≤ 2`; for `k ≥ 3` the minimum enclosing circle
/// radius is piecewise-algebraic, so the routine brackets it between two
/// pairwise-distance conditions (MEC ≤ r implies pairwise ≤ 2r; by Jung's
/// planar theorem pairwise ≤ √3·r implies MEC ≤ r) and settles the
/// remaining uncertain ticks by exact per-tick minimum-enclosing-circle
/// computation.
pub fn within_sphere(r: f64, movers: &[MovingPoint], h: Horizon) -> IntervalSet {
    match movers.len() {
        0 | 1 => IntervalSet::full(h),
        2 => dist_within(movers[0], movers[1], 2.0 * r, h),
        _ => {
            let mut necessary = IntervalSet::full(h);
            let mut sufficient = IntervalSet::full(h);
            let sqrt3 = 3.0f64.sqrt();
            for i in 0..movers.len() {
                for j in i + 1..movers.len() {
                    necessary =
                        necessary.intersect(&dist_within(movers[i], movers[j], 2.0 * r, h));
                    if necessary.is_empty() {
                        return necessary;
                    }
                    sufficient = sufficient
                        .intersect(&dist_within(movers[i], movers[j], sqrt3 * r, h));
                }
            }
            let uncertain = necessary.difference(&sufficient, h);
            let mut verified = Vec::new();
            for t in uncertain.ticks() {
                let pts: Vec<Point> =
                    movers.iter().map(|m| m.position_at_tick(t)).collect();
                if min_enclosing_circle(&pts).radius <= r + 1e-9 {
                    verified.push(Interval::point(t));
                }
            }
            sufficient.union(&IntervalSet::from_intervals(verified))
        }
    }
}

/// Exact minimum enclosing circle of a non-empty point set.
///
/// Brute force over the support candidates (all pairs as diameters, all
/// triples as circumcircles): the MEC is determined by at most three points,
/// so this is exact; `O(k⁴)` is fine for the small `k` of
/// `WITHIN-A-SPHERE(r, o1, ..., ok)` instantiations.
pub fn min_enclosing_circle(points: &[Point]) -> Circle {
    assert!(!points.is_empty(), "minimum enclosing circle of no points");
    if points.len() == 1 {
        return Circle::new(points[0], 0.0);
    }
    let eps = 1e-9;
    let encloses = |c: &Circle| {
        points
            .iter()
            .all(|&p| c.center.dist_sq(p) <= (c.radius + eps) * (c.radius + eps))
    };
    let mut best: Option<Circle> = None;
    let mut consider = |c: Circle| {
        if encloses(&c) && best.as_ref().is_none_or(|b| c.radius < b.radius) {
            best = Some(c);
        }
    };
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            consider(circle_from_diameter(points[i], points[j]));
            for k in j + 1..points.len() {
                if let Some(c) = circumcircle(points[i], points[j], points[k]) {
                    consider(c);
                }
            }
        }
    }
    best.expect("some diameter circle always encloses two points; full check succeeds for MEC support")
}

/// The circle having segment `ab` as a diameter.
fn circle_from_diameter(a: Point, b: Point) -> Circle {
    let center = Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0);
    Circle::new(center, center.dist(a))
}

/// Circumcircle of a (non-degenerate) triangle; `None` for collinear points.
fn circumcircle(a: Point, b: Point, c: Point) -> Option<Circle> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-12 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let center = Point::new(ux, uy);
    Some(Circle::new(center, center.dist(a)))
}

/// Evaluates a per-leg predicate routine over a piecewise-linear
/// [`Trajectory`], unioning the per-leg results restricted to each leg's
/// validity range.  This is how persistent queries (whose histories contain
/// explicit updates) reuse the single-leg routines.
pub fn piecewise<F>(traj: &Trajectory, h: Horizon, leg_fn: F) -> IntervalSet
where
    F: Fn(MovingPoint, Horizon) -> IntervalSet,
{
    let mut acc = IntervalSet::empty();
    for (leg, lo, hi) in traj.legs_between(0, h.end()) {
        let span = IntervalSet::singleton(Interval::new(lo, hi));
        acc = acc.union(&leg_fn(leg, h).intersect(&span));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Velocity;

    const H: Horizon = Horizon::new(200);

    fn brute<F: Fn(Tick) -> bool>(pred: F) -> IntervalSet {
        IntervalSet::from_predicate(H, pred)
    }

    #[test]
    fn dist_within_head_on() {
        // Two cars approaching head-on at combined speed 2, starting 100
        // apart: within distance 10 while |100 - 2t| <= 10, i.e. t in [45,55].
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let b = MovingPoint::from_origin(Point::new(100.0, 0.0), Velocity::new(-1.0, 0.0));
        let got = dist_within(a, b, 10.0, H);
        assert_eq!(got, brute(|t| a.dist_at(b, t as f64) <= 10.0));
        assert_eq!(got.first_tick(), Some(45));
        assert_eq!(got.last_tick(), Some(55));
    }

    #[test]
    fn dist_within_never_close() {
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let b = MovingPoint::from_origin(Point::new(0.0, 50.0), Velocity::new(1.0, 0.0));
        assert!(dist_within(a, b, 10.0, H).is_empty());
    }

    #[test]
    fn dist_within_parallel_always() {
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(2.0, 1.0));
        let b = MovingPoint::from_origin(Point::new(3.0, 0.0), Velocity::new(2.0, 1.0));
        assert_eq!(dist_within(a, b, 5.0, H), IntervalSet::full(H));
    }

    #[test]
    fn dist_at_least_complements_within_except_boundary() {
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.5));
        let b = MovingPoint::from_origin(Point::new(80.0, -10.0), Velocity::new(-0.5, 0.75));
        let within = dist_within(a, b, 20.0, H);
        let at_least = dist_at_least(a, b, 20.0, H);
        assert_eq!(within, brute(|t| a.dist_at(b, t as f64) <= 20.0));
        assert_eq!(at_least, brute(|t| a.dist_at(b, t as f64) >= 20.0));
        // Together they cover the horizon (boundary ticks may be in both).
        assert_eq!(within.union(&at_least), IntervalSet::full(H));
    }

    #[test]
    fn inside_polygon_crossing_square() {
        let poly = Polygon::rectangle(50.0, -10.0, 80.0, 10.0);
        let m = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let got = inside_polygon(m, &poly, H);
        assert_eq!(got, brute(|t| poly.contains(m.position_at_tick(t))));
        assert_eq!(got.first_tick(), Some(50));
        assert_eq!(got.last_tick(), Some(80));
    }

    #[test]
    fn inside_polygon_stationary_cases() {
        let poly = Polygon::rectangle(0.0, 0.0, 10.0, 10.0);
        let inside = MovingPoint::stationary(Point::new(5.0, 5.0));
        let outside = MovingPoint::stationary(Point::new(50.0, 5.0));
        assert_eq!(inside_polygon(inside, &poly, H), IntervalSet::full(H));
        assert!(inside_polygon(outside, &poly, H).is_empty());
    }

    #[test]
    fn inside_polygon_concave_reentry() {
        // U-shaped polygon; a horizontal path through the middle enters the
        // left arm, leaves into the notch, and enters the right arm.
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(30.0, 20.0),
            Point::new(20.0, 20.0),
            Point::new(20.0, 5.0),
            Point::new(10.0, 5.0),
            Point::new(10.0, 20.0),
            Point::new(0.0, 20.0),
        ]);
        let m = MovingPoint::from_origin(Point::new(-5.0, 10.0), Velocity::new(0.25, 0.0));
        let got = inside_polygon(m, &u, H);
        let want = brute(|t| u.contains(m.position_at_tick(t)));
        assert_eq!(got, want);
        assert!(got.span_count() >= 2, "re-entry must produce 2 spans: {got}");
    }

    #[test]
    fn inside_polygon_tangent_edge() {
        // Path grazing along the top edge y = 10 of the square: boundary
        // counts as inside for the whole traversal of the edge.
        let poly = Polygon::rectangle(20.0, 0.0, 60.0, 10.0);
        let m = MovingPoint::from_origin(Point::new(0.0, 10.0), Velocity::new(1.0, 0.0));
        let got = inside_polygon(m, &poly, H);
        assert_eq!(got, brute(|t| poly.contains(m.position_at_tick(t))));
        assert_eq!(got.first_tick(), Some(20));
        assert_eq!(got.last_tick(), Some(60));
    }

    #[test]
    fn outside_polygon_complements_inside() {
        let poly = Polygon::rectangle(50.0, -10.0, 80.0, 10.0);
        let m = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let inside = inside_polygon(m, &poly, H);
        let outside = outside_polygon(m, &poly, H);
        assert!(inside.intersect(&outside).is_empty());
        assert_eq!(inside.union(&outside), IntervalSet::full(H));
    }

    #[test]
    fn inside_circle_matches_brute() {
        let c = Circle::new(Point::new(100.0, 0.0), 15.0);
        let m = MovingPoint::from_origin(Point::new(0.0, 5.0), Velocity::new(1.0, 0.0));
        assert_eq!(
            inside_circle(m, c, H),
            brute(|t| c.contains(m.position_at_tick(t)))
        );
    }

    #[test]
    fn inside_rect_matches_brute() {
        let r = Rect::new(30.0, -5.0, 90.0, 5.0);
        let m = MovingPoint::from_origin(Point::new(0.0, -20.0), Velocity::new(0.8, 0.2));
        assert_eq!(
            inside_rect(m, r, H),
            brute(|t| r.contains(m.position_at_tick(t)))
        );
    }

    #[test]
    fn within_sphere_pair_reduces_to_distance() {
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let b = MovingPoint::from_origin(Point::new(60.0, 0.0), Velocity::new(-1.0, 0.0));
        assert_eq!(
            within_sphere(5.0, &[a, b], H),
            dist_within(a, b, 10.0, H)
        );
        assert_eq!(within_sphere(5.0, &[a], H), IntervalSet::full(H));
        assert_eq!(within_sphere(5.0, &[], H), IntervalSet::full(H));
    }

    #[test]
    fn within_sphere_triple_matches_brute() {
        let a = MovingPoint::from_origin(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let b = MovingPoint::from_origin(Point::new(100.0, 4.0), Velocity::new(-1.0, 0.0));
        let c = MovingPoint::from_origin(Point::new(50.0, -40.0), Velocity::new(0.0, 1.0));
        let r = 6.0;
        let got = within_sphere(r, &[a, b, c], H);
        let want = brute(|t| {
            let pts = [
                a.position_at_tick(t),
                b.position_at_tick(t),
                c.position_at_tick(t),
            ];
            min_enclosing_circle(&pts).radius <= r + 1e-9
        });
        assert_eq!(got, want);
        assert!(!got.is_empty(), "the three paths do meet");
    }

    #[test]
    fn mec_known_configurations() {
        // Diameter pair.
        let c = min_enclosing_circle(&[Point::new(0.0, 0.0), Point::new(4.0, 0.0)]);
        assert!((c.radius - 2.0).abs() < 1e-9);
        assert!((c.center.x - 2.0).abs() < 1e-9);
        // Equilateral-ish triangle: circumcircle.
        let c = min_enclosing_circle(&[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ]);
        for p in [Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(2.0, 3.0)] {
            assert!(c.center.dist(p) <= c.radius + 1e-9);
        }
        // Obtuse triangle: MEC is the diameter circle of the long side.
        let c = min_enclosing_circle(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.5),
        ]);
        assert!((c.radius - 5.0).abs() < 1e-6);
        // Single point.
        assert_eq!(min_enclosing_circle(&[Point::new(1.0, 1.0)]).radius, 0.0);
    }

    #[test]
    fn piecewise_trajectory_polygon() {
        // The object drives east, turns around inside the polygon, and exits
        // west — the per-leg union must match brute-force on the trajectory.
        let poly = Polygon::rectangle(40.0, -10.0, 120.0, 10.0);
        let mut traj = Trajectory::starting_at(Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        traj.update_velocity(60, Velocity::new(-1.0, 0.0));
        let got = piecewise(&traj, H, |leg, h| inside_polygon(leg, &poly, h));
        let want = brute(|t| poly.contains(traj.position_at_tick(t)));
        assert_eq!(got, want);
        // Entered at 40, exited when heading back past 40 at t = 60+20.
        assert_eq!(got.first_tick(), Some(40));
        assert_eq!(got.last_tick(), Some(80));
    }
}
