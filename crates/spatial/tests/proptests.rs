//! Property tests: every predicate routine must agree with brute-force
//! per-tick evaluation, for random motions, polygons and radii.

use most_spatial::predicates::{
    dist_at_least, dist_within, inside_circle, inside_polygon, inside_rect,
    min_enclosing_circle, outside_polygon, piecewise, within_sphere,
};
use most_spatial::{Circle, MovingPoint, Point, Polygon, Rect, Trajectory, Velocity};
use most_temporal::{Horizon, IntervalSet, Tick};
use proptest::prelude::*;

const H_END: Tick = 120;

fn horizon() -> Horizon {
    Horizon::new(H_END)
}

fn brute<F: Fn(Tick) -> bool>(pred: F) -> IntervalSet {
    IntervalSet::from_predicate(horizon(), pred)
}

/// Coordinates/velocities on a coarse lattice: keeps root-finding exercised
/// (crossings frequently fall between and exactly on ticks) while staying
/// far away from the adversarial-float regime the library does not target.
fn arb_coord() -> impl Strategy<Value = f64> {
    (-200i32..=200).prop_map(|v| v as f64 * 0.5)
}

fn arb_vel() -> impl Strategy<Value = f64> {
    (-12i32..=12).prop_map(|v| v as f64 * 0.25)
}

fn arb_mover() -> impl Strategy<Value = MovingPoint> {
    (arb_coord(), arb_coord(), arb_vel(), arb_vel()).prop_map(|(x, y, dx, dy)| {
        MovingPoint::from_origin(Point::new(x, y), Velocity::new(dx, dy))
    })
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_coord(), arb_coord(), 1u32..80, 1u32..80).prop_map(|(x, y, w, h)| {
        Rect::new(x, y, x + w as f64, y + h as f64)
    })
}

fn arb_convex_polygon() -> impl Strategy<Value = Polygon> {
    (arb_coord(), arb_coord(), 2u32..40, 3usize..9).prop_map(|(x, y, r, n)| {
        Polygon::regular(Point::new(x, y), r as f64, n)
    })
}

/// A star-shaped (generally concave) simple polygon: random radii at evenly
/// spread angles around a center.
fn arb_star_polygon() -> impl Strategy<Value = Polygon> {
    (
        arb_coord(),
        arb_coord(),
        prop::collection::vec(4u32..50, 4..10),
    )
        .prop_map(|(x, y, radii)| {
            let n = radii.len();
            let vertices = radii
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    let a = std::f64::consts::TAU * i as f64 / n as f64;
                    Point::new(x + r as f64 * a.cos(), y + r as f64 * a.sin())
                })
                .collect();
            Polygon::new(vertices)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dist_within_matches_brute(a in arb_mover(), b in arb_mover(), r in 1u32..60) {
        let r = r as f64;
        let got = dist_within(a, b, r, horizon());
        let want = brute(|t| a.dist_at(b, t as f64) <= r);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dist_at_least_matches_brute(a in arb_mover(), b in arb_mover(), r in 1u32..60) {
        let r = r as f64;
        let got = dist_at_least(a, b, r, horizon());
        let want = brute(|t| a.dist_at(b, t as f64) >= r);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn inside_rect_matches_brute(m in arb_mover(), rect in arb_rect()) {
        let got = inside_rect(m, rect, horizon());
        let want = brute(|t| rect.contains(m.position_at_tick(t)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn inside_circle_matches_brute(m in arb_mover(), c in arb_coord(), cy in arb_coord(), r in 1u32..50) {
        let circle = Circle::new(Point::new(c, cy), r as f64);
        let got = inside_circle(m, circle, horizon());
        let want = brute(|t| circle.contains(m.position_at_tick(t)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn inside_star_polygon_matches_brute(m in arb_mover(), poly in arb_star_polygon()) {
        let got = inside_polygon(m, &poly, horizon());
        let want = brute(|t| poly.contains(m.position_at_tick(t)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn inside_polygon_matches_brute(m in arb_mover(), poly in arb_convex_polygon()) {
        let got = inside_polygon(m, &poly, horizon());
        let want = brute(|t| poly.contains(m.position_at_tick(t)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn outside_is_complement_of_inside(m in arb_mover(), poly in arb_convex_polygon()) {
        let h = horizon();
        let inside = inside_polygon(m, &poly, h);
        let outside = outside_polygon(m, &poly, h);
        prop_assert_eq!(inside.union(&outside), IntervalSet::full(h));
        prop_assert!(inside.intersect(&outside).is_empty());
    }

    #[test]
    fn within_sphere_matches_brute_for_triples(
        a in arb_mover(), b in arb_mover(), c in arb_mover(), r in 1u32..40
    ) {
        let r = r as f64;
        let movers = [a, b, c];
        let got = within_sphere(r, &movers, horizon());
        let want = brute(|t| {
            let pts: Vec<Point> = movers.iter().map(|m| m.position_at_tick(t)).collect();
            min_enclosing_circle(&pts).radius <= r + 1e-9
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mec_encloses_all_points(
        pts in prop::collection::vec((arb_coord(), arb_coord()).prop_map(|(x, y)| Point::new(x, y)), 1..8)
    ) {
        let c = min_enclosing_circle(&pts);
        for p in &pts {
            prop_assert!(c.center.dist(*p) <= c.radius + 1e-6);
        }
        // Minimality against diameter lower bound.
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                prop_assert!(c.radius + 1e-6 >= pts[i].dist(pts[j]) / 2.0);
            }
        }
    }

    #[test]
    fn piecewise_matches_brute_on_trajectories(
        m in arb_mover(),
        v2 in (arb_vel(), arb_vel()).prop_map(|(dx, dy)| Velocity::new(dx, dy)),
        switch in 1..H_END,
        poly in arb_convex_polygon()
    ) {
        let mut traj = Trajectory::new(m);
        traj.update_velocity(switch, v2);
        let got = piecewise(&traj, horizon(), |leg, h| inside_polygon(leg, &poly, h));
        let want = brute(|t| poly.contains(traj.position_at_tick(t)));
        prop_assert_eq!(got, want);
    }
}
