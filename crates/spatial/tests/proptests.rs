//! Property tests: every predicate routine must agree with brute-force
//! per-tick evaluation, for random motions, polygons and radii.

use most_spatial::predicates::{
    dist_at_least, dist_within, inside_circle, inside_polygon, inside_rect,
    min_enclosing_circle, outside_polygon, piecewise, within_sphere,
};
use most_spatial::{Circle, MovingPoint, Point, Polygon, Rect, Trajectory, Velocity};
use most_temporal::{Horizon, IntervalSet, Tick};
use most_testkit::check::{ints, tuple2, tuple3, tuple4, vecs, Check, Gen};

const H_END: Tick = 120;
const CASES: usize = 64;

fn horizon() -> Horizon {
    Horizon::new(H_END)
}

fn brute<F: Fn(Tick) -> bool>(pred: F) -> IntervalSet {
    IntervalSet::from_predicate(horizon(), pred)
}

/// Coordinates/velocities on a coarse lattice: keeps root-finding exercised
/// (crossings frequently fall between and exactly on ticks) while staying
/// far away from the adversarial-float regime the library does not target.
fn arb_coord() -> Gen<f64> {
    ints(-200i32..=200).map(|v| v as f64 * 0.5)
}

fn arb_vel() -> Gen<f64> {
    ints(-12i32..=12).map(|v| v as f64 * 0.25)
}

fn arb_mover() -> Gen<MovingPoint> {
    tuple4(arb_coord(), arb_coord(), arb_vel(), arb_vel()).map(|(x, y, dx, dy)| {
        MovingPoint::from_origin(Point::new(x, y), Velocity::new(dx, dy))
    })
}

fn arb_rect() -> Gen<Rect> {
    tuple4(arb_coord(), arb_coord(), ints(1u32..80), ints(1u32..80))
        .map(|(x, y, w, h)| Rect::new(x, y, x + w as f64, y + h as f64))
}

fn arb_convex_polygon() -> Gen<Polygon> {
    tuple4(arb_coord(), arb_coord(), ints(2u32..40), ints(3usize..9))
        .map(|(x, y, r, n)| Polygon::regular(Point::new(x, y), r as f64, n))
}

/// A star-shaped (generally concave) simple polygon: random radii at evenly
/// spread angles around a center.
fn arb_star_polygon() -> Gen<Polygon> {
    tuple3(arb_coord(), arb_coord(), vecs(ints(4u32..50), 4..10)).map(|(x, y, radii)| {
        let n = radii.len();
        let vertices = radii
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let a = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(x + r as f64 * a.cos(), y + r as f64 * a.sin())
            })
            .collect();
        Polygon::new(vertices)
    })
}

#[test]
fn dist_within_matches_brute() {
    Check::new("spatial::dist_within_matches_brute").cases(CASES).run(
        &tuple3(arb_mover(), arb_mover(), ints(1u32..60)),
        |(a, b, r)| {
            let r = *r as f64;
            let got = dist_within(*a, *b, r, horizon());
            let want = brute(|t| a.dist_at(*b, t as f64) <= r);
            assert_eq!(got, want);
        },
    );
}

#[test]
fn dist_at_least_matches_brute() {
    Check::new("spatial::dist_at_least_matches_brute").cases(CASES).run(
        &tuple3(arb_mover(), arb_mover(), ints(1u32..60)),
        |(a, b, r)| {
            let r = *r as f64;
            let got = dist_at_least(*a, *b, r, horizon());
            let want = brute(|t| a.dist_at(*b, t as f64) >= r);
            assert_eq!(got, want);
        },
    );
}

#[test]
fn inside_rect_matches_brute() {
    Check::new("spatial::inside_rect_matches_brute").cases(CASES).run(
        &tuple2(arb_mover(), arb_rect()),
        |(m, rect)| {
            let got = inside_rect(*m, *rect, horizon());
            let want = brute(|t| rect.contains(m.position_at_tick(t)));
            assert_eq!(got, want);
        },
    );
}

#[test]
fn inside_circle_matches_brute() {
    Check::new("spatial::inside_circle_matches_brute").cases(CASES).run(
        &tuple4(arb_mover(), arb_coord(), arb_coord(), ints(1u32..50)),
        |(m, c, cy, r)| {
            let circle = Circle::new(Point::new(*c, *cy), *r as f64);
            let got = inside_circle(*m, circle, horizon());
            let want = brute(|t| circle.contains(m.position_at_tick(t)));
            assert_eq!(got, want);
        },
    );
}

#[test]
fn inside_star_polygon_matches_brute() {
    Check::new("spatial::inside_star_polygon_matches_brute").cases(CASES).run(
        &tuple2(arb_mover(), arb_star_polygon()),
        |(m, poly)| {
            let got = inside_polygon(*m, poly, horizon());
            let want = brute(|t| poly.contains(m.position_at_tick(t)));
            assert_eq!(got, want);
        },
    );
}

#[test]
fn inside_polygon_matches_brute() {
    Check::new("spatial::inside_polygon_matches_brute").cases(CASES).run(
        &tuple2(arb_mover(), arb_convex_polygon()),
        |(m, poly)| {
            let got = inside_polygon(*m, poly, horizon());
            let want = brute(|t| poly.contains(m.position_at_tick(t)));
            assert_eq!(got, want);
        },
    );
}

#[test]
fn outside_is_complement_of_inside() {
    Check::new("spatial::outside_is_complement_of_inside").cases(CASES).run(
        &tuple2(arb_mover(), arb_convex_polygon()),
        |(m, poly)| {
            let h = horizon();
            let inside = inside_polygon(*m, poly, h);
            let outside = outside_polygon(*m, poly, h);
            assert_eq!(inside.union(&outside), IntervalSet::full(h));
            assert!(inside.intersect(&outside).is_empty());
        },
    );
}

#[test]
fn within_sphere_matches_brute_for_triples() {
    Check::new("spatial::within_sphere_matches_brute_for_triples")
        .cases(CASES)
        .run(
            &tuple4(arb_mover(), arb_mover(), arb_mover(), ints(1u32..40)),
            |(a, b, c, r)| {
                let r = *r as f64;
                let movers = [*a, *b, *c];
                let got = within_sphere(r, &movers, horizon());
                let want = brute(|t| {
                    let pts: Vec<Point> =
                        movers.iter().map(|m| m.position_at_tick(t)).collect();
                    min_enclosing_circle(&pts).radius <= r + 1e-9
                });
                assert_eq!(got, want);
            },
        );
}

#[test]
fn mec_encloses_all_points() {
    let arb_points = vecs(
        tuple2(arb_coord(), arb_coord()).map(|(x, y)| Point::new(x, y)),
        1..8,
    );
    Check::new("spatial::mec_encloses_all_points").cases(CASES).run(&arb_points, |pts| {
        let c = min_enclosing_circle(pts);
        for p in pts {
            assert!(c.center.dist(*p) <= c.radius + 1e-6);
        }
        // Minimality against diameter lower bound.
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                assert!(c.radius + 1e-6 >= pts[i].dist(pts[j]) / 2.0);
            }
        }
    });
}

#[test]
fn piecewise_matches_brute_on_trajectories() {
    let arb_v2 = tuple2(arb_vel(), arb_vel()).map(|(dx, dy)| Velocity::new(dx, dy));
    Check::new("spatial::piecewise_matches_brute_on_trajectories")
        .cases(CASES)
        .run(
            &tuple4(arb_mover(), arb_v2, ints(1..H_END), arb_convex_polygon()),
            |(m, v2, switch, poly)| {
                let mut traj = Trajectory::new(*m);
                traj.update_velocity(*switch, *v2);
                let got = piecewise(&traj, horizon(), |leg, h| inside_polygon(leg, poly, h));
                let want = brute(|t| poly.contains(traj.position_at_tick(t)));
                assert_eq!(got, want);
            },
        );
}
