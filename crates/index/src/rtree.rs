//! An R-tree over function-line segments: the ablation alternative to the
//! quadtree (DESIGN.md D4 / experiment E7).
//!
//! Supports STR (sort-tile-recursive) bulk loading from a segment set and
//! incremental insertion with quadratic split.  Queries first prune by
//! bounding boxes, then re-test candidate segments exactly, so results
//! match the quadtree's.

use crate::segment::Segment;
use most_spatial::Rect;

const MAX_ENTRIES: usize = 8;
const MIN_ENTRIES: usize = 3;

/// An R-tree of `(id, segment)` entries.
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node {
    bbox: Rect,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf(Vec<(u64, Segment)>),
    Internal(Vec<Node>),
}

impl Default for RTree {
    fn default() -> Self {
        RTree::new()
    }
}

fn empty_rect() -> Rect {
    Rect::new(0.0, 0.0, 0.0, 0.0)
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node { bbox: empty_rect(), kind: NodeKind::Leaf(Vec::new()) },
            len: 0,
        }
    }

    /// STR bulk load: sort by x-center into vertical slices, then by
    /// y-center within each slice.
    pub fn bulk_load(mut entries: Vec<(u64, Segment)>) -> Self {
        let len = entries.len();
        if len == 0 {
            return RTree::new();
        }
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slices);
        entries.sort_by(|a, b| {
            let ca = (a.1.x0 + a.1.x1) / 2.0;
            let cb = (b.1.x0 + b.1.x1) / 2.0;
            ca.total_cmp(&cb)
        });
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for slice in entries.chunks(per_slice.max(1)) {
            let mut slice = slice.to_vec();
            slice.sort_by(|a, b| {
                let ca = (a.1.y0 + a.1.y1) / 2.0;
                let cb = (b.1.y0 + b.1.y1) / 2.0;
                ca.total_cmp(&cb)
            });
            for group in slice.chunks(MAX_ENTRIES) {
                let items = group.to_vec();
                let bbox = items
                    .iter()
                    .map(|(_, s)| s.bounding_box())
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                leaves.push(Node { bbox, kind: NodeKind::Leaf(items) });
            }
        }
        // Pack upwards.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            level.sort_by(|a, b| a.bbox.center().x.total_cmp(&b.bbox.center().x));
            for group in level.chunks(MAX_ENTRIES) {
                let children: Vec<Node> = group.to_vec();
                let bbox = children
                    .iter()
                    .map(|c| c.bbox)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                next.push(Node { bbox, kind: NodeKind::Internal(children) });
            }
            level = next;
        }
        RTree { root: level.pop().expect("at least one node"), len }
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry (choose-subtree by least enlargement; quadratic
    /// split on overflow).
    pub fn insert(&mut self, id: u64, seg: Segment) {
        let bbox = seg.bounding_box();
        if self.len == 0 {
            self.root = Node { bbox, kind: NodeKind::Leaf(vec![(id, seg)]) };
            self.len = 1;
            return;
        }
        if let Some((a, b)) = insert_rec(&mut self.root, id, seg) {
            // Root split.
            let bbox = a.bbox.union(&b.bbox);
            self.root = Node { bbox, kind: NodeKind::Internal(vec![a, b]) };
        }
        self.len += 1;
    }

    /// Removes an exact `(id, segment)` entry.
    pub fn remove(&mut self, id: u64, seg: Segment) -> bool {
        let removed = remove_rec(&mut self.root, id, seg);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Ids of segments intersecting the rectangle (exact; deduplicated),
    /// plus nodes visited.
    pub fn query(&self, rect: &Rect) -> (Vec<u64>, u64) {
        let mut out = Vec::new();
        let mut visited = 0u64;
        if self.len > 0 {
            query_rec(&self.root, rect, &mut out, &mut visited);
        }
        out.sort_unstable();
        out.dedup();
        (out, visited)
    }
}

fn insert_rec(node: &mut Node, id: u64, seg: Segment) -> Option<(Node, Node)> {
    let seg_box = seg.bounding_box();
    node.bbox = if matches!(&node.kind, NodeKind::Leaf(v) if v.is_empty()) {
        seg_box
    } else {
        node.bbox.union(&seg_box)
    };
    match &mut node.kind {
        NodeKind::Leaf(items) => {
            items.push((id, seg));
            if items.len() > MAX_ENTRIES {
                let (a, b) = split_leaf(std::mem::take(items));
                Some((a, b))
            } else {
                None
            }
        }
        NodeKind::Internal(children) => {
            // Least-enlargement child.
            let best = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.bbox
                        .enlargement(&seg_box)
                        .total_cmp(&b.bbox.enlargement(&seg_box))
                })
                .map(|(i, _)| i)
                .expect("internal node has children");
            if let Some((a, b)) = insert_rec(&mut children[best], id, seg) {
                children.swap_remove(best);
                children.push(a);
                children.push(b);
                if children.len() > MAX_ENTRIES {
                    let (a, b) = split_internal(std::mem::take(children));
                    return Some((a, b));
                }
            }
            None
        }
    }
}

/// Quadratic split: pick the pair of seeds wasting the most area, then
/// assign each entry to the group whose bbox grows least.
fn split_leaf(items: Vec<(u64, Segment)>) -> (Node, Node) {
    let boxes: Vec<Rect> = items.iter().map(|(_, s)| s.bounding_box()).collect();
    let (s1, s2) = pick_seeds(&boxes);
    let mut g1 = vec![items[s1]];
    let mut g2 = vec![items[s2]];
    let mut b1 = boxes[s1];
    let mut b2 = boxes[s2];
    for (i, item) in items.into_iter().enumerate() {
        if i == s1 || i == s2 {
            continue;
        }
        let bb = boxes[i];
        assign(&mut g1, &mut b1, &mut g2, &mut b2, item, bb);
    }
    (
        Node { bbox: b1, kind: NodeKind::Leaf(g1) },
        Node { bbox: b2, kind: NodeKind::Leaf(g2) },
    )
}

fn split_internal(children: Vec<Node>) -> (Node, Node) {
    let boxes: Vec<Rect> = children.iter().map(|c| c.bbox).collect();
    let (s1, s2) = pick_seeds(&boxes);
    let mut g1 = Vec::new();
    let mut g2 = Vec::new();
    let mut b1 = boxes[s1];
    let mut b2 = boxes[s2];
    for (i, child) in children.into_iter().enumerate() {
        if i == s1 {
            g1.insert(0, child);
            continue;
        }
        if i == s2 {
            g2.insert(0, child);
            continue;
        }
        let bb = boxes[i];
        assign(&mut g1, &mut b1, &mut g2, &mut b2, child, bb);
    }
    (
        Node { bbox: b1, kind: NodeKind::Internal(g1) },
        Node { bbox: b2, kind: NodeKind::Internal(g2) },
    )
}

fn pick_seeds(boxes: &[Rect]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..boxes.len() {
        for j in i + 1..boxes.len() {
            let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

fn assign<T>(
    g1: &mut Vec<T>,
    b1: &mut Rect,
    g2: &mut Vec<T>,
    b2: &mut Rect,
    item: T,
    bb: Rect,
) {
    // Honour minimum fill.
    let remaining_cap = |g: &Vec<T>| g.len() < MAX_ENTRIES + 1 - MIN_ENTRIES;
    let grow1 = b1.enlargement(&bb);
    let grow2 = b2.enlargement(&bb);
    let to_first = if !remaining_cap(g1) {
        false
    } else if !remaining_cap(g2) {
        true
    } else {
        grow1 <= grow2
    };
    if to_first {
        *b1 = b1.union(&bb);
        g1.push(item);
    } else {
        *b2 = b2.union(&bb);
        g2.push(item);
    }
}

fn remove_rec(node: &mut Node, id: u64, seg: Segment) -> bool {
    match &mut node.kind {
        NodeKind::Leaf(items) => {
            let before = items.len();
            items.retain(|(i, s)| !(*i == id && *s == seg));
            let removed = items.len() != before;
            if removed {
                node.bbox = items
                    .iter()
                    .map(|(_, s)| s.bounding_box())
                    .reduce(|a, b| a.union(&b))
                    .unwrap_or_else(empty_rect);
            }
            removed
        }
        NodeKind::Internal(children) => {
            let sb = seg.bounding_box();
            let mut removed = false;
            for c in children.iter_mut() {
                if c.bbox.intersects(&sb) && remove_rec(c, id, seg) {
                    removed = true;
                    break;
                }
            }
            if removed {
                children.retain(|c| match &c.kind {
                    NodeKind::Leaf(v) => !v.is_empty(),
                    NodeKind::Internal(v) => !v.is_empty(),
                });
                node.bbox = children
                    .iter()
                    .map(|c| c.bbox)
                    .reduce(|a, b| a.union(&b))
                    .unwrap_or_else(empty_rect);
            }
            removed
        }
    }
}

fn query_rec(node: &Node, rect: &Rect, out: &mut Vec<u64>, visited: &mut u64) {
    *visited += 1;
    match &node.kind {
        NodeKind::Leaf(items) => {
            for (id, seg) in items {
                if seg.bounding_box().intersects(rect) && seg.intersects_rect(rect) {
                    out.push(*id);
                }
            }
        }
        NodeKind::Internal(children) => {
            for c in children {
                if c.bbox.intersects(rect) {
                    query_rec(c, rect, out, visited);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(n: u64) -> Vec<(u64, Segment)> {
        (0..n)
            .map(|i| {
                (
                    i,
                    Segment::from_function(0.0, i as f64, (i % 5) as f64 * 0.1, 100.0),
                )
            })
            .collect()
    }

    #[test]
    fn bulk_load_and_query() {
        let t = RTree::bulk_load(lines(100));
        assert_eq!(t.len(), 100);
        let (ids, visited) = t.query(&Rect::new(0.0, 0.0, 0.5, 10.0));
        // At t≈0 values are exactly i: lines 0..=10 qualify.
        assert_eq!(ids, (0..=10).collect::<Vec<u64>>());
        assert!(visited > 0);
    }

    #[test]
    fn incremental_insert_matches_bulk() {
        let entries = lines(60);
        let bulk = RTree::bulk_load(entries.clone());
        let mut inc = RTree::new();
        for (id, s) in entries {
            inc.insert(id, s);
        }
        for rect in [
            Rect::new(0.0, 0.0, 10.0, 10.0),
            Rect::new(50.0, 10.0, 60.0, 40.0),
            Rect::new(90.0, -5.0, 100.0, 70.0),
        ] {
            assert_eq!(bulk.query(&rect).0, inc.query(&rect).0, "rect {rect:?}");
        }
    }

    #[test]
    fn remove_entries() {
        let mut t = RTree::bulk_load(lines(20));
        let seg = Segment::from_function(0.0, 5.0, 0.0, 100.0);
        assert!(t.remove(5, seg));
        assert!(!t.remove(5, seg));
        assert_eq!(t.len(), 19);
        let (ids, _) = t.query(&Rect::new(0.0, 4.9, 100.0, 5.1));
        assert!(!ids.contains(&5));
    }

    #[test]
    fn empty_tree_queries() {
        let t = RTree::new();
        let (ids, _) = t.query(&Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(ids.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn exactness_no_bbox_false_positives() {
        // A steep diagonal has a huge bbox; querying a corner off the line
        // must return nothing.
        let mut t = RTree::new();
        t.insert(1, Segment::new(0.0, 0.0, 100.0, 100.0));
        let (ids, _) = t.query(&Rect::new(0.0, 60.0, 30.0, 100.0));
        assert!(ids.is_empty());
    }
}
