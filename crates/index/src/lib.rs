//! Dynamic-attribute indexing (Section 4 of the paper).
//!
//! "The method plots all the functions representing the way a dynamic
//! attribute A changes with time.  Thus, the x-axis represents time, and the
//! y-axis represents the value of A. ... We use a spatial index for each
//! dynamic attribute A.  Spatial indexes use a hierarchical recursive
//! decomposition of space, usually into rectangles; the id of each object o
//! is stored in the records representing the rectangles crossed by the
//! A.function of o."
//!
//! This crate implements that scheme end to end:
//!
//! * [`segment`] — function-lines as 2-D segments with exact
//!   rectangle-intersection tests (Liang–Barsky clipping);
//! * [`quadtree`] — a region quadtree over (time × value) space, the
//!   paper's "hierarchical recursive decomposition ... into rectangles";
//! * [`rtree`] — an STR bulk-loaded R-tree alternative (ablation E7);
//! * [`dynidx`] — [`dynidx::DynamicAttributeIndex`]: insert / update /
//!   instantaneous and continuous range queries over one dynamic attribute,
//!   plus the [`dynidx::ScanIndex`] linear-scan baseline;
//! * [`index2d`] — the "3-dimensional space, with the third dimension
//!   being, obviously, time" variant for objects moving in the plane,
//!   implemented as an octree over (time × x × y);
//! * [`rebuild`] — horizon management: "the index needs to be reconstructed
//!   every T time units", with counters supporting the E8 sweep of the
//!   paper's open question ("choosing an appropriate value for T").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynidx;
pub mod index2d;
pub mod quadtree;
pub mod rebuild;
pub mod rtree;
pub mod segment;

pub use dynidx::{DynamicAttributeIndex, IndexKind, QueryStats, ScanIndex};
pub use index2d::MovingObjectIndex2D;
pub use rebuild::RebuildingIndex;
