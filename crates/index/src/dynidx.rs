//! The dynamic-attribute index of Section 4.
//!
//! One [`DynamicAttributeIndex`] indexes one dynamic attribute `A` over the
//! lifetime `[0, T]` ("in order to use this scheme we have to consider the
//! time dimension starting at 0 and ending at some time-point T").  Each
//! object's `A.function` is a line in (time × value) space; updates replace
//! the line from the update time onwards, exactly as the paper prescribes:
//! "o is removed from the records representing rectangles crossed by the
//! old function-line, and it is added to the records representing
//! rectangles crossed by the new function-line" — where only the part of
//! the old line *after* the update time is replaced (the past is history).
//!
//! Supported queries:
//!
//! * [`DynamicAttributeIndex::instantaneous`] — "Retrieve the objects for
//!   which currently `lo < A < hi`", via a thin time-slab rectangle query
//!   plus exact verification ("For each object id in these records we check
//!   whether currently 4 < A < 5");
//! * [`DynamicAttributeIndex::continuous`] — the same query entered as
//!   continuous: one rectangle query over `[t, T]` and, per candidate, "the
//!   time intervals when 4 < o.A < 5", assembled into `Answer(CQ)` rows.
//!
//! [`ScanIndex`] is the no-index baseline (experiment E2).

use crate::quadtree::QuadTree;
use crate::rtree::RTree;
use crate::segment::Segment;
use most_spatial::roots::solve_quadratic_le;
use most_spatial::{predicates::exact_ticks, Rect};
use most_temporal::{Horizon, IntervalSet, Tick};
use std::collections::HashMap;

/// Which spatial structure backs the index (ablation E7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Region quadtree decomposition.
    QuadTree,
    /// R-tree with quadratic split.
    RTree,
}

/// Counters reported by queries (access-cost accounting for E2/E7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Spatial-structure nodes visited.
    pub nodes_visited: u64,
    /// Candidate object ids produced by the structure.
    pub candidates: u64,
    /// Ids surviving exact verification.
    pub results: u64,
}

/// Mirrors one query's [`QueryStats`] into the observability registry —
/// batched per query, never per node, so the hot path stays cheap.
pub(crate) fn record_query_stats(stats: &QueryStats) {
    most_obs::inc("index.queries");
    most_obs::add("index.nodes_visited", stats.nodes_visited);
    most_obs::add("index.candidates", stats.candidates);
    most_obs::add("index.results", stats.results);
}

#[derive(Debug, Clone)]
enum Structure {
    Quad(QuadTree),
    R(RTree),
}

impl Structure {
    fn insert(&mut self, id: u64, seg: Segment) {
        match self {
            Structure::Quad(t) => t.insert(id, seg),
            Structure::R(t) => t.insert(id, seg),
        }
    }

    fn remove(&mut self, id: u64, seg: Segment) -> bool {
        match self {
            Structure::Quad(t) => t.remove(id, seg),
            Structure::R(t) => t.remove(id, seg),
        }
    }

    fn query(&self, rect: &Rect) -> (Vec<u64>, u64) {
        match self {
            Structure::Quad(t) => t.query(rect),
            Structure::R(t) => t.query(rect),
        }
    }
}

/// A per-object piece of the function-line: value `v0` at tick `from`,
/// slope per tick, valid until `until` (inclusive, in ticks).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Piece {
    from: Tick,
    until: Tick,
    v0: f64,
    slope: f64,
}

impl Piece {
    fn segment(&self) -> Segment {
        Segment::from_function(self.from as f64, self.v0, self.slope, self.until as f64)
    }

    fn value_at(&self, t: Tick) -> f64 {
        // Signed difference: callers may probe ticks before the piece start
        // (extrapolation of the first piece).
        self.v0 + self.slope * (t as f64 - self.from as f64)
    }
}

/// The Section 4 index over one dynamic attribute.
///
/// ```
/// use most_index::{DynamicAttributeIndex, IndexKind};
///
/// let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, 1_000, (-100.0, 1_100.0));
/// idx.insert(7, 0, 0.0, 1.0);   // A grows one unit per tick
/// idx.insert(8, 0, 500.0, 0.0); // A stays at 500
///
/// // "Retrieve the objects for which currently 495 < A < 505" at t = 500:
/// let (ids, _) = idx.instantaneous(500, 495.0, 505.0);
/// assert_eq!(ids, vec![7, 8]);
///
/// // The same query as continuous returns per-object tick intervals.
/// let (rows, _) = idx.continuous(0, 495.0, 505.0);
/// assert_eq!(rows.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicAttributeIndex {
    structure: Structure,
    /// Piecewise function-line per object, pieces in time order.
    objects: HashMap<u64, Vec<Piece>>,
    lifetime: Tick,
    value_range: (f64, f64),
}

impl DynamicAttributeIndex {
    /// Creates an index over `[0, lifetime]` ticks and the given attribute
    /// value range.
    pub fn new(kind: IndexKind, lifetime: Tick, value_range: (f64, f64)) -> Self {
        let bounds = Rect::new(0.0, value_range.0, lifetime as f64, value_range.1);
        let structure = match kind {
            IndexKind::QuadTree => Structure::Quad(QuadTree::new(bounds)),
            IndexKind::RTree => Structure::R(RTree::new()),
        };
        DynamicAttributeIndex {
            structure,
            objects: HashMap::new(),
            lifetime,
            value_range,
        }
    }

    /// Bulk-loads an index from `(id, value at tick 0, slope)` triples.
    ///
    /// With the R-tree structure this uses STR packing
    /// ([`crate::rtree::RTree::bulk_load`]), which builds a tighter tree
    /// far faster than repeated insertion; the quadtree falls back to
    /// sequential insertion (its decomposition is position-determined, so
    /// packing gains nothing).
    pub fn bulk(
        kind: IndexKind,
        lifetime: Tick,
        value_range: (f64, f64),
        items: impl IntoIterator<Item = (u64, f64, f64)>,
    ) -> Self {
        let mut objects = HashMap::new();
        let mut entries = Vec::new();
        for (id, value, slope) in items {
            let piece = Piece { from: 0, until: lifetime, v0: value, slope };
            let prev = objects.insert(id, vec![piece]);
            assert!(prev.is_none(), "duplicate id #{id} in bulk load");
            entries.push((id, piece.segment()));
        }
        let structure = match kind {
            IndexKind::RTree => Structure::R(RTree::bulk_load(entries)),
            IndexKind::QuadTree => {
                let bounds =
                    Rect::new(0.0, value_range.0, lifetime as f64, value_range.1);
                let mut tree = QuadTree::new(bounds);
                for (id, seg) in entries {
                    tree.insert(id, seg);
                }
                Structure::Quad(tree)
            }
        };
        DynamicAttributeIndex { structure, objects, lifetime, value_range }
    }

    /// The index lifetime `T`.
    pub fn lifetime(&self) -> Tick {
        self.lifetime
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Inserts an object whose attribute is `value` at tick `at` and moves
    /// with `slope` per tick; its line is plotted from `at` to `T`.
    ///
    /// # Panics
    /// Panics if the id is already present (use [`Self::update`]).
    pub fn insert(&mut self, id: u64, at: Tick, value: f64, slope: f64) {
        assert!(
            !self.objects.contains_key(&id),
            "object #{id} already indexed; use update()"
        );
        let piece = Piece { from: at, until: self.lifetime, v0: value, slope };
        self.structure.insert(id, piece.segment());
        self.objects.insert(id, vec![piece]);
    }

    /// Applies an explicit update at tick `t`: from `t` on, the attribute is
    /// `value` and changes with `slope`.  The portion of the old line after
    /// `t` is removed from the structure; the line before `t` stays (it
    /// records the past).
    pub fn update(&mut self, id: u64, t: Tick, value: f64, slope: f64) {
        let pieces = self.objects.get_mut(&id).expect("object must be indexed");
        let last = pieces.last_mut().expect("objects have at least one piece");
        assert!(t >= last.from, "updates must move forward in time");
        // Remove the old tail.
        self.structure.remove(id, last.segment());
        if t > last.from {
            // Keep the historical prefix [last.from, t-1].
            let mut prefix = *last;
            prefix.until = t - 1;
            *last = prefix;
            self.structure.insert(id, prefix.segment());
            let tail = Piece { from: t, until: self.lifetime, v0: value, slope };
            self.structure.insert(id, tail.segment());
            pieces.push(tail);
        } else {
            // Same-tick replacement.
            *last = Piece { from: t, until: self.lifetime, v0: value, slope };
            let seg = last.segment();
            self.structure.insert(id, seg);
        }
    }

    /// Whether `id` is indexed.
    pub fn contains(&self, id: u64) -> bool {
        self.objects.contains_key(&id)
    }

    /// Unverified candidate superset for a range query: ids whose
    /// function-line rectangles intersect `lo <= A <= hi` during
    /// `[from, to]` ticks.  Unlike [`Self::instantaneous`] /
    /// [`Self::continuous`] no exact verification is performed — callers
    /// (the FTL evaluator's candidate pruning) evaluate each candidate
    /// exactly themselves.  Bounds are clamped to the declared value range
    /// (owners guarantee indexed lines stay inside it), so infinite bounds
    /// express one-sided ranges.
    pub fn range_candidates(&self, from: Tick, to: Tick, lo: f64, hi: f64) -> Vec<u64> {
        let lo = lo.max(self.value_range.0);
        let hi = hi.min(self.value_range.1);
        if lo > hi {
            return Vec::new();
        }
        let rect = Rect::new(from as f64, lo, to.min(self.lifetime) as f64, hi);
        let (mut candidates, nodes_visited) = self.structure.query(&rect);
        candidates.sort_unstable();
        candidates.dedup();
        record_query_stats(&QueryStats {
            nodes_visited,
            candidates: candidates.len() as u64,
            results: candidates.len() as u64,
        });
        candidates
    }

    /// The exact attribute value of `id` at tick `t` (from the recorded
    /// pieces), if indexed.
    pub fn value_of(&self, id: u64, t: Tick) -> Option<f64> {
        let pieces = self.objects.get(&id)?;
        let piece = pieces
            .iter()
            .rev()
            .find(|p| p.from <= t)
            .or_else(|| pieces.first())?;
        Some(piece.value_at(t))
    }

    /// Instantaneous range query: ids with `lo <= A <= hi` at tick `now`.
    ///
    /// "Using the index we retrieve the records representing the rectangles
    /// that intersect the rectangle `4 < A < 5` and `1−ε < t < 1+ε`.  For
    /// each object id in these records we check whether currently
    /// `4 < A < 5`."
    pub fn instantaneous(&self, now: Tick, lo: f64, hi: f64) -> (Vec<u64>, QueryStats) {
        let eps = 0.5;
        let rect = Rect::new(now as f64 - eps, lo, now as f64 + eps, hi);
        let (candidates, nodes_visited) = self.structure.query(&rect);
        let mut stats = QueryStats {
            nodes_visited,
            candidates: candidates.len() as u64,
            results: 0,
        };
        let out: Vec<u64> = candidates
            .into_iter()
            .filter(|&id| {
                self.value_of(id, now)
                    .is_some_and(|v| lo <= v && v <= hi)
            })
            .collect();
        stats.results = out.len() as u64;
        record_query_stats(&stats);
        (out, stats)
    }

    /// Continuous range query from tick `now`: `Answer(CQ)` rows
    /// `(id, ticks during which lo <= A <= hi)` until the index lifetime.
    ///
    /// "Using the index we retrieve the records representing the rectangles
    /// that intersect the rectangle `4 < A < 5` and `1 < t < T`.  We
    /// construct the set Answer(CQ) by examining each object id in these
    /// records, and determining the time intervals when `4 < o.A < 5`."
    pub fn continuous(
        &self,
        now: Tick,
        lo: f64,
        hi: f64,
    ) -> (Vec<(u64, IntervalSet)>, QueryStats) {
        let rect = Rect::new(now as f64, lo, self.lifetime as f64, hi);
        let (candidates, nodes_visited) = self.structure.query(&rect);
        let mut stats = QueryStats {
            nodes_visited,
            candidates: candidates.len() as u64,
            results: 0,
        };
        let h = Horizon::new(self.lifetime);
        let mut out = Vec::new();
        for id in candidates {
            let set = self.in_range_intervals(id, lo, hi, h);
            let clipped = set.intersect(&IntervalSet::singleton(
                most_temporal::Interval::new(now, self.lifetime),
            ));
            if !clipped.is_empty() {
                out.push((id, clipped));
            }
        }
        stats.results = out.len() as u64;
        record_query_stats(&stats);
        (out, stats)
    }

    /// Ticks at which `lo <= A <= hi` for one object, across its pieces.
    fn in_range_intervals(&self, id: u64, lo: f64, hi: f64, h: Horizon) -> IntervalSet {
        let Some(pieces) = self.objects.get(&id) else {
            return IntervalSet::empty();
        };
        let mut acc = IntervalSet::empty();
        for p in pieces {
            // lo <= v0 + slope·(t - from) <= hi, t in [p.from, p.until]
            let b = p.slope;
            let c0 = p.v0 - p.slope * p.from as f64;
            let le_hi = solve_quadratic_le(0.0, b, c0 - hi)
                .clipped(p.from as f64, p.until as f64);
            let ge_lo = solve_quadratic_le(0.0, -b, lo - c0)
                .clipped(p.from as f64, p.until as f64);
            let s1 = exact_ticks(&le_hi, h, |t| p.value_at(t) <= hi && p.from <= t && t <= p.until);
            let s2 = exact_ticks(&ge_lo, h, |t| p.value_at(t) >= lo && p.from <= t && t <= p.until);
            acc = acc.union(&s1.intersect(&s2));
        }
        acc
    }

    /// The declared value range.
    pub fn value_range(&self) -> (f64, f64) {
        self.value_range
    }

    /// Snapshot of each object's final piece — used by
    /// [`crate::rebuild::RebuildingIndex`] to carry state across
    /// reconstruction.
    pub fn current_states(&self, at: Tick) -> Vec<(u64, f64, f64)> {
        let mut out: Vec<(u64, f64, f64)> = self
            .objects
            .iter()
            .map(|(&id, pieces)| {
                let last = pieces.last().expect("non-empty");
                (id, last.value_at(at.max(last.from)), last.slope)
            })
            .collect();
        out.sort_by_key(|&(id, _, _)| id);
        out
    }
}

/// The no-index baseline: a flat table of (value, slope) states scanned in
/// full for every query.
#[derive(Debug, Clone, Default)]
pub struct ScanIndex {
    objects: HashMap<u64, (Tick, f64, f64)>,
}

impl ScanIndex {
    /// An empty baseline store.
    pub fn new() -> Self {
        ScanIndex::default()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Inserts or updates an object's state.
    pub fn upsert(&mut self, id: u64, at: Tick, value: f64, slope: f64) {
        self.objects.insert(id, (at, value, slope));
    }

    /// Instantaneous range query by full scan; the stats count one "node"
    /// per object examined.
    pub fn instantaneous(&self, now: Tick, lo: f64, hi: f64) -> (Vec<u64>, QueryStats) {
        let mut out = Vec::new();
        for (&id, &(at, v0, slope)) in &self.objects {
            let v = v0 + slope * (now.saturating_sub(at)) as f64;
            if lo <= v && v <= hi {
                out.push(id);
            }
        }
        out.sort_unstable();
        let n = self.objects.len() as u64;
        (
            out.clone(),
            QueryStats { nodes_visited: n, candidates: n, results: out.len() as u64 },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds() -> Vec<DynamicAttributeIndex> {
        vec![
            DynamicAttributeIndex::new(IndexKind::QuadTree, 1000, (-2000.0, 2000.0)),
            DynamicAttributeIndex::new(IndexKind::RTree, 1000, (-2000.0, 2000.0)),
        ]
    }

    #[test]
    fn instantaneous_matches_scan() {
        for mut idx in both_kinds() {
            let mut scan = ScanIndex::new();
            for i in 0..200u64 {
                let v0 = (i as f64) - 100.0;
                let slope = ((i % 7) as f64 - 3.0) * 0.5;
                idx.insert(i, 0, v0, slope);
                scan.upsert(i, 0, v0, slope);
            }
            for now in [0u64, 10, 100, 500] {
                let (a, _) = idx.instantaneous(now, -20.0, 20.0);
                let (b, _) = scan.instantaneous(now, -20.0, 20.0);
                assert_eq!(a, b, "now = {now}");
            }
        }
    }

    #[test]
    fn index_visits_fewer_nodes_than_scan_at_scale() {
        let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, 1000, (-5000.0, 5000.0));
        let mut scan = ScanIndex::new();
        for i in 0..2000u64 {
            let v0 = (i as f64) * 2.0 - 2000.0;
            idx.insert(i, 0, v0, 0.1);
            scan.upsert(i, 0, v0, 0.1);
        }
        let (a, s_idx) = idx.instantaneous(5, -10.0, 10.0);
        let (b, s_scan) = scan.instantaneous(5, -10.0, 10.0);
        assert_eq!(a, b);
        assert!(
            s_idx.nodes_visited + s_idx.candidates < s_scan.nodes_visited / 4,
            "index should touch far fewer entries ({s_idx:?} vs {s_scan:?})"
        );
    }

    #[test]
    fn update_redirects_the_line() {
        for mut idx in both_kinds() {
            idx.insert(1, 0, 0.0, 1.0); // value = t
            idx.update(1, 100, 100.0, -1.0); // from 100: value = 200 - t
            // Past is preserved.
            assert_eq!(idx.value_of(1, 50), Some(50.0));
            // Future follows the new vector.
            assert_eq!(idx.value_of(1, 150), Some(50.0));
            let (ids, _) = idx.instantaneous(150, 45.0, 55.0);
            assert_eq!(ids, vec![1]);
            // The old extrapolation (value 150 at t=150) must be gone.
            let (ids, _) = idx.instantaneous(150, 145.0, 155.0);
            assert!(ids.is_empty());
        }
    }

    #[test]
    fn continuous_query_returns_intervals() {
        for mut idx in both_kinds() {
            idx.insert(1, 0, 0.0, 1.0); // crosses [40, 60] during t in [40, 60]
            idx.insert(2, 0, 500.0, 0.0); // never in range
            idx.insert(3, 0, 100.0, -1.0); // crosses during t in [40, 60]
            let (rows, stats) = idx.continuous(0, 40.0, 60.0);
            assert_eq!(rows.len(), 2);
            assert_eq!(stats.results, 2);
            let r1 = rows.iter().find(|(id, _)| *id == 1).unwrap();
            assert_eq!(r1.1.first_tick(), Some(40));
            assert_eq!(r1.1.last_tick(), Some(60));
            // Starting the query later clips the intervals.
            let (rows, _) = idx.continuous(50, 40.0, 60.0);
            let r1 = rows.iter().find(|(id, _)| *id == 1).unwrap();
            assert_eq!(r1.1.first_tick(), Some(50));
        }
    }

    #[test]
    fn continuous_with_update_uses_pieces() {
        let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, 1000, (-2000.0, 2000.0));
        idx.insert(1, 0, 0.0, 1.0);
        idx.update(1, 50, 50.0, -1.0); // turns around at 50
        let (rows, _) = idx.continuous(0, 40.0, 45.0);
        let set = &rows.iter().find(|(id, _)| *id == 1).unwrap().1;
        // In range on the way up (t in 40..=45) and on the way down
        // (value 45..40 at t in 55..=60).
        assert_eq!(set.span_count(), 2);
        assert_eq!(set.first_tick(), Some(40));
        assert_eq!(set.last_tick(), Some(60));
    }

    #[test]
    fn current_states_snapshot() {
        let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, 100, (-500.0, 500.0));
        idx.insert(1, 0, 10.0, 1.0);
        idx.insert(2, 0, -10.0, 0.0);
        idx.update(1, 20, 30.0, 2.0);
        let states = idx.current_states(50);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0], (1, 30.0 + 2.0 * 30.0, 2.0));
        assert_eq!(states[1], (2, -10.0, 0.0));
    }

    #[test]
    fn bulk_load_matches_incremental_build() {
        for kind in [IndexKind::QuadTree, IndexKind::RTree] {
            let items: Vec<(u64, f64, f64)> = (0..300)
                .map(|i| (i, (i as f64 * 7.0) % 400.0 - 100.0, ((i % 9) as f64 - 4.0) * 0.25))
                .collect();
            let bulk =
                DynamicAttributeIndex::bulk(kind, 1000, (-2000.0, 2000.0), items.clone());
            let mut inc = DynamicAttributeIndex::new(kind, 1000, (-2000.0, 2000.0));
            for &(id, v, s) in &items {
                inc.insert(id, 0, v, s);
            }
            for (now, lo, hi) in [(0u64, -50.0, 50.0), (200, 0.0, 120.0), (999, -400.0, 400.0)] {
                assert_eq!(
                    bulk.instantaneous(now, lo, hi).0,
                    inc.instantaneous(now, lo, hi).0,
                    "{kind:?} at {now}"
                );
            }
            assert_eq!(bulk.len(), 300);
        }
    }

    #[test]
    #[should_panic]
    fn bulk_duplicate_id_panics() {
        let _ = DynamicAttributeIndex::bulk(
            IndexKind::RTree,
            100,
            (0.0, 10.0),
            vec![(1, 1.0, 0.0), (1, 2.0, 0.0)],
        );
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, 100, (0.0, 10.0));
        idx.insert(1, 0, 1.0, 0.0);
        idx.insert(1, 0, 2.0, 0.0);
    }
}
