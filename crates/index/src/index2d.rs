//! Indexing objects moving in the plane: the paper's 3-D variant.
//!
//! "For an object moving in 2-dimensional space, the above scheme can be
//! mimicked using an index of 3-dimensional space, with the third dimension
//! being, obviously, time."  The structure here is an octree over
//! (time × x × y); each object's motion is a 3-D line segment (piecewise,
//! across motion-vector updates) inserted into every cell it crosses.

use most_spatial::predicates::inside_rect;
use most_spatial::{MovingPoint, Point, Rect, Velocity};
use most_temporal::{Horizon, Interval, IntervalSet, Tick};
use std::collections::HashMap;

use crate::dynidx::QueryStats;

const LEAF_CAPACITY: usize = 8;
const MAX_DEPTH: u32 = 10;

/// An axis-aligned box in (time, x, y).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Box3 {
    min: [f64; 3],
    max: [f64; 3],
}

impl Box3 {
    fn intersects(&self, other: &Box3) -> bool {
        (0..3).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    fn octants(&self) -> [Box3; 8] {
        let mid = [
            (self.min[0] + self.max[0]) / 2.0,
            (self.min[1] + self.max[1]) / 2.0,
            (self.min[2] + self.max[2]) / 2.0,
        ];
        let mut out = [*self; 8];
        for (i, b) in out.iter_mut().enumerate() {
            for (axis, &m) in mid.iter().enumerate() {
                if i & (1 << axis) == 0 {
                    b.max[axis] = m;
                } else {
                    b.min[axis] = m;
                }
            }
        }
        out
    }
}

/// A 3-D line segment (the space-time trace of one motion leg).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Seg3 {
    p0: [f64; 3],
    p1: [f64; 3],
}

impl Seg3 {
    /// Liang–Barsky clipping in three dimensions.
    fn intersects(&self, b: &Box3) -> bool {
        let mut t_min = 0.0f64;
        let mut t_max = 1.0f64;
        for axis in 0..3 {
            let d = self.p1[axis] - self.p0[axis];
            if d == 0.0 {
                if self.p0[axis] < b.min[axis] || self.p0[axis] > b.max[axis] {
                    return false;
                }
            } else {
                let t1 = (b.min[axis] - self.p0[axis]) / d;
                let t2 = (b.max[axis] - self.p0[axis]) / d;
                let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
                t_min = t_min.max(lo);
                t_max = t_max.min(hi);
                if t_min > t_max {
                    return false;
                }
            }
        }
        true
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(u64, Seg3)>),
    Internal(Box<[Node; 8]>),
}

/// One motion leg of an indexed object.
#[derive(Debug, Clone, Copy)]
struct Leg {
    from: Tick,
    until: Tick,
    motion: MovingPoint,
}

impl Leg {
    fn seg(&self) -> Seg3 {
        let a = self.motion.position_at(self.from as f64);
        let b = self.motion.position_at(self.until as f64);
        Seg3 {
            p0: [self.from as f64, a.x, a.y],
            p1: [self.until as f64, b.x, b.y],
        }
    }
}

/// Octree index over moving points in the plane.
#[derive(Debug, Clone)]
pub struct MovingObjectIndex2D {
    bounds: Box3,
    root: Node,
    objects: HashMap<u64, Vec<Leg>>,
    lifetime: Tick,
}

impl MovingObjectIndex2D {
    /// Creates an index over `[0, lifetime]` ticks and the given spatial
    /// extent.
    pub fn new(lifetime: Tick, space: Rect) -> Self {
        MovingObjectIndex2D {
            bounds: Box3 {
                min: [0.0, space.min_x, space.min_y],
                max: [lifetime as f64, space.max_x, space.max_y],
            },
            root: Node::Leaf(Vec::new()),
            objects: HashMap::new(),
            lifetime,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The index lifetime `T`.
    pub fn lifetime(&self) -> Tick {
        self.lifetime
    }

    /// Inserts an object at tick `at` with position `p` and motion vector
    /// `v`.
    ///
    /// # Panics
    /// Panics when the id is already present.
    pub fn insert(&mut self, id: u64, at: Tick, p: Point, v: Velocity) {
        assert!(!self.objects.contains_key(&id), "object #{id} already indexed");
        let leg = Leg {
            from: at,
            until: self.lifetime,
            motion: MovingPoint::new(p, at, v),
        };
        self.insert_seg(id, leg.seg());
        self.objects.insert(id, vec![leg]);
    }

    /// Motion-vector update at tick `t` (position explicitly supplied, as
    /// sensors report both).
    pub fn update(&mut self, id: u64, t: Tick, p: Point, v: Velocity) {
        let legs = self.objects.get_mut(&id).expect("object must be indexed");
        let last = legs.last_mut().expect("non-empty legs");
        assert!(t >= last.from, "updates must move forward in time");
        let old_seg = last.seg();
        remove_rec(&mut self.root, self.bounds, id, old_seg);
        if t > last.from {
            last.until = t - 1;
            let prefix = last.seg();
            let new_leg = Leg { from: t, until: self.lifetime, motion: MovingPoint::new(p, t, v) };
            let new_seg = new_leg.seg();
            legs.push(new_leg);
            insert_rec(&mut self.root, self.bounds, id, prefix, 0);
            insert_rec(&mut self.root, self.bounds, id, new_seg, 0);
        } else {
            *last = Leg { from: t, until: self.lifetime, motion: MovingPoint::new(p, t, v) };
            let seg = last.seg();
            insert_rec(&mut self.root, self.bounds, id, seg, 0);
        }
    }

    fn insert_seg(&mut self, id: u64, seg: Seg3) {
        insert_rec(&mut self.root, self.bounds, id, seg, 0);
    }

    /// Removes an object and every segment of its motion history; returns
    /// whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(legs) = self.objects.remove(&id) else {
            return false;
        };
        for leg in legs {
            remove_rec(&mut self.root, self.bounds, id, leg.seg());
        }
        true
    }

    /// Objects inside `region` at tick `t` ("Retrieve the objects that are
    /// currently in the polygon P", with rectangles standing in for
    /// regions), plus access stats.
    pub fn query_at(&self, t: Tick, region: &Rect) -> (Vec<u64>, QueryStats) {
        let probe = Box3 {
            min: [t as f64 - 0.5, region.min_x, region.min_y],
            max: [t as f64 + 0.5, region.max_x, region.max_y],
        };
        let (candidates, nodes_visited) = self.query_box(&probe);
        let mut stats = QueryStats {
            nodes_visited,
            candidates: candidates.len() as u64,
            results: 0,
        };
        let out: Vec<u64> = candidates
            .into_iter()
            .filter(|&id| {
                self.position_of(id, t)
                    .is_some_and(|p| region.contains(p))
            })
            .collect();
        stats.results = out.len() as u64;
        (out, stats)
    }

    /// Continuous variant: objects entering `region` during `[from, to]`,
    /// with the tick intervals they spend inside.
    pub fn query_window(
        &self,
        from: Tick,
        to: Tick,
        region: &Rect,
    ) -> (Vec<(u64, IntervalSet)>, QueryStats) {
        let probe = Box3 {
            min: [from as f64, region.min_x, region.min_y],
            max: [to as f64, region.max_x, region.max_y],
        };
        let (candidates, nodes_visited) = self.query_box(&probe);
        let mut stats = QueryStats {
            nodes_visited,
            candidates: candidates.len() as u64,
            results: 0,
        };
        let h = Horizon::new(self.lifetime);
        let window = IntervalSet::singleton(Interval::new(from, to.min(self.lifetime)));
        let mut out = Vec::new();
        for id in candidates {
            let Some(legs) = self.objects.get(&id) else { continue };
            let mut acc = IntervalSet::empty();
            for leg in legs {
                let span = IntervalSet::singleton(Interval::new(leg.from, leg.until));
                acc = acc.union(
                    &inside_rect(leg.motion, *region, h)
                        .intersect(&span)
                        .intersect(&window),
                );
            }
            if !acc.is_empty() {
                out.push((id, acc));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        stats.results = out.len() as u64;
        (out, stats)
    }

    /// Exact recorded position of an object at tick `t`.
    pub fn position_of(&self, id: u64, t: Tick) -> Option<Point> {
        let legs = self.objects.get(&id)?;
        let leg = legs
            .iter()
            .rev()
            .find(|l| l.from <= t)
            .or_else(|| legs.first())?;
        Some(leg.motion.position_at_tick(t))
    }

    fn query_box(&self, probe: &Box3) -> (Vec<u64>, u64) {
        let mut out = Vec::new();
        let mut visited = 0u64;
        query_rec(&self.root, self.bounds, probe, &mut out, &mut visited);
        out.sort_unstable();
        out.dedup();
        (out, visited)
    }
}

fn insert_rec(node: &mut Node, bounds: Box3, id: u64, seg: Seg3, depth: u32) {
    match node {
        Node::Leaf(items) => {
            items.push((id, seg));
            if items.len() > LEAF_CAPACITY && depth < MAX_DEPTH {
                let moved = std::mem::take(items);
                let mut kids: Box<[Node; 8]> = Box::new([
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                ]);
                let octs = bounds.octants();
                for (mid, mseg) in moved {
                    for (o, kid) in octs.iter().zip(kids.iter_mut()) {
                        if mseg.intersects(o) {
                            insert_rec(kid, *o, mid, mseg, depth + 1);
                        }
                    }
                }
                *node = Node::Internal(kids);
            }
        }
        Node::Internal(kids) => {
            for (o, kid) in bounds.octants().iter().zip(kids.iter_mut()) {
                if seg.intersects(o) {
                    insert_rec(kid, *o, id, seg, depth + 1);
                }
            }
        }
    }
}

fn remove_rec(node: &mut Node, bounds: Box3, id: u64, seg: Seg3) -> bool {
    match node {
        Node::Leaf(items) => {
            let before = items.len();
            items.retain(|(i, s)| !(*i == id && *s == seg));
            items.len() != before
        }
        Node::Internal(kids) => {
            let mut removed = false;
            for (o, kid) in bounds.octants().iter().zip(kids.iter_mut()) {
                if seg.intersects(o) {
                    removed |= remove_rec(kid, *o, id, seg);
                }
            }
            removed
        }
    }
}

fn query_rec(node: &Node, bounds: Box3, probe: &Box3, out: &mut Vec<u64>, visited: &mut u64) {
    *visited += 1;
    match node {
        Node::Leaf(items) => {
            for (id, seg) in items {
                if seg.intersects(probe) {
                    out.push(*id);
                }
            }
        }
        Node::Internal(kids) => {
            for (o, kid) in bounds.octants().iter().zip(kids.iter()) {
                if o.intersects(probe) {
                    query_rec(kid, *o, probe, out, visited);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Rect {
        Rect::new(-500.0, -500.0, 500.0, 500.0)
    }

    #[test]
    fn query_at_finds_moving_objects() {
        let mut idx = MovingObjectIndex2D::new(1000, space());
        idx.insert(1, 0, Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        idx.insert(2, 0, Point::new(0.0, 100.0), Velocity::zero());
        let region = Rect::new(40.0, -10.0, 60.0, 10.0);
        let (ids, _) = idx.query_at(50, &region);
        assert_eq!(ids, vec![1]);
        let (ids, _) = idx.query_at(0, &region);
        assert!(ids.is_empty());
        let (ids, _) = idx.query_at(50, &Rect::new(-10.0, 90.0, 10.0, 110.0));
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn query_window_returns_intervals() {
        let mut idx = MovingObjectIndex2D::new(1000, space());
        idx.insert(1, 0, Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let region = Rect::new(40.0, -10.0, 60.0, 10.0);
        let (rows, _) = idx.query_window(0, 1000, &region);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.first_tick(), Some(40));
        assert_eq!(rows[0].1.last_tick(), Some(60));
        // A window that misses the crossing.
        let (rows, _) = idx.query_window(70, 100, &region);
        assert!(rows.is_empty());
    }

    #[test]
    fn update_changes_course() {
        let mut idx = MovingObjectIndex2D::new(1000, space());
        idx.insert(1, 0, Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        // At t=30 turn north.
        idx.update(1, 30, Point::new(30.0, 0.0), Velocity::new(0.0, 1.0));
        let east = Rect::new(45.0, -5.0, 55.0, 5.0);
        let (ids, _) = idx.query_at(50, &east);
        assert!(ids.is_empty(), "old course should be un-indexed");
        let north = Rect::new(25.0, 15.0, 35.0, 25.0);
        let (ids, _) = idx.query_at(50, &north);
        assert_eq!(ids, vec![1]);
        // The historical prefix is still queryable.
        let (ids, _) = idx.query_at(10, &Rect::new(5.0, -5.0, 15.0, 5.0));
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn index_matches_brute_force_on_many_objects() {
        let mut idx = MovingObjectIndex2D::new(500, space());
        let mut objs = Vec::new();
        for i in 0..200u64 {
            let p = Point::new((i % 20) as f64 * 40.0 - 400.0, (i / 20) as f64 * 40.0 - 200.0);
            let v = Velocity::new(((i % 5) as f64 - 2.0) * 0.3, ((i % 3) as f64 - 1.0) * 0.3);
            idx.insert(i, 0, p, v);
            objs.push(MovingPoint::from_origin(p, v));
        }
        let region = Rect::new(-50.0, -50.0, 50.0, 50.0);
        for t in [0u64, 100, 250, 499] {
            let (got, stats) = idx.query_at(t, &region);
            let want: Vec<u64> = objs
                .iter()
                .enumerate()
                .filter(|(_, m)| region.contains(m.position_at_tick(t)))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(got, want, "t = {t}");
            assert!(stats.nodes_visited > 0);
        }
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut idx = MovingObjectIndex2D::new(100, space());
        idx.insert(1, 0, Point::origin(), Velocity::zero());
        idx.insert(1, 0, Point::origin(), Velocity::zero());
    }
}
