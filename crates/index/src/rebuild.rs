//! Periodic reconstruction of the dynamic-attribute index.
//!
//! "Observe that spatial indexing is limited to finite space.  Thus, in
//! order to use this scheme we have to consider the time dimension starting
//! at 0 and ending at some time-point T.  Consequently, the index needs to
//! be reconstructed every T time units.  Choosing an appropriate value for
//! T is an important future-research question."  Experiment E8 sweeps `T`;
//! this wrapper provides the mechanism and the cost counters.

use crate::dynidx::{DynamicAttributeIndex, IndexKind, QueryStats};
use most_temporal::{IntervalSet, Tick};

/// A [`DynamicAttributeIndex`] that transparently reconstructs itself every
/// `period` ticks, rebasing global ticks onto the current epoch.
#[derive(Debug, Clone)]
pub struct RebuildingIndex {
    inner: DynamicAttributeIndex,
    kind: IndexKind,
    period: Tick,
    epoch: Tick,
    value_range: (f64, f64),
    /// Number of reconstructions performed.
    pub rebuilds: u64,
    /// Objects re-inserted across all reconstructions (rebuild work).
    pub reinserted: u64,
}

impl RebuildingIndex {
    /// Creates an index with reconstruction period `period`.
    pub fn new(kind: IndexKind, period: Tick, value_range: (f64, f64)) -> Self {
        RebuildingIndex {
            inner: DynamicAttributeIndex::new(kind, period, value_range),
            kind,
            period,
            epoch: 0,
            value_range,
            rebuilds: 0,
            reinserted: 0,
        }
    }

    /// The reconstruction period `T`.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// The current epoch start (global tick of local time 0).
    pub fn epoch(&self) -> Tick {
        self.epoch
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn local(&self, t: Tick) -> Tick {
        debug_assert!(t >= self.epoch);
        t - self.epoch
    }

    /// Rolls the epoch forward until `t` falls inside the current lifetime.
    fn advance_to(&mut self, t: Tick) {
        while self.local(t) > self.period {
            let new_epoch = self.epoch + self.period;
            let states = self.inner.current_states(self.period);
            let mut fresh =
                DynamicAttributeIndex::new(self.kind, self.period, self.value_range);
            for (id, value, slope) in states {
                fresh.insert(id, 0, value, slope);
                self.reinserted += 1;
            }
            self.inner = fresh;
            self.epoch = new_epoch;
            self.rebuilds += 1;
        }
    }

    /// Inserts an object at global tick `t`.
    pub fn insert(&mut self, id: u64, t: Tick, value: f64, slope: f64) {
        self.advance_to(t);
        self.inner.insert(id, self.local(t), value, slope);
    }

    /// Updates an object at global tick `t`.
    pub fn update(&mut self, id: u64, t: Tick, value: f64, slope: f64) {
        self.advance_to(t);
        self.inner.update(id, self.local(t), value, slope);
    }

    /// Instantaneous range query at global tick `t`.
    pub fn instantaneous(&mut self, t: Tick, lo: f64, hi: f64) -> (Vec<u64>, QueryStats) {
        self.advance_to(t);
        self.inner.instantaneous(self.local(t), lo, hi)
    }

    /// Continuous range query from global tick `t`; returned intervals are
    /// in global ticks and extend at most to the end of the current epoch
    /// (the index cannot see past its own lifetime — re-running after the
    /// next reconstruction extends the answer, which is exactly the T
    /// trade-off E8 measures).
    pub fn continuous(
        &mut self,
        t: Tick,
        lo: f64,
        hi: f64,
    ) -> (Vec<(u64, IntervalSet)>, QueryStats) {
        self.advance_to(t);
        let epoch = self.epoch;
        let (rows, stats) = self.inner.continuous(self.local(t), lo, hi);
        let shifted = rows
            .into_iter()
            .map(|(id, set)| {
                let global = IntervalSet::from_intervals(
                    set.intervals()
                        .iter()
                        .map(|iv| iv.shift_up(epoch)),
                );
                (id, global)
            })
            .collect();
        (shifted, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_work_across_epochs() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0); // value = global t
        // Inside the first epoch.
        let (ids, _) = idx.instantaneous(50, 45.0, 55.0);
        assert_eq!(ids, vec![1]);
        assert_eq!(idx.rebuilds, 0);
        // Far into the future: epochs roll, state carries over.
        let (ids, _) = idx.instantaneous(350, 345.0, 355.0);
        assert_eq!(ids, vec![1]);
        assert!(idx.rebuilds >= 2, "rebuilds = {}", idx.rebuilds);
        assert!(idx.reinserted >= 2);
    }

    #[test]
    fn update_after_rollover() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0);
        idx.update(1, 250, 0.0, -1.0); // rolls epochs, then redirects
        let (ids, _) = idx.instantaneous(260, -15.0, -5.0);
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn continuous_clipped_to_epoch() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0);
        let (rows, _) = idx.continuous(150, 0.0, 10_000.0);
        assert_eq!(rows.len(), 1);
        let set = &rows[0].1;
        // Global ticks within the second epoch [100, 200].
        assert_eq!(set.first_tick(), Some(150));
        assert_eq!(set.last_tick(), Some(200));
    }

    #[test]
    fn smaller_period_means_more_rebuilds() {
        let mut small = RebuildingIndex::new(IndexKind::QuadTree, 50, (-1e6, 1e6));
        let mut large = RebuildingIndex::new(IndexKind::QuadTree, 500, (-1e6, 1e6));
        for idx in [&mut small, &mut large] {
            for i in 0..20 {
                idx.insert(i, 0, i as f64, 0.5);
            }
            idx.instantaneous(1000, 0.0, 100.0);
        }
        assert!(small.rebuilds > large.rebuilds);
        assert!(small.reinserted > large.reinserted);
    }
}
