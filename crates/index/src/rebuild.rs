//! Periodic reconstruction of the dynamic-attribute index.
//!
//! "Observe that spatial indexing is limited to finite space.  Thus, in
//! order to use this scheme we have to consider the time dimension starting
//! at 0 and ending at some time-point T.  Consequently, the index needs to
//! be reconstructed every T time units.  Choosing an appropriate value for
//! T is an important future-research question."  Experiment E8 sweeps `T`;
//! this wrapper provides the mechanism and the cost counters.
//!
//! Queries are not required to arrive in tick order: a query whose tick
//! falls *before* the current epoch (it straddles the latest
//! reconstruction boundary) is answered from the retired pre-rebuild
//! index, which is kept one epoch deep.  Rebasing such a tick into the
//! new epoch — what a naive `t - epoch` does — would either wrap (and
//! previously did, looping in release builds and tripping a debug
//! assertion otherwise) or silently truncate the pre-rebuild portion of
//! a continuous answer.

use crate::dynidx::{DynamicAttributeIndex, IndexKind, QueryStats};
use most_temporal::{IntervalSet, Tick};

/// A [`DynamicAttributeIndex`] that transparently reconstructs itself every
/// `period` ticks, rebasing global ticks onto the current epoch.
#[derive(Debug, Clone)]
pub struct RebuildingIndex {
    inner: DynamicAttributeIndex,
    kind: IndexKind,
    period: Tick,
    epoch: Tick,
    value_range: (f64, f64),
    /// The retired index of the previous epoch and its epoch start, kept
    /// one deep so queries straddling the latest reconstruction boundary
    /// are answered from pre-rebuild state instead of being mis-rebased.
    prev: Option<(Tick, DynamicAttributeIndex)>,
    /// Number of reconstructions performed.
    pub rebuilds: u64,
    /// Objects re-inserted across all reconstructions (rebuild work).
    pub reinserted: u64,
}

impl RebuildingIndex {
    /// Creates an index with reconstruction period `period`.
    pub fn new(kind: IndexKind, period: Tick, value_range: (f64, f64)) -> Self {
        RebuildingIndex {
            inner: DynamicAttributeIndex::new(kind, period, value_range),
            kind,
            period,
            epoch: 0,
            value_range,
            prev: None,
            rebuilds: 0,
            reinserted: 0,
        }
    }

    /// The reconstruction period `T`.
    pub fn period(&self) -> Tick {
        self.period
    }

    /// The current epoch start (global tick of local time 0).
    pub fn epoch(&self) -> Tick {
        self.epoch
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Rolls the epoch forward until `t` falls inside the current lifetime;
    /// a `t` at or before the current epoch's end is a no-op.
    fn advance_to(&mut self, t: Tick) {
        while t.saturating_sub(self.epoch) > self.period {
            let new_epoch = self.epoch + self.period;
            let states = self.inner.current_states(self.period);
            let mut fresh =
                DynamicAttributeIndex::new(self.kind, self.period, self.value_range);
            most_obs::add("index.reinserted", states.len() as u64);
            for (id, value, slope) in states {
                fresh.insert(id, 0, value, slope);
                self.reinserted += 1;
            }
            self.prev = Some((self.epoch, std::mem::replace(&mut self.inner, fresh)));
            self.epoch = new_epoch;
            self.rebuilds += 1;
            most_obs::inc("index.rebuilds");
        }
    }

    /// Rolls the reconstruction forward so that global tick `t` falls
    /// inside the current lifetime — the **epoch-boundary maintenance
    /// hook**.  Callers that version the database into explicit epochs
    /// (the `most-core` epoch engine) invoke this at publish time, on the
    /// writer's private copy, so queries against published snapshots
    /// never pay a rebuild; queries straddling the boundary are still
    /// answered from the retained one-epoch `prev` history.  Returns the
    /// number of reconstructions performed.
    pub fn roll_to(&mut self, t: Tick) -> u64 {
        let before = self.rebuilds;
        self.advance_to(t);
        self.rebuilds - before
    }

    /// The epoch start of the retained pre-rebuild index, if a
    /// reconstruction has happened (history is one epoch deep).
    pub fn prev_epoch(&self) -> Option<Tick> {
        self.prev.as_ref().map(|(pe, _)| *pe)
    }

    /// Inserts an object at global tick `t`.
    ///
    /// A straggler insert older than the current epoch is applied at the
    /// epoch start: the rebuilt index has no pre-rebuild write path.
    pub fn insert(&mut self, id: u64, t: Tick, value: f64, slope: f64) {
        self.advance_to(t);
        self.inner
            .insert(id, t.saturating_sub(self.epoch), value, slope);
    }

    /// Updates an object at global tick `t` (stragglers clamp like
    /// [`RebuildingIndex::insert`]).
    pub fn update(&mut self, id: u64, t: Tick, value: f64, slope: f64) {
        self.advance_to(t);
        self.inner
            .update(id, t.saturating_sub(self.epoch), value, slope);
    }

    /// Instantaneous range query at global tick `t`.
    ///
    /// A `t` before the current epoch is answered from the retired
    /// pre-rebuild index; history is one epoch deep, so a tick older than
    /// the previous epoch clamps to that epoch's start (best effort).
    pub fn instantaneous(&mut self, t: Tick, lo: f64, hi: f64) -> (Vec<u64>, QueryStats) {
        self.advance_to(t);
        if t < self.epoch {
            if let Some((pe, prev)) = &self.prev {
                return prev.instantaneous(t.saturating_sub(*pe), lo, hi);
            }
        }
        self.inner.instantaneous(t - self.epoch, lo, hi)
    }

    /// Continuous range query from global tick `t`; returned intervals are
    /// in global ticks and extend at most to the end of the current epoch
    /// (the index cannot see past its own lifetime — re-running after the
    /// next reconstruction extends the answer, which is exactly the T
    /// trade-off E8 measures).
    ///
    /// A `t` before the current epoch straddles the reconstruction
    /// boundary: the pre-boundary portion is answered from the retired
    /// index and unioned with the current epoch's full answer, so nothing
    /// is truncated at the boundary.
    pub fn continuous(
        &mut self,
        t: Tick,
        lo: f64,
        hi: f64,
    ) -> (Vec<(u64, IntervalSet)>, QueryStats) {
        self.advance_to(t);
        let epoch = self.epoch;
        if t < epoch {
            if let Some((pe, prev)) = self.prev.clone() {
                let (past_rows, past_stats) = prev.continuous(t.saturating_sub(pe), lo, hi);
                let (cur_rows, cur_stats) = self.inner.continuous(0, lo, hi);
                let mut merged: std::collections::BTreeMap<u64, IntervalSet> =
                    std::collections::BTreeMap::new();
                for (id, set) in past_rows {
                    merged.insert(id, shift_set(&set, pe));
                }
                for (id, set) in cur_rows {
                    let global = shift_set(&set, epoch);
                    merged
                        .entry(id)
                        .and_modify(|s| *s = s.union(&global))
                        .or_insert(global);
                }
                let stats = QueryStats {
                    nodes_visited: past_stats.nodes_visited + cur_stats.nodes_visited,
                    candidates: past_stats.candidates + cur_stats.candidates,
                    results: merged.len() as u64,
                };
                return (merged.into_iter().collect(), stats);
            }
        }
        let (rows, stats) = self.inner.continuous(t - epoch, lo, hi);
        let shifted = rows
            .into_iter()
            .map(|(id, set)| (id, shift_set(&set, epoch)))
            .collect();
        (shifted, stats)
    }
}

/// Shifts a local-tick interval set up into global ticks.
fn shift_set(set: &IntervalSet, delta: Tick) -> IntervalSet {
    IntervalSet::from_intervals(set.intervals().iter().map(|iv| iv.shift_up(delta)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynidx::ScanIndex;

    #[test]
    fn queries_work_across_epochs() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0); // value = global t
        // Inside the first epoch.
        let (ids, _) = idx.instantaneous(50, 45.0, 55.0);
        assert_eq!(ids, vec![1]);
        assert_eq!(idx.rebuilds, 0);
        // Far into the future: epochs roll, state carries over.
        let (ids, _) = idx.instantaneous(350, 345.0, 355.0);
        assert_eq!(ids, vec![1]);
        assert!(idx.rebuilds >= 2, "rebuilds = {}", idx.rebuilds);
        assert!(idx.reinserted >= 2);
    }

    #[test]
    fn update_after_rollover() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0);
        idx.update(1, 250, 0.0, -1.0); // rolls epochs, then redirects
        let (ids, _) = idx.instantaneous(260, -15.0, -5.0);
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn continuous_clipped_to_epoch() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0);
        let (rows, _) = idx.continuous(150, 0.0, 10_000.0);
        assert_eq!(rows.len(), 1);
        let set = &rows[0].1;
        // Global ticks within the second epoch [100, 200].
        assert_eq!(set.first_tick(), Some(150));
        assert_eq!(set.last_tick(), Some(200));
    }

    #[test]
    fn smaller_period_means_more_rebuilds() {
        let mut small = RebuildingIndex::new(IndexKind::QuadTree, 50, (-1e6, 1e6));
        let mut large = RebuildingIndex::new(IndexKind::QuadTree, 500, (-1e6, 1e6));
        for idx in [&mut small, &mut large] {
            for i in 0..20 {
                idx.insert(i, 0, i as f64, 0.5);
            }
            idx.instantaneous(1000, 0.0, 100.0);
        }
        assert!(small.rebuilds > large.rebuilds);
        assert!(small.reinserted > large.reinserted);
    }

    /// Regression (pre-fix: debug assertion failure / wrapping rebase): an
    /// instantaneous query whose tick falls before the current epoch must
    /// be answered from pre-rebuild state and agree with the scan oracle.
    #[test]
    fn instantaneous_query_before_current_epoch_matches_scan_oracle() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        let mut oracle = ScanIndex::new();
        for (id, v0, slope) in [(1u64, 0.0, 1.0), (2, 100.0, -0.5), (3, 500.0, 0.0)] {
            idx.insert(id, 0, v0, slope);
            oracle.upsert(id, 0, v0, slope);
        }
        // Roll the epoch forward (epoch becomes 300), then query at a tick
        // inside the *previous* epoch [200, 300].
        idx.instantaneous(350, -1e4, 1e4);
        assert!(idx.epoch() > 250, "epoch must have rolled past the query tick");
        for (lo, hi) in [(240.0, 260.0), (-50.0, 0.0), (400.0, 600.0), (-1e4, 1e4)] {
            let (got, _) = idx.instantaneous(250, lo, hi);
            let (want, _) = oracle.instantaneous(250, lo, hi);
            assert_eq!(got, want, "straddling query [{lo}, {hi}] at t=250");
        }
    }

    /// Regression (pre-fix: panic / truncation): a continuous query from a
    /// tick before the current epoch must cover both sides of the
    /// reconstruction boundary — `[t, epoch + period]`, not just one epoch.
    #[test]
    fn continuous_query_straddles_reconstruction_boundary() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0); // value = global t, always in range
        idx.instantaneous(350, -1e4, 1e4); // rolls the epoch to 300
        assert_eq!(idx.epoch(), 300);
        let (rows, _) = idx.continuous(250, 0.0, 10_000.0);
        assert_eq!(rows.len(), 1);
        let set = &rows[0].1;
        // Pre-boundary portion [250, 300] and current epoch [300, 400],
        // unioned into one seamless global answer.
        assert_eq!(set.first_tick(), Some(250), "pre-rebuild portion truncated");
        assert_eq!(set.last_tick(), Some(400));
        assert_eq!(set.span_count(), 1, "answer must be seamless across the boundary");

        // Oracle: the same trajectory in a single long-lifetime index.
        let mut plain = DynamicAttributeIndex::new(IndexKind::QuadTree, 1_000, (-1e4, 1e4));
        plain.insert(1, 0, 0.0, 1.0);
        let (oracle_rows, _) = plain.continuous(250, 0.0, 10_000.0);
        let clipped = IntervalSet::from_intervals(
            oracle_rows[0]
                .1
                .intervals()
                .iter()
                .filter_map(|iv| iv.intersect(most_temporal::Interval::new(250, 400))),
        );
        assert_eq!(set, &clipped, "straddling answer must match the unrebuilt oracle");
    }

    /// Epoch-boundary maintenance: rolling ahead of queries means the
    /// query path itself performs zero rebuilds, and a query straddling
    /// the rolled boundary is still answered from the `prev` history.
    #[test]
    fn roll_to_moves_rebuild_cost_off_the_query_path() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0);
        // The epoch boundary (writer side) rolls the index forward...
        assert_eq!(idx.roll_to(350), 3);
        assert_eq!(idx.epoch(), 300);
        assert_eq!(idx.prev_epoch(), Some(200));
        // ...so queries at the published tick trigger no further rebuild.
        let before = idx.rebuilds;
        let (ids, _) = idx.instantaneous(350, 345.0, 355.0);
        assert_eq!(ids, vec![1]);
        let (rows, _) = idx.continuous(250, 0.0, 10_000.0);
        assert_eq!(rows[0].1.first_tick(), Some(250), "prev history lost by roll_to");
        assert_eq!(idx.rebuilds, before, "query path paid a rebuild");
        // Rolling within the current lifetime is a no-op.
        assert_eq!(idx.roll_to(360), 0);
    }

    /// A tick older than the one-epoch history clamps to the retained
    /// pre-rebuild state instead of panicking.
    #[test]
    fn query_older_than_history_is_best_effort_not_a_panic() {
        let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 100, (-10_000.0, 10_000.0));
        idx.insert(1, 0, 0.0, 1.0);
        idx.instantaneous(350, -1e4, 1e4); // epoch 300, history covers [200, 300]
        // t=50 predates the retained epoch: answered at its start (t=200).
        let (got, _) = idx.instantaneous(50, 150.0, 250.0);
        assert_eq!(got, vec![1]);
        // Straggler updates clamp to the current epoch start.
        idx.update(1, 120, 0.0, 0.0);
        let (ids, _) = idx.instantaneous(320, -1.0, 1.0);
        assert_eq!(ids, vec![1]);
    }
}
