//! A region quadtree over (time × value) space storing function-line
//! segments.
//!
//! "Spatial indexes use a hierarchical recursive decomposition of space,
//! usually into rectangles; the id of each object o is stored in the
//! records of \[sic\] representing the rectangles crossed by the A.function
//! of o" — a leaf node here is such a record: it stores the ids of all
//! segments crossing its rectangle.

use crate::segment::Segment;
use most_spatial::Rect;

/// Leaf capacity before splitting.
const LEAF_CAPACITY: usize = 16;
/// Maximum tree depth (bounds worst-case degradation when many segments
/// cross one region).
const MAX_DEPTH: u32 = 8;

/// A region quadtree mapping rectangle queries to segment ids.
#[derive(Debug, Clone)]
pub struct QuadTree {
    bounds: Rect,
    root: Node,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(u64, Segment)>),
    Internal(Box<[Node; 4]>),
}

impl QuadTree {
    /// Creates an empty tree over the given bounds.
    pub fn new(bounds: Rect) -> Self {
        QuadTree { bounds, root: Node::Leaf(Vec::new()), len: 0 }
    }

    /// The indexed space.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of stored segments (an object may contribute several).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no segments.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a segment under an id.  Segments outside the bounds are
    /// clipped implicitly (they are stored in the cells they cross; a
    /// segment entirely outside is still counted but lands nowhere).
    pub fn insert(&mut self, id: u64, seg: Segment) {
        insert_rec(&mut self.root, self.bounds, id, seg, 0);
        self.len += 1;
    }

    /// Removes a segment by exact (id, segment) match; returns whether
    /// anything was removed.
    pub fn remove(&mut self, id: u64, seg: Segment) -> bool {
        let removed = remove_rec(&mut self.root, self.bounds, id, seg);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Candidate ids whose segments cross the query rectangle, deduplicated
    /// and exact (each candidate's segment is re-tested against the query
    /// rectangle), plus the number of tree nodes visited.
    pub fn query(&self, rect: &Rect) -> (Vec<u64>, u64) {
        let mut out: Vec<u64> = Vec::new();
        let mut visited = 0u64;
        query_rec(&self.root, self.bounds, rect, &mut out, &mut visited);
        out.sort_unstable();
        out.dedup();
        (out, visited)
    }

    /// Maximum depth actually reached (diagnostics).
    pub fn depth(&self) -> u32 {
        fn rec(n: &Node) -> u32 {
            match n {
                Node::Leaf(_) => 0,
                Node::Internal(kids) => 1 + kids.iter().map(rec).max().unwrap_or(0),
            }
        }
        rec(&self.root)
    }
}

fn insert_rec(node: &mut Node, bounds: Rect, id: u64, seg: Segment, depth: u32) {
    match node {
        Node::Leaf(items) => {
            items.push((id, seg));
            if items.len() > LEAF_CAPACITY && depth < MAX_DEPTH {
                let moved = std::mem::take(items);
                let mut kids = Box::new([
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                    Node::Leaf(Vec::new()),
                ]);
                let quads = bounds.quadrants();
                for (mid, mseg) in moved {
                    for (q, kid) in quads.iter().zip(kids.iter_mut()) {
                        if mseg.intersects_rect(q) {
                            insert_rec(kid, *q, mid, mseg, depth + 1);
                        }
                    }
                }
                *node = Node::Internal(kids);
            }
        }
        Node::Internal(kids) => {
            for (q, kid) in bounds.quadrants().iter().zip(kids.iter_mut()) {
                if seg.intersects_rect(q) {
                    insert_rec(kid, *q, id, seg, depth + 1);
                }
            }
        }
    }
}

fn remove_rec(node: &mut Node, bounds: Rect, id: u64, seg: Segment) -> bool {
    match node {
        Node::Leaf(items) => {
            let before = items.len();
            items.retain(|(i, s)| !(*i == id && *s == seg));
            items.len() != before
        }
        Node::Internal(kids) => {
            let mut removed = false;
            for (q, kid) in bounds.quadrants().iter().zip(kids.iter_mut()) {
                if seg.intersects_rect(q) {
                    removed |= remove_rec(kid, *q, id, seg);
                }
            }
            removed
        }
    }
}

fn query_rec(node: &Node, bounds: Rect, rect: &Rect, out: &mut Vec<u64>, visited: &mut u64) {
    *visited += 1;
    match node {
        Node::Leaf(items) => {
            for (id, seg) in items {
                if seg.intersects_rect(rect) {
                    out.push(*id);
                }
            }
        }
        Node::Internal(kids) => {
            for (q, kid) in bounds.quadrants().iter().zip(kids.iter()) {
                if q.intersects(rect) {
                    query_rec(kid, *q, rect, out, visited);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Rect {
        Rect::new(0.0, -100.0, 100.0, 100.0)
    }

    #[test]
    fn insert_query_roundtrip() {
        let mut t = QuadTree::new(space());
        // Object 1 rises from 0; object 2 stays flat at 50.
        t.insert(1, Segment::from_function(0.0, 0.0, 1.0, 100.0));
        t.insert(2, Segment::from_function(0.0, 50.0, 0.0, 100.0));
        assert_eq!(t.len(), 2);
        // Around t=10, values 5..15: only object 1 (value 10).
        let (ids, _) = t.query(&Rect::new(9.0, 5.0, 11.0, 15.0));
        assert_eq!(ids, vec![1]);
        // Around t=10, values 45..55: only object 2.
        let (ids, _) = t.query(&Rect::new(9.0, 45.0, 11.0, 55.0));
        assert_eq!(ids, vec![2]);
        // Around t=50 both lines pass through 45..55.
        let (ids, _) = t.query(&Rect::new(49.0, 45.0, 51.0, 55.0));
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn split_and_dedup() {
        let mut t = QuadTree::new(space());
        for i in 0..50 {
            t.insert(i, Segment::from_function(0.0, i as f64, 0.5, 100.0));
        }
        assert!(t.depth() > 0, "tree should have split");
        // A tall query touching all lines returns each id once.
        let (ids, visited) = t.query(&Rect::new(0.0, -100.0, 100.0, 100.0));
        assert_eq!(ids.len(), 50);
        assert!(visited > 1);
    }

    #[test]
    fn remove_segments() {
        let mut t = QuadTree::new(space());
        let s = Segment::from_function(0.0, 10.0, 0.0, 100.0);
        t.insert(7, s);
        assert!(t.remove(7, s));
        assert!(!t.remove(7, s));
        assert_eq!(t.len(), 0);
        let (ids, _) = t.query(&Rect::new(0.0, 0.0, 100.0, 20.0));
        assert!(ids.is_empty());
    }

    #[test]
    fn query_misses_far_regions() {
        let mut t = QuadTree::new(space());
        t.insert(1, Segment::from_function(0.0, -90.0, 0.0, 100.0));
        let (ids, _) = t.query(&Rect::new(0.0, 80.0, 100.0, 100.0));
        assert!(ids.is_empty());
    }

    #[test]
    fn deep_duplication_does_not_duplicate_results() {
        let mut t = QuadTree::new(space());
        // Many overlapping steep lines force deep splits and multi-cell
        // storage.
        for i in 0..30 {
            t.insert(
                i,
                Segment::from_function(0.0, -50.0 + i as f64 * 0.1, 1.5, 100.0),
            );
        }
        let (ids, _) = t.query(&Rect::new(20.0, -40.0, 40.0, 40.0));
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }
}
