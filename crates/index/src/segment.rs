//! Function-lines as 2-D segments in (time × value) space.

use most_spatial::Rect;

/// A line segment from `(x0, y0)` to `(x1, y1)` with `x0 <= x1`
/// (time flows left to right).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start abscissa (time).
    pub x0: f64,
    /// Start ordinate (attribute value).
    pub y0: f64,
    /// End abscissa.
    pub x1: f64,
    /// End ordinate.
    pub y1: f64,
}

impl Segment {
    /// Creates a segment; panics if `x0 > x1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x0 <= x1, "segment must run forward in time ({x0} > {x1})");
        Segment { x0, y0, x1, y1 }
    }

    /// The function-line of a linear dynamic attribute: value `v0` at time
    /// `t0`, slope `slope`, over `[t0, t1]`.
    pub fn from_function(t0: f64, v0: f64, slope: f64, t1: f64) -> Self {
        Segment::new(t0, v0, t1, v0 + slope * (t1 - t0))
    }

    /// The attribute value at time `x` (extrapolates outside the range).
    pub fn value_at(&self, x: f64) -> f64 {
        if self.x1 == self.x0 {
            return self.y0;
        }
        self.y0 + (self.y1 - self.y0) * (x - self.x0) / (self.x1 - self.x0)
    }

    /// Slope of the segment.
    pub fn slope(&self) -> f64 {
        if self.x1 == self.x0 {
            0.0
        } else {
            (self.y1 - self.y0) / (self.x1 - self.x0)
        }
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        Rect::new(self.x0, self.y0.min(self.y1), self.x1, self.y0.max(self.y1))
    }

    /// Whether the segment intersects (touches) the rectangle —
    /// Liang–Barsky parametric clipping.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        let dx = self.x1 - self.x0;
        let dy = self.y1 - self.y0;
        let mut t_min = 0.0f64;
        let mut t_max = 1.0f64;
        for (p, q) in [
            (-dx, self.x0 - r.min_x),
            (dx, r.max_x - self.x0),
            (-dy, self.y0 - r.min_y),
            (dy, r.max_y - self.y0),
        ] {
            if p == 0.0 {
                if q < 0.0 {
                    return false;
                }
            } else {
                let t = q / p;
                if p < 0.0 {
                    t_min = t_min.max(t);
                } else {
                    t_max = t_max.min(t);
                }
                if t_min > t_max {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_function_endpoints() {
        let s = Segment::from_function(0.0, 10.0, 2.0, 5.0);
        assert_eq!(s.y0, 10.0);
        assert_eq!(s.y1, 20.0);
        assert_eq!(s.value_at(2.5), 15.0);
        assert_eq!(s.slope(), 2.0);
    }

    #[test]
    #[should_panic]
    fn backwards_segment_panics() {
        let _ = Segment::new(5.0, 0.0, 3.0, 0.0);
    }

    #[test]
    fn bounding_box_handles_descending() {
        let s = Segment::new(0.0, 10.0, 4.0, 2.0);
        let bb = s.bounding_box();
        assert_eq!((bb.min_x, bb.min_y, bb.max_x, bb.max_y), (0.0, 2.0, 4.0, 10.0));
    }

    #[test]
    fn rect_intersection_cases() {
        let s = Segment::new(0.0, 0.0, 10.0, 10.0); // diagonal
        assert!(s.intersects_rect(&Rect::new(4.0, 4.0, 6.0, 6.0))); // crosses
        assert!(s.intersects_rect(&Rect::new(0.0, 0.0, 1.0, 1.0))); // endpoint
        assert!(!s.intersects_rect(&Rect::new(0.0, 5.0, 2.0, 9.0))); // above line
        assert!(!s.intersects_rect(&Rect::new(6.0, 0.0, 9.0, 3.0))); // below line
        assert!(s.intersects_rect(&Rect::new(5.0, 5.0, 20.0, 20.0))); // partial
        // Horizontal segment through a tall rectangle.
        let flat = Segment::new(0.0, 3.0, 10.0, 3.0);
        assert!(flat.intersects_rect(&Rect::new(4.0, 0.0, 5.0, 10.0)));
        assert!(!flat.intersects_rect(&Rect::new(4.0, 4.0, 5.0, 10.0)));
        // Touching the boundary counts.
        assert!(flat.intersects_rect(&Rect::new(4.0, 3.0, 5.0, 10.0)));
    }

    #[test]
    fn vertical_value_segment() {
        // Zero-duration segments arise for updates at the horizon edge.
        let s = Segment::new(5.0, 1.0, 5.0, 1.0);
        assert_eq!(s.value_at(5.0), 1.0);
        assert_eq!(s.slope(), 0.0);
        assert!(s.intersects_rect(&Rect::new(4.0, 0.0, 6.0, 2.0)));
    }
}
