//! Property tests: both index structures must agree with the linear-scan
//! ground truth under random insert/update/query workloads.

use most_index::{DynamicAttributeIndex, IndexKind, MovingObjectIndex2D};
use most_spatial::{MovingPoint, Point, Rect, Trajectory, Velocity};
use most_temporal::{Horizon, IntervalSet, Tick};
use most_testkit::check::{bools, ints, just, one_of, tuple2, tuple3, tuple4, vecs, Check, Gen};

const LIFETIME: Tick = 200;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: u64, value: f64, slope: f64 },
    Update { id: u64, t: Tick, value: f64, slope: f64 },
}

fn arb_ops() -> Gen<Vec<Op>> {
    // Ids from a small pool; updates target previously inserted ids (we
    // filter at replay time).
    vecs(
        one_of(vec![
            tuple3(ints(0..40u64), ints(-100i32..100), ints(-8i32..8)).map(|(id, v, s)| {
                Op::Insert { id, value: v as f64, slope: s as f64 * 0.25 }
            }),
            tuple4(ints(0..40u64), ints(1..LIFETIME), ints(-100i32..100), ints(-8i32..8))
                .map(|(id, t, v, s)| Op::Update {
                    id,
                    t,
                    value: v as f64,
                    slope: s as f64 * 0.25,
                }),
        ]),
        1..30,
    )
}

/// Ground-truth model: per object, the list of (from, value, slope) pieces.
#[derive(Default)]
struct Model {
    objects: std::collections::BTreeMap<u64, Vec<(Tick, f64, f64)>>,
}

impl Model {
    fn value_of(&self, id: u64, t: Tick) -> Option<f64> {
        let pieces = self.objects.get(&id)?;
        let &(from, v, s) = pieces.iter().rev().find(|(f, _, _)| *f <= t).unwrap_or(&pieces[0]);
        Some(v + s * (t as f64 - from as f64))
    }

    fn in_range_at(&self, t: Tick, lo: f64, hi: f64) -> Vec<u64> {
        self.objects
            .keys()
            .filter(|&&id| {
                self.value_of(id, t).is_some_and(|v| lo <= v && v <= hi)
            })
            .copied()
            .collect()
    }

    fn in_range_intervals(&self, id: u64, from: Tick, lo: f64, hi: f64) -> IntervalSet {
        IntervalSet::from_predicate(Horizon::new(LIFETIME), |t| {
            t >= from && self.value_of(id, t).is_some_and(|v| lo <= v && v <= hi)
        })
    }
}

fn replay(ops: &[Op], kind: IndexKind) -> (DynamicAttributeIndex, Model) {
    let mut idx = DynamicAttributeIndex::new(kind, LIFETIME, (-5000.0, 5000.0));
    let mut model = Model::default();
    let mut last_update: std::collections::BTreeMap<u64, Tick> = Default::default();
    for op in ops {
        match *op {
            Op::Insert { id, value, slope } => {
                if model.objects.contains_key(&id) {
                    continue;
                }
                idx.insert(id, 0, value, slope);
                model.objects.insert(id, vec![(0, value, slope)]);
                last_update.insert(id, 0);
            }
            Op::Update { id, t, value, slope } => {
                let Some(prev) = last_update.get(&id).copied() else { continue };
                if t < prev {
                    continue;
                }
                idx.update(id, t, value, slope);
                let pieces = model.objects.get_mut(&id).expect("inserted");
                if t == prev {
                    *pieces.last_mut().expect("non-empty") = (t, value, slope);
                } else {
                    pieces.push((t, value, slope));
                }
                last_update.insert(id, t);
            }
        }
    }
    (idx, model)
}

#[test]
fn instantaneous_matches_model() {
    let gen = tuple4(
        arb_ops(),
        bools(),
        ints(0..LIFETIME),
        tuple2(ints(-120i32..100), ints(1u32..80)),
    );
    Check::new("index::instantaneous_matches_model").cases(48).run(
        &gen,
        |(ops, kind_r, now, (lo, width))| {
            let kind = if *kind_r { IndexKind::RTree } else { IndexKind::QuadTree };
            let (idx, model) = replay(ops, kind);
            let (lo, hi) = (*lo as f64, *lo as f64 + *width as f64);
            let (got, stats) = idx.instantaneous(*now, lo, hi);
            let want = model.in_range_at(*now, lo, hi);
            assert_eq!(&got, &want, "kind {kind:?} now {now}");
            assert_eq!(stats.results, got.len() as u64);
        },
    );
}

#[test]
fn continuous_matches_model() {
    let gen = tuple4(
        arb_ops(),
        bools(),
        ints(0..LIFETIME),
        tuple2(ints(-120i32..100), ints(1u32..80)),
    );
    Check::new("index::continuous_matches_model").cases(48).run(
        &gen,
        |(ops, kind_r, now, (lo, width))| {
            let kind = if *kind_r { IndexKind::RTree } else { IndexKind::QuadTree };
            let (idx, model) = replay(ops, kind);
            let (lo, hi) = (*lo as f64, *lo as f64 + *width as f64);
            let (rows, _) = idx.continuous(*now, lo, hi);
            for (&id, _) in model.objects.iter() {
                let want = model.in_range_intervals(id, *now, lo, hi);
                let got = rows
                    .iter()
                    .find(|(rid, _)| *rid == id)
                    .map(|(_, s)| s.clone())
                    .unwrap_or_default();
                assert_eq!(got, want, "object {id} kind {kind:?}");
            }
        },
    );
}

#[test]
fn quadtree_and_rtree_agree() {
    let gen = tuple4(
        arb_ops(),
        ints(0..LIFETIME),
        ints(-120i32..100),
        ints(1u32..80),
    );
    Check::new("index::quadtree_and_rtree_agree").cases(48).run(
        &gen,
        |(ops, now, lo, width)| {
            let (qi, _) = replay(ops, IndexKind::QuadTree);
            let (ri, _) = replay(ops, IndexKind::RTree);
            let (lo, hi) = (*lo as f64, *lo as f64 + *width as f64);
            assert_eq!(
                qi.instantaneous(*now, lo, hi).0,
                ri.instantaneous(*now, lo, hi).0
            );
        },
    );
}

#[test]
fn index2d_matches_trajectory_model() {
    #[allow(clippy::type_complexity)]
    let arb_obj: Gen<(i32, i32, i32, i32, Option<(Tick, i32, i32)>)> = tuple2(
        tuple4(ints(-200i32..200), ints(-200i32..200), ints(-4i32..4), ints(-4i32..4)),
        one_of(vec![
            just(None),
            tuple3(ints(1..LIFETIME), ints(-4i32..4), ints(-4i32..4)).map(Some),
        ]),
    )
    .map(|((x, y, vx, vy), upd)| (x, y, vx, vy, upd));
    let gen = tuple4(
        vecs(arb_obj, 1..25),
        ints(0..LIFETIME),
        ints(-200i32..150),
        ints(-200i32..150),
    );
    Check::new("index::index2d_matches_trajectory_model").cases(48).run(
        &gen,
        |(objs, t, rx, ry)| {
            let mut idx =
                MovingObjectIndex2D::new(LIFETIME, Rect::new(-1500.0, -1500.0, 1500.0, 1500.0));
            let mut trajs: Vec<Trajectory> = Vec::new();
            for (i, (x, y, vx, vy, upd)) in objs.iter().enumerate() {
                let p = Point::new(*x as f64, *y as f64);
                let v = Velocity::new(*vx as f64 * 0.5, *vy as f64 * 0.5);
                idx.insert(i as u64, 0, p, v);
                let mut traj = Trajectory::new(MovingPoint::from_origin(p, v));
                if let Some((ut, uvx, uvy)) = upd {
                    let nv = Velocity::new(*uvx as f64 * 0.5, *uvy as f64 * 0.5);
                    idx.update(i as u64, *ut, traj.position_at_tick(*ut), nv);
                    traj.update_velocity(*ut, nv);
                }
                trajs.push(traj);
            }
            let region = Rect::new(*rx as f64, *ry as f64, *rx as f64 + 60.0, *ry as f64 + 60.0);
            let (got, _) = idx.query_at(*t, &region);
            let want: Vec<u64> = trajs
                .iter()
                .enumerate()
                .filter(|(_, traj)| region.contains(traj.position_at_tick(*t)))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(got, want);
        },
    );
}
