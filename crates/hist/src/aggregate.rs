//! Warehouse-style windowed aggregates over the recorded history.
//!
//! Time is cut into fixed-width windows (`[k·W, (k+1)·W)` for width
//! `W`); for each window and each named region the aggregate maintains
//! the set of **distinct objects** that produced at least one recorded
//! sample inside the region during the window — the
//! objects-per-region-per-interval measure, from which top-k busiest
//! regions per window follow.
//!
//! Maintenance is **incremental**: every sample is folded in as it is
//! recorded (one point-in-polygon test per region), never by
//! recomputing a window from raw history.  That makes the aggregates a
//! true warehouse summary — they survive raw-segment pruning, so they
//! can answer about periods whose samples are long gone.  The
//! full-recompute path ([`WindowedAggregates::recompute`]) exists as the
//! testing oracle: on an unpruned store it must agree byte-for-byte.

use most_core::Database;
use most_spatial::Point;
use most_temporal::{Duration, Tick};
use std::collections::BTreeMap;

/// Distinct-object counts per (window, region), maintained per sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedAggregates {
    /// Window width in ticks (≥ 1); window `k` covers
    /// `[k·window, (k+1)·window)`.
    window: Duration,
    /// Window start tick → region name → sorted distinct object ids.
    windows: BTreeMap<Tick, BTreeMap<String, Vec<u64>>>,
}

most_testkit::json_struct!(WindowedAggregates { window, windows });

/// One region's distinct-object count inside one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionCount {
    /// Region name.
    pub region: String,
    /// Distinct objects with at least one sample in the region.
    pub count: u64,
}

most_testkit::json_struct!(RegionCount { region, count });

impl WindowedAggregates {
    /// An empty aggregate over windows of `window` ticks (clamped to at
    /// least 1).
    pub fn new(window: Duration) -> Self {
        WindowedAggregates { window: window.max(1), windows: BTreeMap::new() }
    }

    /// The window width in ticks.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Start tick of the window containing `t`.
    pub fn window_start(&self, t: Tick) -> Tick {
        (t / self.window) * self.window
    }

    /// Folds one recorded sample into the aggregate: object `id` was at
    /// `p` at tick `t`; membership is tested against every region named
    /// in `db` *at record time*.
    pub fn record_sample(&mut self, id: u64, t: Tick, p: Point, db: &Database) {
        let start = self.window_start(t);
        for (name, poly) in db.regions_iter() {
            if poly.contains(p) {
                let ids = self
                    .windows
                    .entry(start)
                    .or_default()
                    .entry(name.to_owned())
                    .or_default();
                if let Err(pos) = ids.binary_search(&id) {
                    ids.insert(pos, id);
                }
            }
        }
    }

    /// Start ticks of all windows with at least one occupied region.
    pub fn window_starts(&self) -> Vec<Tick> {
        self.windows.keys().copied().collect()
    }

    /// Distinct objects seen in `region` during the window starting at
    /// `window_start` (0 for unknown windows or regions).
    pub fn count(&self, window_start: Tick, region: &str) -> u64 {
        self.windows
            .get(&window_start)
            .and_then(|regions| regions.get(region))
            .map_or(0, |ids| ids.len() as u64)
    }

    /// The `k` busiest regions of the window starting at `window_start`,
    /// by distinct-object count descending, ties broken by region name —
    /// fully deterministic.
    pub fn top_k(&self, window_start: Tick, k: usize) -> Vec<RegionCount> {
        let Some(regions) = self.windows.get(&window_start) else {
            return Vec::new();
        };
        let mut counts: Vec<RegionCount> = regions
            .iter()
            .map(|(region, ids)| RegionCount { region: region.clone(), count: ids.len() as u64 })
            .collect();
        counts.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.region.cmp(&b.region)));
        counts.truncate(k);
        counts
    }

    /// The testing oracle: rebuilds the aggregate from scratch over a
    /// full sample log `(id, tick, position)` with the regions of `db`.
    /// On a store that has never pruned, the incrementally-maintained
    /// aggregate must equal this byte-for-byte.
    pub fn recompute(
        window: Duration,
        samples: impl IntoIterator<Item = (u64, Tick, Point)>,
        db: &Database,
    ) -> Self {
        let mut agg = WindowedAggregates::new(window);
        for (id, t, p) in samples {
            agg.record_sample(id, t, p, db);
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::Polygon;

    fn db_with_regions() -> Database {
        let mut db = Database::new(1_000);
        db.add_region("downtown", Polygon::rectangle(0.0, 0.0, 10.0, 10.0));
        db.add_region("airport", Polygon::rectangle(100.0, 0.0, 120.0, 20.0));
        db
    }

    #[test]
    fn distinct_objects_counted_once_per_window() {
        let db = db_with_regions();
        let mut agg = WindowedAggregates::new(10);
        agg.record_sample(1, 0, Point::new(5.0, 5.0), &db);
        agg.record_sample(1, 7, Point::new(6.0, 5.0), &db); // same window: still 1
        agg.record_sample(2, 9, Point::new(1.0, 1.0), &db);
        agg.record_sample(1, 12, Point::new(5.0, 5.0), &db); // next window
        assert_eq!(agg.count(0, "downtown"), 2);
        assert_eq!(agg.count(10, "downtown"), 1);
        assert_eq!(agg.count(0, "airport"), 0);
    }

    #[test]
    fn top_k_orders_by_count_then_name() {
        let db = db_with_regions();
        let mut agg = WindowedAggregates::new(100);
        for id in 0..3 {
            agg.record_sample(id, 5, Point::new(110.0, 10.0), &db);
        }
        for id in 0..3 {
            agg.record_sample(10 + id, 6, Point::new(5.0, 5.0), &db);
        }
        let top = agg.top_k(0, 2);
        // Equal counts: alphabetical order breaks the tie.
        assert_eq!(
            top,
            vec![
                RegionCount { region: "airport".into(), count: 3 },
                RegionCount { region: "downtown".into(), count: 3 },
            ]
        );
        assert_eq!(agg.top_k(0, 1).len(), 1);
        assert!(agg.top_k(900, 3).is_empty());
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let db = db_with_regions();
        let mut agg = WindowedAggregates::new(10);
        agg.record_sample(7, 3, Point::new(5.0, 5.0), &db);
        agg.record_sample(9, 15, Point::new(110.0, 10.0), &db);
        let text = most_testkit::ser::to_json_string(&agg).unwrap();
        let back: WindowedAggregates = most_testkit::ser::from_json_str(&text).unwrap();
        assert_eq!(back, agg);
        assert_eq!(most_testkit::ser::to_json_string(&back).unwrap(), text);
    }
}
