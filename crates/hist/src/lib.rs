//! `most-hist` — the trajectory history warehouse.
//!
//! The MOST model (PAPER.md) answers questions about the present and
//! near future; this crate grows the system along the *time axis* by
//! turning the update stream into a queryable past:
//!
//! * [`HistoryStore`] / [`HistoryRecorder`] — piecewise-linear motion
//!   histories recorded at the epoch-publish boundary, with
//!   bounded-memory segment retention and `ToJson` snapshot
//!   save/restore.  Recording composes with every engine
//!   ([`most_core::EpochDb`], [`most_core::ShardedDb`],
//!   [`most_core::DurableDb`]) through the publish-observer hook —
//!   no new engine locks.
//! * [`alibi_intervals`] / [`alibi_oracle`] — the **alibi query**
//!   ("could objects *a* and *b* have met?") as an exact space-time
//!   prism (bead) intersection, returning meet-possible tick intervals,
//!   plus the brute-force time-stepped oracle it is tested against.
//! * [`WindowedAggregates`] — warehouse aggregates
//!   (distinct-objects-per-region-per-window, top-k busiest regions)
//!   maintained incrementally per recorded batch, never recomputed.
//!
//! Observability: the `hist.records` / `hist.segments` / `hist.pruned` /
//! `hist.alibi_queries` / `hist.aggregate_refreshes` counters and the
//! `hist.alibi_nanos` latency histogram ride the `most-obs` registry and
//! compile to no-ops under `--no-default-features`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod alibi;
pub mod store;

pub use aggregate::{RegionCount, WindowedAggregates};
pub use alibi::{alibi_intervals, alibi_oracle, bead_pair_meets, Sample};
pub use store::{HistoryConfig, HistoryRecorder, HistoryStore, ObjectHistory};
