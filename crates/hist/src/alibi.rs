//! The alibi query: could two objects have met?
//!
//! Between two consecutive position samples `(t0, p0)` and `(t1, p1)` of
//! an object with speed bound `v`, the set of space-time points the
//! object could have occupied is a **bead** (space-time prism): at tick
//! `t ∈ [t0, t1]` the reachable positions are the intersection of two
//! disks, `|x − p0| ≤ v·(t − t0)` (reachable from the first sample) and
//! `|x − p1| ≤ v·(t1 − t)` (able to still make the second sample).  Two
//! objects *could have met* at `t` iff their beads intersect at `t` —
//! i.e. iff **four disks** share a common point.  The alibi query asks
//! for all such ticks in a range; the answer is an [`IntervalSet`].
//!
//! Both the solver and the brute-force oracle decide each candidate tick
//! with the *same* exact geometric primitive ([`bead_pair_meets`], a
//! four-disk common-intersection test), so their answers agree
//! byte-for-byte.  They differ in how many ticks they touch:
//!
//! * [`alibi_oracle`] time-steps **every** tick in the query range and
//!   tries every pair of sample windows covering it — `O(range ·
//!   windows)`, the testing reference.
//! * [`alibi_intervals`] walks window *pairs* and eliminates almost all
//!   of them analytically: a meet at `t` requires the four cross
//!   triangle inequalities `|pᵢ − qⱼ| ≤ rᵢ(t) + sⱼ(t)` whose radii are
//!   linear in `t`, so each pair reduces to a tiny (usually empty)
//!   candidate window that is then resolved exactly per tick.  The
//!   per-pair feasible set is the shadow of an intersection of convex
//!   space-time bodies, hence a single interval.
//!
//! The four-disk test never needs quantifier elimination: a family of
//! disks has a common point iff some disk's center lies in all of them
//! or some intersection point of two boundary circles does (a corner of
//! the intersection region).

use most_spatial::Point;
use most_temporal::{Interval, IntervalSet, Tick};

/// One position sample: the object was observed at this point at this
/// tick.  Sample lists are sorted by strictly increasing tick.
pub type Sample = (Tick, Point);

/// Tolerance for the exact disk-intersection test: a candidate point
/// within `EPS` of every disk counts as a common point, so touching
/// prisms meet.
const EPS: f64 = 1e-9;

/// Slack for the analytic pruning inequalities.  Pruning must never
/// discard a tick the exact test would accept; the triangle inequality
/// guarantees any `EPS`-accepted configuration satisfies the pairwise
/// bounds within `2·EPS`, so a slack three orders of magnitude wider
/// keeps pruning strictly conservative against float rounding.
const PRUNE_SLACK: f64 = 1e-6;

/// Whether a set of disks `(center, radius)` has a common point, within
/// [`EPS`].  Exact geometry, no iteration: if the common intersection is
/// nonempty then either some center lies in every disk, or a boundary
/// intersection point of two of the circles (a corner of the region)
/// does.
fn disks_intersect(disks: &[(Point, f64)]) -> bool {
    let inside_all = |p: Point| disks.iter().all(|&(c, r)| p.dist(c) <= r + EPS);
    if disks.iter().any(|&(c, _)| inside_all(c)) {
        return true;
    }
    for i in 0..disks.len() {
        for j in (i + 1)..disks.len() {
            let (ci, ri) = disks[i];
            let (cj, rj) = disks[j];
            let d = ci.dist(cj);
            if d > ri + rj + EPS {
                // This pair alone is disjoint: no common point exists.
                return false;
            }
            if d <= EPS {
                // Concentric circles produce no corners; the nested
                // disk's center candidate already covered containment.
                continue;
            }
            if d + rj < ri - EPS || d + ri < rj - EPS {
                // One circle strictly inside the other: no corners.
                continue;
            }
            // Circle-circle intersection (clamping grazing contact).
            let a = (d * d + ri * ri - rj * rj) / (2.0 * d);
            let h = (ri * ri - a * a).max(0.0).sqrt();
            let ux = (cj.x - ci.x) / d;
            let uy = (cj.y - ci.y) / d;
            let mx = ci.x + a * ux;
            let my = ci.y + a * uy;
            for s in [h, -h] {
                if inside_all(Point::new(mx - s * uy, my + s * ux)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Exact meet test for one tick and one window pair: could an object
/// bounded by speed `va` between samples `a0`/`a1` and one bounded by
/// `vb` between `b0`/`b1` have shared a position at tick `t`?  Requires
/// `t` inside both windows.  This is the single primitive both the
/// solver and the oracle decide ticks with.
pub fn bead_pair_meets(
    a0: Sample,
    a1: Sample,
    va: f64,
    b0: Sample,
    b1: Sample,
    vb: f64,
    t: Tick,
) -> bool {
    debug_assert!(a0.0 <= t && t <= a1.0, "tick outside window a");
    debug_assert!(b0.0 <= t && t <= b1.0, "tick outside window b");
    disks_intersect(&[
        (a0.1, va * (t - a0.0) as f64),
        (a1.1, va * (a1.0 - t) as f64),
        (b0.1, vb * (t - b0.0) as f64),
        (b1.1, vb * (b1.0 - t) as f64),
    ])
}

/// Whether any window pair covering tick `t` admits a meet — the
/// per-tick predicate the oracle steps with.
fn meets_at_tick(a: &[Sample], va: f64, b: &[Sample], vb: f64, t: Tick) -> bool {
    for wa in a.windows(2) {
        if !(wa[0].0 <= t && t <= wa[1].0) {
            continue;
        }
        for wb in b.windows(2) {
            if wb[0].0 <= t && t <= wb[1].0 && bead_pair_meets(wa[0], wa[1], va, wb[0], wb[1], vb, t)
            {
                return true;
            }
        }
    }
    false
}

/// Brute-force time-stepped reference: tests **every** tick in `range`
/// against every covering window pair.  `O(range · windows)`; the
/// ground truth [`alibi_intervals`] must match byte-for-byte.
pub fn alibi_oracle(
    a: &[Sample],
    va: f64,
    b: &[Sample],
    vb: f64,
    range: Interval,
) -> IntervalSet {
    let mut intervals = Vec::new();
    let mut open: Option<Tick> = None;
    for t in range.begin()..=range.end() {
        match (meets_at_tick(a, va, b, vb, t), open) {
            (true, None) => open = Some(t),
            (false, Some(begin)) => {
                intervals.push(Interval::new(begin, t - 1));
                open = None;
            }
            _ => {}
        }
        if t == range.end() {
            break; // guard the inclusive loop against Tick::MAX overflow
        }
    }
    if let Some(begin) = open {
        intervals.push(Interval::new(begin, range.end()));
    }
    IntervalSet::from_intervals(intervals)
}

/// The meet-possible ticks contributed by one window pair, or `None`.
///
/// The window overlap is first narrowed by the analytic necessary
/// conditions — bead non-emptiness (`|p0 − p1| ≤ v·Δt`, `t`-independent)
/// and the four cross triangle inequalities, each linear in `t` — then
/// the surviving candidate ticks are resolved with the exact
/// [`bead_pair_meets`] test.  Convexity of the bead intersection makes
/// the feasible set contiguous, so the scan stops at the first
/// infeasible tick after a feasible run.
fn pair_meet_interval(
    a0: Sample,
    a1: Sample,
    va: f64,
    b0: Sample,
    b1: Sample,
    vb: f64,
    range: Interval,
) -> Option<Interval> {
    let lo = a0.0.max(b0.0).max(range.begin());
    let hi = a1.0.min(b1.0).min(range.end());
    if lo > hi {
        return None;
    }
    // Bead non-emptiness: the object must be fast enough to make the
    // second sample at all.
    if a0.1.dist(a1.1) > va * (a1.0 - a0.0) as f64 + PRUNE_SLACK {
        return None;
    }
    if b0.1.dist(b1.1) > vb * (b1.0 - b0.0) as f64 + PRUNE_SLACK {
        return None;
    }
    // Cross constraints: a common point at t needs
    // dist(pᵢ, qⱼ) ≤ rᵢ(t) + sⱼ(t) = α + β·t for each of the four
    // (sample of a, sample of b) pairs.
    let (ta0, ta1, tb0, tb1) = (a0.0 as f64, a1.0 as f64, b0.0 as f64, b1.0 as f64);
    let mut flo = lo as f64;
    let mut fhi = hi as f64;
    let mut constrain = |d: f64, alpha: f64, beta: f64| -> bool {
        // Feasible t satisfies β·t ≥ d − α − slack.
        if beta > 1e-12 {
            flo = flo.max((d - alpha - PRUNE_SLACK) / beta);
        } else if beta < -1e-12 {
            fhi = fhi.min((d - alpha - PRUNE_SLACK) / beta);
        } else if d > alpha + PRUNE_SLACK {
            return false;
        }
        true
    };
    let feasible = constrain(a0.1.dist(b0.1), -(va * ta0 + vb * tb0), va + vb)
        && constrain(a0.1.dist(b1.1), vb * tb1 - va * ta0, va - vb)
        && constrain(a1.1.dist(b0.1), va * ta1 - vb * tb0, vb - va)
        && constrain(a1.1.dist(b1.1), va * ta1 + vb * tb1, -(va + vb));
    if !feasible || fhi < flo {
        return None;
    }
    let tlo = flo.ceil().max(lo as f64) as Tick;
    let thi = fhi.floor().min(hi as f64) as Tick;
    if thi < tlo {
        return None;
    }
    // Resolve the (typically tiny) pruned window exactly.
    let mut first = None;
    let mut last = tlo;
    for t in tlo..=thi {
        if bead_pair_meets(a0, a1, va, b0, b1, vb, t) {
            if first.is_none() {
                first = Some(t);
            }
            last = t;
        } else if first.is_some() {
            break; // convex feasible set: the run is over
        }
        if t == thi {
            break;
        }
    }
    first.map(|begin| Interval::new(begin, last))
}

/// The alibi solver: all ticks in `range` at which an object with speed
/// bound `va` sampled at `a` and one with bound `vb` sampled at `b`
/// could have occupied the same point.  Sample lists must be sorted by
/// strictly increasing tick; an object with fewer than two samples
/// constrains nothing (its whereabouts are unknown), yielding the empty
/// set.  Agrees byte-for-byte with [`alibi_oracle`] while touching only
/// analytically-surviving ticks.
pub fn alibi_intervals(
    a: &[Sample],
    va: f64,
    b: &[Sample],
    vb: f64,
    range: Interval,
) -> IntervalSet {
    let mut out = Vec::new();
    for wa in a.windows(2) {
        for wb in b.windows(2) {
            if let Some(iv) = pair_meet_interval(wa[0], wa[1], va, wb[0], wb[1], vb, range) {
                out.push(iv);
            }
        }
    }
    IntervalSet::from_intervals(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn head_on_drivers_can_meet_in_the_middle() {
        // a walks 0→10, b walks 10→0 over ten ticks; bounds are tight,
        // so they can only meet at the crossing tick.
        let a = [(0, p(0.0, 0.0)), (10, p(10.0, 0.0))];
        let b = [(0, p(10.0, 0.0)), (10, p(0.0, 0.0))];
        let got = alibi_intervals(&a, 1.0, &b, 1.0, Interval::new(0, 10));
        assert_eq!(got.intervals(), &[Interval::new(5, 5)]);
        assert_eq!(got, alibi_oracle(&a, 1.0, &b, 1.0, Interval::new(0, 10)));
    }

    #[test]
    fn distant_objects_have_an_alibi() {
        let a = [(0, p(0.0, 0.0)), (100, p(0.0, 0.0))];
        let b = [(0, p(1000.0, 0.0)), (100, p(1000.0, 0.0))];
        let got = alibi_intervals(&a, 1.0, &b, 1.0, Interval::new(0, 100));
        assert!(got.is_empty());
        assert_eq!(got, alibi_oracle(&a, 1.0, &b, 1.0, Interval::new(0, 100)));
    }

    #[test]
    fn loose_speed_bounds_widen_the_meet_window() {
        let a = [(0, p(0.0, 0.0)), (10, p(10.0, 0.0))];
        let b = [(0, p(10.0, 0.0)), (10, p(0.0, 0.0))];
        let got = alibi_intervals(&a, 2.0, &b, 2.0, Interval::new(0, 10));
        assert_eq!(got, alibi_oracle(&a, 2.0, &b, 2.0, Interval::new(0, 10)));
        assert!(got.tick_count() > 1, "slack should allow early/late meets: {got:?}");
    }

    #[test]
    fn zero_speed_bound_meets_only_when_parked_together() {
        let a = [(0, p(3.0, 4.0)), (10, p(3.0, 4.0))];
        let b = [(0, p(3.0, 4.0)), (10, p(3.0, 4.0))];
        let both = alibi_intervals(&a, 0.0, &b, 0.0, Interval::new(0, 10));
        assert_eq!(both.intervals(), &[Interval::new(0, 10)]);
        let c = [(0, p(3.0, 5.0)), (10, p(3.0, 5.0))];
        let apart = alibi_intervals(&a, 0.0, &c, 0.0, Interval::new(0, 10));
        assert!(apart.is_empty());
        assert_eq!(apart, alibi_oracle(&a, 0.0, &c, 0.0, Interval::new(0, 10)));
    }

    #[test]
    fn touching_prisms_count_as_meeting() {
        // Fastest approach brings them exactly to distance zero at t=5.
        let a = [(0, p(0.0, 0.0)), (10, p(0.0, 0.0))];
        let b = [(0, p(10.0, 0.0)), (10, p(10.0, 0.0))];
        let got = alibi_intervals(&a, 1.0, &b, 1.0, Interval::new(0, 10));
        assert_eq!(got.intervals(), &[Interval::new(5, 5)]);
        assert_eq!(got, alibi_oracle(&a, 1.0, &b, 1.0, Interval::new(0, 10)));
    }

    #[test]
    fn multi_leg_histories_union_their_meet_windows() {
        let a = [
            (0, p(0.0, 0.0)),
            (10, p(10.0, 0.0)),
            (20, p(0.0, 0.0)),
        ];
        let b = [
            (0, p(10.0, 0.0)),
            (10, p(0.0, 0.0)),
            (20, p(10.0, 0.0)),
        ];
        let got = alibi_intervals(&a, 1.0, &b, 1.0, Interval::new(0, 20));
        assert_eq!(got.intervals(), &[Interval::new(5, 5), Interval::new(15, 15)]);
        assert_eq!(got, alibi_oracle(&a, 1.0, &b, 1.0, Interval::new(0, 20)));
    }

    #[test]
    fn single_sample_constrains_nothing() {
        let a = [(5, p(0.0, 0.0))];
        let b = [(0, p(0.0, 0.0)), (10, p(0.0, 0.0))];
        assert!(alibi_intervals(&a, 1.0, &b, 1.0, Interval::new(0, 10)).is_empty());
        assert!(alibi_oracle(&a, 1.0, &b, 1.0, Interval::new(0, 10)).is_empty());
    }
}
