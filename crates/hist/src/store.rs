//! The trajectory history store and its epoch-boundary recorder.
//!
//! A MOST [`Database`] already keeps each object's full piecewise-linear
//! trajectory — one [`MovingPoint`] leg per explicit update.  The store
//! turns that into a queryable *history warehouse* by consuming legs at
//! the *epoch-publish boundary*: a [`HistoryRecorder`] installs itself as
//! the engine's publish observer (see
//! [`most_core::epoch::EpochDb::set_publish_observer`]) and, at every
//! publish, appends any legs past its per-object watermark.  Recording
//! therefore composes with [`EpochDb`], [`ShardedDb`] and
//! [`most_core::DurableDb`] without adding a single lock to the engines
//! themselves — the observer runs under the existing writer (per-shard)
//! critical section, and the recorder serializes its own state behind
//! one internal mutex (shards publish concurrently).
//!
//! Memory is bounded: legs accumulate into fixed-capacity **segments**
//! and only the newest [`HistoryConfig::max_segments`] segments per
//! object are retained; older ones are pruned (counted in
//! `hist.pruned`).  The windowed aggregates are *not* recomputed from
//! raw legs, so they keep answering about pruned periods — the
//! warehouse property.  The whole store rides `ToJson`/`FromJson` for
//! snapshot save/restore.

use crate::aggregate::WindowedAggregates;
use crate::alibi::{alibi_intervals, alibi_oracle, Sample};
use most_core::epoch::PublishObserver;
use most_core::{Database, DurableDb, EpochDb, ShardedDb};
use most_spatial::{MovingPoint, Point};
use most_temporal::{Duration, Interval, IntervalSet, Tick};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Sizing knobs for the history store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryConfig {
    /// Legs per segment (≥ 1); a new segment opens when the last one is
    /// full.
    pub segment_capacity: u64,
    /// Newest segments retained per object (≥ 1); older segments are
    /// pruned.  Per-object memory is thus bounded by
    /// `segment_capacity · max_segments` legs.
    pub max_segments: u64,
    /// Aggregate window width in ticks (≥ 1).
    pub window: Duration,
}

most_testkit::json_struct!(HistoryConfig { segment_capacity, max_segments, window });

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig { segment_capacity: 64, max_segments: 64, window: 16 }
    }
}

impl HistoryConfig {
    /// A config that never prunes — every leg is retained (tests and
    /// oracles).
    pub fn unpruned(window: Duration) -> Self {
        HistoryConfig { segment_capacity: 1 << 20, max_segments: u64::MAX, window }
    }
}

/// One object's recorded history: retained segments plus the watermark
/// into the live trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObjectHistory {
    /// Retained segments, oldest first; each holds at most
    /// `segment_capacity` legs in `since` order.
    segments: Vec<Vec<MovingPoint>>,
    /// Trajectory legs consumed so far — recording is idempotent per
    /// leg, so replaying a publish appends nothing.
    consumed: u64,
    /// Legs dropped from the front by retention pruning.
    pruned: u64,
}

most_testkit::json_struct!(ObjectHistory { segments, consumed, pruned });

impl ObjectHistory {
    /// Retained legs, oldest first.
    pub fn legs(&self) -> impl Iterator<Item = &MovingPoint> {
        self.segments.iter().flatten()
    }

    /// Number of retained legs.
    pub fn retained(&self) -> u64 {
        self.segments.iter().map(|s| s.len() as u64).sum()
    }

    /// Legs pruned away so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }
}

/// The history warehouse: per-object motion history consumed at epoch
/// boundaries, plus incrementally-maintained windowed aggregates.  See
/// the module docs for the recording contract and [`HistoryRecorder`]
/// for the thread-safe engine-attached wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryStore {
    /// Sizing knobs (fixed at construction).
    config: HistoryConfig,
    /// Recorded histories by object id.
    objects: BTreeMap<u64, ObjectHistory>,
    /// Warehouse aggregates, folded per recorded leg.
    aggregates: WindowedAggregates,
    /// Latest database clock observed while recording; alibi answers
    /// never extend past it.
    last_seen: Tick,
}

most_testkit::json_struct!(HistoryStore { config, objects, aggregates, last_seen });

impl HistoryStore {
    /// An empty store.
    pub fn new(config: HistoryConfig) -> Self {
        let window = config.window;
        HistoryStore {
            config,
            objects: BTreeMap::new(),
            aggregates: WindowedAggregates::new(window),
            last_seen: 0,
        }
    }

    /// The store's sizing knobs.
    pub fn config(&self) -> HistoryConfig {
        self.config
    }

    /// Consumes every trajectory leg past the per-object watermarks from
    /// `db`, folds the new legs into the aggregates, applies retention,
    /// and returns the number of legs appended.  Idempotent: recording
    /// the same state twice appends nothing.
    pub fn record(&mut self, db: &Database) -> u64 {
        let cap = self.config.segment_capacity.max(1) as usize;
        let keep = self.config.max_segments.max(1);
        let mut appended = 0u64;
        let mut opened = 0u64;
        let mut pruned = 0u64;
        for id in db.object_ids() {
            let Ok(obj) = db.object(id) else { continue };
            let Some(traj) = obj.trajectory() else { continue };
            let legs = traj.legs();
            let entry = self.objects.entry(id).or_default();
            let from = (entry.consumed as usize).min(legs.len());
            for leg in &legs[from..] {
                if entry.segments.last().is_none_or(|s| s.len() >= cap) {
                    entry.segments.push(Vec::new());
                    opened += 1;
                }
                entry
                    .segments
                    .last_mut()
                    .expect("segment just ensured")
                    .push(*leg);
                self.aggregates.record_sample(id, leg.since, leg.anchor, db);
                appended += 1;
            }
            entry.consumed = entry.consumed.max(legs.len() as u64);
            while entry.segments.len() as u64 > keep {
                let dropped = entry.segments.remove(0);
                entry.pruned += dropped.len() as u64;
                pruned += dropped.len() as u64;
            }
        }
        self.last_seen = self.last_seen.max(db.now());
        if appended > 0 {
            most_obs::add("hist.records", appended);
            most_obs::inc("hist.aggregate_refreshes");
        }
        if opened > 0 {
            most_obs::add("hist.segments", opened);
        }
        if pruned > 0 {
            most_obs::add("hist.pruned", pruned);
        }
        appended
    }

    /// Ids of all objects with recorded history.
    pub fn object_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    /// One object's recorded history, if any.
    pub fn object(&self, id: u64) -> Option<&ObjectHistory> {
        self.objects.get(&id)
    }

    /// Latest database clock observed while recording.
    pub fn last_seen(&self) -> Tick {
        self.last_seen
    }

    /// The warehouse aggregates.
    pub fn aggregates(&self) -> &WindowedAggregates {
        &self.aggregates
    }

    /// Every retained sample `(id, tick, position)` — the raw log the
    /// aggregate recompute oracle replays.
    pub fn retained_samples(&self) -> Vec<(u64, Tick, Point)> {
        let mut out = Vec::new();
        for (&id, hist) in &self.objects {
            for leg in hist.legs() {
                out.push((id, leg.since, leg.anchor));
            }
        }
        out
    }

    /// Position samples of object `id` usable for an alibi query over
    /// `range`: the retained update anchors inside the range, bracketed
    /// by positions interpolated from the recorded motion at the clamped
    /// range endpoints.  Empty when the object has no retained history
    /// overlapping the range.
    pub fn alibi_samples(&self, id: u64, range: Interval) -> Vec<Sample> {
        let Some(hist) = self.objects.get(&id) else { return Vec::new() };
        let legs: Vec<&MovingPoint> = hist.legs().collect();
        let Some(first) = legs.first() else { return Vec::new() };
        let lo = range.begin().max(first.since);
        let hi = range.end().min(self.last_seen);
        if lo > hi {
            return Vec::new();
        }
        let position_at = |t: Tick| {
            let leg = legs
                .iter()
                .take_while(|l| l.since <= t)
                .last()
                .expect("lo clamps to the first leg's tick");
            leg.position_at_tick(t)
        };
        let mut out = vec![(lo, position_at(lo))];
        for leg in &legs {
            if leg.since > lo && leg.since < hi {
                out.push((leg.since, leg.anchor));
            }
        }
        if hi > lo {
            out.push((hi, position_at(hi)));
        }
        out
    }

    /// The alibi query: all ticks in `range` at which objects `a` and
    /// `b` — each assumed no faster than `vmax` between recorded
    /// samples — could have occupied the same point.  Exact prism
    /// intersection; see [`alibi_intervals`].
    pub fn alibi(&self, a: u64, b: u64, vmax: f64, range: Interval) -> IntervalSet {
        most_obs::inc("hist.alibi_queries");
        let _timer = most_obs::span("hist.alibi_nanos");
        let sa = self.alibi_samples(a, range);
        let sb = self.alibi_samples(b, range);
        alibi_intervals(&sa, vmax, &sb, vmax, range)
    }

    /// Brute-force alibi reference over the same recorded samples; must
    /// agree with [`HistoryStore::alibi`] byte-for-byte.
    pub fn alibi_by_oracle(&self, a: u64, b: u64, vmax: f64, range: Interval) -> IntervalSet {
        let sa = self.alibi_samples(a, range);
        let sb = self.alibi_samples(b, range);
        alibi_oracle(&sa, vmax, &sb, vmax, range)
    }
}

/// Thread-safe [`HistoryStore`] handle that attaches to the engines'
/// epoch-publish boundary.  Shards publish concurrently, so the store
/// sits behind one internal mutex; per shard the publish ordering
/// guarantee keeps each object's legs arriving in order.
pub struct HistoryRecorder {
    inner: Mutex<HistoryStore>,
}

impl std::fmt::Debug for HistoryRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistoryRecorder").finish_non_exhaustive()
    }
}

impl HistoryRecorder {
    /// A recorder with an empty store.
    pub fn new(config: HistoryConfig) -> Arc<Self> {
        Arc::new(HistoryRecorder { inner: Mutex::new(HistoryStore::new(config)) })
    }

    /// A recorder resuming from a snapshotted store.
    pub fn from_store(store: HistoryStore) -> Arc<Self> {
        Arc::new(HistoryRecorder { inner: Mutex::new(store) })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HistoryStore> {
        // A panicking observer must not wedge recording forever; the
        // store's invariants are per-object append + watermark, safe to
        // resume.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The publish-observer closure recording into this store.
    pub fn observer(self: &Arc<Self>) -> PublishObserver {
        let recorder = Arc::clone(self);
        Arc::new(move |db, _epoch| {
            recorder.record(db);
        })
    }

    /// Installs this recorder on a single-epoch engine and catches up on
    /// the already-published state (epochs published before installation
    /// are not replayed).
    pub fn attach(self: &Arc<Self>, epochs: &EpochDb) {
        epochs.set_publish_observer(Some(self.observer()));
        self.record(epochs.pin().db());
    }

    /// Installs this recorder on every shard of a sharded engine and
    /// catches up on the current cut.
    pub fn attach_sharded(self: &Arc<Self>, db: &ShardedDb) {
        db.set_publish_observer(Some(self.observer()));
        let cut = db.pin();
        for shard in 0..cut.shard_count() {
            self.record(cut.shard(shard));
        }
    }

    /// Installs this recorder on a durable engine (the WAL wrapper's
    /// inner epoch engine) and catches up on the recovered state.
    pub fn attach_durable(self: &Arc<Self>, db: &DurableDb) {
        self.attach(db.epochs());
    }

    /// Records one database state now; see [`HistoryStore::record`].
    pub fn record(&self, db: &Database) -> u64 {
        self.lock().record(db)
    }

    /// Runs a closure against the store under the recorder's lock.
    pub fn with<R>(&self, f: impl FnOnce(&HistoryStore) -> R) -> R {
        f(&self.lock())
    }

    /// A deep copy of the current store (snapshot save rides its
    /// `ToJson`).
    pub fn store_snapshot(&self) -> HistoryStore {
        self.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_core::UpdateOp;
    use most_spatial::{Point, Polygon, Velocity};
    use most_testkit::ser::{from_json_str, to_json_string};

    fn world() -> (EpochDb, u64, u64) {
        let mut db = Database::new(10_000);
        db.add_region("downtown", Polygon::rectangle(0.0, 0.0, 50.0, 50.0));
        let a = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
        let b = db.insert_moving_object("cars", Point::new(40.0, 0.0), Velocity::new(-1.0, 0.0));
        (EpochDb::new(db), a, b)
    }

    #[test]
    fn recording_consumes_legs_once() {
        let (edb, a, _) = world();
        let rec = HistoryRecorder::new(HistoryConfig::unpruned(16));
        rec.attach(&edb);
        assert_eq!(rec.with(|s| s.object(a).unwrap().retained()), 1, "initial legs caught up");
        edb.commit(|d| d.advance_clock(5));
        edb.apply_updates(&[UpdateOp::Motion { id: a, velocity: Velocity::new(0.0, 1.0) }])
            .unwrap();
        // Re-record the same published state by hand: idempotent.
        rec.record(edb.pin().db());
        let hist = rec.store_snapshot();
        assert_eq!(hist.object(a).unwrap().retained(), 2);
        assert_eq!(hist.last_seen(), 5);
    }

    #[test]
    fn retention_bounds_memory_but_not_aggregates() {
        let (edb, a, _) = world();
        let rec = HistoryRecorder::new(HistoryConfig { segment_capacity: 2, max_segments: 2, window: 8 });
        rec.attach(&edb);
        for i in 0..20u64 {
            edb.commit(|d| d.advance_clock(1));
            edb.apply_updates(&[UpdateOp::Motion {
                id: a,
                velocity: Velocity::new(0.1 * (i % 3) as f64, 0.0),
            }])
            .unwrap();
        }
        let store = rec.store_snapshot();
        let hist = store.object(a).unwrap();
        assert!(hist.retained() <= 4, "retention must cap legs: {}", hist.retained());
        assert!(hist.pruned() > 0);
        // The warehouse remembers pruned windows: both objects started in
        // `downtown` during the earliest (now pruned) window.
        assert_eq!(store.aggregates().count(0, "downtown"), 2);
    }

    #[test]
    fn store_snapshot_roundtrips_via_json() {
        let (edb, a, _) = world();
        let rec = HistoryRecorder::new(HistoryConfig::default());
        rec.attach(&edb);
        edb.commit(|d| d.advance_clock(3));
        edb.apply_updates(&[UpdateOp::Motion { id: a, velocity: Velocity::zero() }]).unwrap();
        let store = rec.store_snapshot();
        let text = to_json_string(&store).unwrap();
        let back: HistoryStore = from_json_str(&text).unwrap();
        assert_eq!(back, store);
        assert_eq!(to_json_string(&back).unwrap(), text);
        // A recorder resumed from the snapshot continues where it left off.
        let resumed = HistoryRecorder::from_store(back);
        resumed.record(edb.pin().db());
        assert_eq!(resumed.store_snapshot(), store, "no double-recording after restore");
    }

    #[test]
    fn alibi_answers_match_oracle_on_recorded_history() {
        let (edb, a, b) = world();
        let rec = HistoryRecorder::new(HistoryConfig::unpruned(16));
        rec.attach(&edb);
        for _ in 0..4 {
            edb.commit(|d| d.advance_clock(5));
            edb.apply_updates(&[
                UpdateOp::Motion { id: a, velocity: Velocity::new(1.0, 0.0) },
                UpdateOp::Motion { id: b, velocity: Velocity::new(-1.0, 0.0) },
            ])
            .unwrap();
        }
        let range = Interval::new(0, 20);
        rec.with(|s| {
            let fast = s.alibi(a, b, 1.5, range);
            let slow = s.alibi_by_oracle(a, b, 1.5, range);
            assert_eq!(fast, slow);
            assert!(!fast.is_empty(), "closing objects must be able to meet");
        });
    }
}
