//! Properties of the history warehouse's two query families.
//!
//! * `alibi_solver_matches_brute_force_oracle` — the exact prism
//!   (bead) intersection solver must agree **byte-for-byte** with the
//!   tick-stepping oracle on any pair of seeded sample tracks,
//!   including the degenerate geometry: a zero speed bound, coincident
//!   consecutive samples (a parked object), and prisms that only just
//!   touch (the integer lattice makes exact tangency common).
//! * `aggregates_match_full_recompute` — the incrementally-maintained
//!   windowed aggregates on an unpruned store must equal a full
//!   recompute over the retained sample log.
//!
//! Failures shrink to a minimal case and append their seed to
//! `tests/alibi_props.seeds`, replayed first on every run.

use most_core::{Database, EpochDb, UpdateOp};
use most_hist::{alibi_intervals, alibi_oracle, HistoryConfig, HistoryRecorder, Sample, WindowedAggregates};
use most_spatial::{Point, Polygon, Velocity};
use most_temporal::Interval;
use most_testkit::check::{ints, one_of, tuple2, tuple3, tuple4, vecs, Check, Gen};

/// One sampled track: seeded gaps and integer positions.  The `hold`
/// branch repeats the previous position — coincident consecutive
/// samples, the parked-object degeneracy.
#[derive(Debug, Clone)]
enum Leg {
    Move { gap: u64, x: i32, y: i32 },
    Hold { gap: u64 },
}

fn arb_leg() -> Gen<Leg> {
    one_of(vec![
        tuple3(ints(1u64..5), ints(-10i32..=10), ints(-10i32..=10))
            .map(|(gap, x, y)| Leg::Move { gap, x, y }),
        ints(1u64..5).map(|gap| Leg::Hold { gap }),
    ])
}

fn track(start: (i32, i32), legs: &[Leg]) -> Vec<Sample> {
    let mut t = 0u64;
    let mut pos = Point::new(start.0 as f64, start.1 as f64);
    let mut out = vec![(t, pos)];
    for leg in legs {
        match *leg {
            Leg::Move { gap, x, y } => {
                t += gap;
                pos = Point::new(x as f64, y as f64);
            }
            Leg::Hold { gap } => t += gap,
        }
        out.push((t, pos));
    }
    out
}

#[derive(Debug, Clone)]
struct AlibiCase {
    a_start: (i32, i32),
    b_start: (i32, i32),
    a_legs: Vec<Leg>,
    b_legs: Vec<Leg>,
    /// Quarter-steps: 0 is the zero-speed-bound degeneracy; small
    /// values make prisms that barely (or exactly) touch on the
    /// integer lattice.
    vmax_quarters: u32,
}

fn arb_case() -> Gen<AlibiCase> {
    let coord = || tuple2(ints(-10i32..=10), ints(-10i32..=10));
    tuple4(
        tuple2(coord(), coord()),
        vecs(arb_leg(), 1..6),
        vecs(arb_leg(), 1..6),
        ints(0u32..=10),
    )
    .map(|((a_start, b_start), a_legs, b_legs, vmax_quarters)| AlibiCase {
        a_start,
        b_start,
        a_legs,
        b_legs,
        vmax_quarters,
    })
}

#[test]
fn alibi_solver_matches_brute_force_oracle() {
    Check::new("hist::alibi_solver_matches_brute_force_oracle")
        .cases(192)
        .regressions("tests/alibi_props.seeds")
        .run(&arb_case(), |c| {
            let a = track(c.a_start, &c.a_legs);
            let b = track(c.b_start, &c.b_legs);
            let vmax = c.vmax_quarters as f64 * 0.25;
            let last = a.last().unwrap().0.max(b.last().unwrap().0);
            // The full span, a strict sub-range, and a range past the
            // samples all must agree.
            for range in [
                Interval::new(0, last),
                Interval::new(last / 3, (2 * last / 3).max(last / 3)),
                Interval::new(0, last + 5),
            ] {
                let fast = alibi_intervals(&a, vmax, &b, vmax, range);
                let slow = alibi_oracle(&a, vmax, &b, vmax, range);
                assert_eq!(
                    fast, slow,
                    "solver/oracle split on range [{}, {}] vmax {vmax}",
                    range.begin(),
                    range.end()
                );
            }
        });
}

/// One update step driven through a real epoch engine.
#[derive(Debug, Clone)]
struct AggCase {
    objects: Vec<(i32, i32, i32, i32)>,
    steps: Vec<(u64, u64, i32, i32)>, // ticks, object index, vx, vy
    window: u64,
}

fn arb_agg_case() -> Gen<AggCase> {
    tuple3(
        vecs(tuple4(ints(-30i32..=30), ints(-30i32..=30), ints(-3i32..=3), ints(-3i32..=3)), 1..4),
        vecs(
            tuple4(ints(1u64..6), ints(0u64..4), ints(-3i32..=3), ints(-3i32..=3)),
            1..8,
        ),
        ints(1u64..20),
    )
    .map(|(objects, steps, window)| AggCase { objects, steps, window })
}

#[test]
fn aggregates_match_full_recompute() {
    Check::new("hist::aggregates_match_full_recompute")
        .cases(96)
        .regressions("tests/alibi_props.seeds")
        .run(&arb_agg_case(), |c| {
            let mut db = Database::new(10_000);
            db.add_region("inner", Polygon::rectangle(-10.0, -10.0, 10.0, 10.0));
            db.add_region("east", Polygon::rectangle(0.0, -40.0, 40.0, 40.0));
            let ids: Vec<u64> = c
                .objects
                .iter()
                .map(|&(x, y, vx, vy)| {
                    db.insert_moving_object(
                        "cars",
                        Point::new(x as f64, y as f64),
                        Velocity::new(vx as f64, vy as f64),
                    )
                })
                .collect();
            let edb = EpochDb::new(db);
            let rec = HistoryRecorder::new(HistoryConfig::unpruned(c.window));
            rec.attach(&edb);
            for &(ticks, idx, vx, vy) in &c.steps {
                edb.commit(|d| d.advance_clock(ticks));
                let id = ids[(idx as usize) % ids.len()];
                edb.apply_updates(&[UpdateOp::Motion {
                    id,
                    velocity: Velocity::new(vx as f64, vy as f64),
                }])
                .unwrap();
            }
            let pin = edb.pin();
            rec.with(|store| {
                let oracle = WindowedAggregates::recompute(
                    c.window,
                    store.retained_samples(),
                    pin.db(),
                );
                assert_eq!(store.aggregates(), &oracle, "incremental aggregate diverged");
            });
        });
}
