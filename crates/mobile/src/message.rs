//! Messages exchanged between mobile computers.

use most_spatial::{Point, Velocity};
use most_temporal::Tick;

/// A message payload; sizes approximate a compact wire encoding and drive
/// the byte accounting of experiments E6/E6b/E11.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A query shipped to a remote computer (query shipping).
    Query {
        /// Query text.
        text: String,
    },
    /// A full object state (data shipping / relationship centralization).
    State {
        /// Object id.
        id: u64,
        /// Position at the send tick.
        position: Point,
        /// Motion vector.
        velocity: Velocity,
    },
    /// A predicate-match notification (query shipping reply): the sender's
    /// object satisfies / stopped satisfying the predicate.
    MatchStatus {
        /// Object id.
        id: u64,
        /// Whether the predicate now holds.
        matches: bool,
    },
    /// A block of `Answer(CQ)` tuples `(instantiation id, begin, end)`.
    AnswerBlock {
        /// The tuples.
        tuples: Vec<(u64, Tick, Tick)>,
    },
    /// Cancels a continuous query.
    Cancel,
    /// A reliable-transport data frame wrapping an application payload
    /// ([`crate::reliable`]).
    Frame {
        /// Per-`(sender, recipient)` transport sequence number.
        seq: u64,
        /// The application payload carried by the frame.
        inner: Box<Payload>,
    },
    /// Acknowledges receipt of the reliable frame `seq`
    /// ([`crate::reliable`]).
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// One record of the primary's global mutation sequence, shipped to
    /// a replica ([`crate::replication`]).  Carries the WAL record as
    /// its canonical JSON text, so the wire format is exactly the
    /// durable format.
    Replica {
        /// Global WAL sequence number of the record.
        seq: u64,
        /// The `most-core` `WalRecord`, JSON-encoded.
        record: String,
    },
}

impl Payload {
    /// Approximate encoded size in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::Query { text } => 16 + text.len() as u64,
            Payload::State { .. } => 48,
            Payload::MatchStatus { .. } => 17,
            Payload::AnswerBlock { tuples } => 16 + 24 * tuples.len() as u64,
            Payload::Cancel => 8,
            Payload::Frame { inner, .. } => 8 + inner.size_bytes(),
            Payload::Ack { .. } => 12,
            Payload::Replica { record, .. } => 16 + record.len() as u64,
        }
    }
}

/// An addressed message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender node id.
    pub from: u64,
    /// Recipient node id.
    pub to: u64,
    /// Tick at which the message was sent.
    pub sent_at: Tick,
    /// Monotone network-assigned send sequence number: a unique,
    /// strictly increasing id per *physical copy* put in flight.  Breaks
    /// delivery-order ties once duplication/retransmission can put two
    /// copies of the same logical message in flight.
    pub seq: u64,
    /// Payload.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_scale() {
        assert_eq!(Payload::Cancel.size_bytes(), 8);
        assert_eq!(Payload::Query { text: "RETRIEVE o".into() }.size_bytes(), 26);
        assert_eq!(
            Payload::State {
                id: 1,
                position: Point::origin(),
                velocity: Velocity::zero()
            }
            .size_bytes(),
            48
        );
        let small = Payload::AnswerBlock { tuples: vec![(1, 0, 5)] };
        let big = Payload::AnswerBlock { tuples: vec![(1, 0, 5); 10] };
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn transport_frames_pay_a_fixed_header() {
        let inner = Payload::MatchStatus { id: 3, matches: true };
        let framed = Payload::Frame { seq: 9, inner: Box::new(inner.clone()) };
        assert_eq!(framed.size_bytes(), 8 + inner.size_bytes());
        assert_eq!(Payload::Ack { seq: 9 }.size_bytes(), 12);
    }
}
