//! Simulated mobile distributed environment (Sections 5.2–5.3).
//!
//! The paper's architecture sections argue about *message costs*: which
//! strategy ships fewer/lighter messages when the database is distributed
//! over the moving objects themselves, and how to deliver `Answer(CQ)` to a
//! moving client that may disconnect.  This crate builds the simulated
//! substrate those arguments need — there is no real wireless network in a
//! reproduction, but the paper's claims are about counts, which a
//! simulator measures exactly (see DESIGN.md, substitutions):
//!
//! * [`message`] / [`network`] — a discrete-tick message-passing network
//!   with per-message byte accounting, fixed latency, per-node
//!   disconnection windows, and a seeded [`network::FaultPlan`]
//!   (probabilistic loss, duplication, jitter/reordering, partitions);
//! * [`reliable`] — a reliable transport over the raw network: per-peer
//!   sequence numbers, acks, retransmission with exponential backoff,
//!   duplicate suppression, store-and-forward for disconnected peers;
//! * [`replication`] — a primary/follower pair shipping the durable
//!   WAL record sequence (`most-core::wal`) over the reliable mesh, so
//!   a follower converges to a byte-identical database fingerprint even
//!   under loss, duplication and partitions;
//! * [`sim`] — a fleet of mobile nodes, each holding exactly its own
//!   object ("each object resides in the computer on the moving vehicle it
//!   represents, but nowhere else") with scheduled motion-vector updates;
//! * [`strategy`] — the three query types of Section 5.3
//!   (self-referencing / object / relationship) and the competing
//!   processing strategies (data shipping vs query shipping, one-shot and
//!   continuous);
//! * [`transmission`] — the immediate / delayed / block-wise delivery of
//!   `Answer(CQ)` to a moving client with memory limit `B` (Section 5.2),
//!   with display-error accounting under disconnection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod network;
pub mod reliable;
pub mod replication;
pub mod sim;
pub mod strategy;
pub mod transmission;

pub use message::{Message, Payload};
pub use network::{FaultPlan, NetStats, Network};
pub use reliable::{ReliableEndpoint, ReliableMesh, RetryPolicy, Transport};
pub use replication::{ReplicaApplier, ReplicaPublisher, MAX_PENDING_AHEAD};
pub use sim::{FleetSim, NodeInfo};
pub use strategy::{ObjectPredicate, QueryClass, QueryOutcome, RelPredicate, Shipping};
