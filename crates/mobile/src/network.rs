//! The simulated wireless network: latency, per-node disconnection
//! windows, seeded fault injection, exact message/byte accounting.
//!
//! Disconnection is first-class because the paper's Section 5.2 trade-off
//! hinges on "the probability that an update to Answer(CQ) can be
//! propagated to M (i.e. that M is not disconnected)".  A message whose
//! recipient is offline at delivery time is lost (counted in
//! [`NetStats::dropped`]) — the pessimistic model that makes the
//! immediate-vs-delayed comparison interesting.
//!
//! On top of the offline-window model, a [`FaultPlan`] layers
//! *probabilistic* faults driven by a seeded `most-testkit` RNG:
//! in-transit message loss, duplication, latency jitter (which reorders
//! deliveries) and node partitions.  Every fault decision is a pure
//! function of the plan's seed and the send sequence, so any experiment
//! is replayable from a single `u64`.

use crate::message::{Message, Payload};
use most_temporal::{Interval, IntervalSet, Tick};
use most_testkit::rng::Rng;
use std::collections::BTreeMap;

/// Cumulative traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Message copies delivered to a connected recipient.
    pub delivered: u64,
    /// Messages lost to disconnection (recipient offline at delivery).
    pub dropped: u64,
    /// Message copies lost in transit to injected loss or a partition cut.
    pub lost: u64,
    /// Extra copies injected by fault-plan duplication.
    pub duplicated: u64,
    /// Deliveries that arrived behind a later send from the same sender
    /// (jitter-induced reordering).  Disjoint from `lost`/`dropped` (only
    /// delivered copies are classified) and never counts a duplicate copy
    /// of an already-delivered send — copies share their send's seq.
    pub reordered: u64,
}

/// A deterministic fault-injection plan: probabilistic loss, duplication
/// and latency jitter driven by a seeded RNG, plus scheduled node
/// partitions.  Layered on top of the offline-window model by
/// [`Network::set_faults`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    loss: f64,
    duplication: f64,
    jitter: Tick,
    partitions: Vec<(Vec<u64>, Interval)>,
}

impl FaultPlan {
    /// A no-fault plan seeded with `seed`; compose with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, loss: 0.0, duplication: 0.0, jitter: 0, partitions: Vec::new() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability (clamped to `[0, 1]`) that any message copy is lost in
    /// transit.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Probability (clamped to `[0, 1]`) that a send injects a second
    /// copy of the message.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplication = p.clamp(0.0, 1.0);
        self
    }

    /// Maximum extra delivery latency in ticks; each copy draws a uniform
    /// extra delay in `0..=max_extra`, which reorders deliveries.
    pub fn with_jitter(mut self, max_extra: Tick) -> Self {
        self.jitter = max_extra;
        self
    }

    /// Isolates `group` from every other node during `[from, to]`: any
    /// message crossing the partition boundary at its delivery tick is
    /// cut (counted in [`NetStats::lost`]).
    pub fn with_partition(mut self, group: &[u64], from: Tick, to: Tick) -> Self {
        self.partitions.push((group.to_vec(), Interval::new(from, to)));
        self
    }

    /// Whether the link `a -> b` is severed by a partition at tick `t`.
    fn cuts(&self, a: u64, b: u64, t: Tick) -> bool {
        self.partitions.iter().any(|(group, window)| {
            window.contains(t) && (group.contains(&a) != group.contains(&b))
        })
    }
}

/// The simulated network.
#[derive(Debug, Clone, Default)]
pub struct Network {
    latency: Tick,
    in_flight: Vec<(Tick, Message)>,
    offline: BTreeMap<u64, IntervalSet>,
    /// Traffic counters.
    pub stats: NetStats,
    per_node: BTreeMap<u64, NetStats>,
    faults: Option<(FaultPlan, Rng)>,
    next_seq: u64,
    /// Highest delivered seq per `(from, to)` link, for reorder accounting.
    last_delivered: BTreeMap<(u64, u64), u64>,
}

impl Network {
    /// A network with the given one-way latency in ticks.
    pub fn new(latency: Tick) -> Self {
        Network { latency, ..Network::default() }
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Tick {
        self.latency
    }

    /// Installs a fault plan; its RNG is (re)seeded from the plan's seed,
    /// so installing the same plan before replaying the same send
    /// sequence reproduces the identical fault schedule.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        let rng = Rng::seed_from_u64(plan.seed);
        self.faults = Some((plan, rng));
    }

    /// Removes any installed fault plan (offline windows remain).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Declares an offline window for a node (global ticks).
    pub fn add_offline_window(&mut self, node: u64, from: Tick, to: Tick) {
        let entry = self.offline.entry(node).or_default();
        *entry = entry.union(&IntervalSet::singleton(Interval::new(from, to)));
    }

    /// Whether `node` is connected at tick `t`.
    pub fn is_connected(&self, node: u64, t: Tick) -> bool {
        self.offline.get(&node).is_none_or(|s| !s.contains(t))
    }

    /// Per-node traffic breakdown: `messages`/`bytes` count traffic *sent
    /// by* `node`; `dropped`/`lost`/`duplicated`/`reordered` count events
    /// on traffic *addressed to* `node`.
    pub fn node_stats(&self, node: u64) -> NetStats {
        self.per_node.get(&node).copied().unwrap_or_default()
    }

    /// Sends a message at tick `now`; it is delivered (or dropped) at
    /// `now + latency` plus any fault-plan jitter.
    pub fn send(&mut self, from: u64, to: u64, payload: Payload, now: Tick) {
        let bytes = payload.size_bytes();
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        let sender = self.per_node.entry(from).or_default();
        sender.messages += 1;
        sender.bytes += bytes;

        // Fault decisions, in a fixed draw order per send so the fault
        // schedule is a pure function of (seed, send sequence):
        // duplication first, then (loss, jitter) per copy.
        let mut copies: Vec<(Tick, bool)> = Vec::with_capacity(2); // (deliver_at, lost)
        match &mut self.faults {
            None => copies.push((now + self.latency, false)),
            Some((plan, rng)) => {
                let n_copies = if rng.random_bool(plan.duplication) { 2 } else { 1 };
                for _ in 0..n_copies {
                    let lost = rng.random_bool(plan.loss);
                    let extra = rng.below(plan.jitter + 1);
                    copies.push((now + self.latency + extra, lost));
                }
            }
        }
        if copies.len() > 1 {
            self.stats.duplicated += copies.len() as u64 - 1;
            self.per_node.entry(to).or_default().duplicated += copies.len() as u64 - 1;
        }
        // One seq per *logical* send, shared by fault-injected duplicates:
        // giving each physical copy its own seq made a late-arriving
        // duplicate of an already-delivered message look like jitter
        // reordering to the watermark below.
        self.next_seq += 1;
        let seq = self.next_seq;
        let mut lost_copies = 0u64;
        for (deliver_at, in_transit_loss) in copies {
            if in_transit_loss {
                lost_copies += 1;
                continue;
            }
            self.in_flight.push((
                deliver_at,
                Message { from, to, sent_at: now, seq, payload: payload.clone() },
            ));
        }
        self.stats.lost += lost_copies;
        self.per_node.entry(to).or_default().lost += lost_copies;
        most_obs::inc("net.messages");
        most_obs::add("net.bytes", bytes);
        most_obs::add("net.lost", lost_copies);
    }

    /// Broadcast helper: sends the payload to every node in `nodes`
    /// except the sender, moving (not cloning) the payload into the final
    /// send.  Returns the number of recipients, so callers don't have to
    /// recompute `nodes.len() - 1`.
    pub fn broadcast(&mut self, from: u64, nodes: &[u64], payload: Payload, now: Tick) -> u64 {
        let Some(last_idx) = nodes.iter().rposition(|&to| to != from) else {
            return 0;
        };
        let mut sent = 0u64;
        for &to in &nodes[..last_idx] {
            if to != from {
                self.send(from, to, payload.clone(), now);
                sent += 1;
            }
        }
        self.send(from, nodes[last_idx], payload, now);
        sent + 1
    }

    /// Delivers every message due at or before `now`; messages to offline
    /// recipients are dropped, messages crossing an active partition are
    /// cut.  Delivery order is `(sent_at, from, seq)` — the monotone
    /// per-send `seq` orders distinct logical sends, while copies of the
    /// same send share a seq (the stable sort keeps their send order).
    pub fn deliver_due(&mut self, now: Tick) -> Vec<Message> {
        let mut delivered = Vec::new();
        let mut remaining = Vec::with_capacity(self.in_flight.len());
        let in_flight = std::mem::take(&mut self.in_flight);
        let mut dropped = 0u64;
        let mut cut = 0u64;
        for (at, msg) in in_flight {
            if at > now {
                remaining.push((at, msg));
            } else if !self.is_connected(msg.to, at) {
                dropped += 1;
                self.stats.dropped += 1;
                self.per_node.entry(msg.to).or_default().dropped += 1;
            } else if self
                .faults
                .as_ref()
                .is_some_and(|(plan, _)| plan.cuts(msg.from, msg.to, at))
            {
                cut += 1;
                self.stats.lost += 1;
                self.per_node.entry(msg.to).or_default().lost += 1;
            } else {
                delivered.push(msg);
            }
        }
        self.in_flight = remaining;
        delivered.sort_by_key(|m| (m.sent_at, m.from, m.seq));
        let mut reordered = 0u64;
        for m in &delivered {
            self.stats.delivered += 1;
            self.per_node.entry(m.to).or_default().delivered += 1;
            let high = self.last_delivered.entry((m.from, m.to)).or_insert(0);
            if m.seq < *high {
                reordered += 1;
                self.stats.reordered += 1;
                self.per_node.entry(m.to).or_default().reordered += 1;
            } else {
                *high = m.seq;
            }
        }
        most_obs::add("net.delivered", delivered.len() as u64);
        most_obs::add("net.dropped", dropped);
        most_obs::add("net.lost", cut);
        most_obs::add("net.reordered", reordered);
        delivered
    }

    /// Messages still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency() {
        let mut net = Network::new(2);
        net.send(1, 2, Payload::Cancel, 0);
        assert!(net.deliver_due(1).is_empty());
        let msgs = net.deliver_due(2);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, 2);
        assert_eq!(net.stats.messages, 1);
        assert_eq!(net.stats.bytes, 8);
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn disconnection_drops_messages() {
        let mut net = Network::new(1);
        net.add_offline_window(2, 5, 10);
        assert!(net.is_connected(2, 4));
        assert!(!net.is_connected(2, 5));
        // Sent at 5, delivered at 6 while offline: dropped.
        net.send(1, 2, Payload::Cancel, 5);
        assert!(net.deliver_due(6).is_empty());
        assert_eq!(net.stats.dropped, 1);
        assert_eq!(net.node_stats(2).dropped, 1);
        // Sent at 10, delivered at 11 after reconnection: arrives.
        net.send(1, 2, Payload::Cancel, 10);
        assert_eq!(net.deliver_due(11).len(), 1);
    }

    #[test]
    fn broadcast_skips_sender() {
        let mut net = Network::new(0);
        let sent = net.broadcast(1, &[1, 2, 3, 4], Payload::Cancel, 0);
        assert_eq!(sent, 3);
        assert_eq!(net.stats.messages, 3);
        let msgs = net.deliver_due(0);
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().all(|m| m.to != 1));
        // A broadcast with no recipients sends nothing.
        assert_eq!(net.broadcast(1, &[1], Payload::Cancel, 0), 0);
        assert_eq!(net.stats.messages, 3);
    }

    #[test]
    fn multiple_offline_windows_merge() {
        let mut net = Network::new(0);
        net.add_offline_window(7, 0, 2);
        net.add_offline_window(7, 10, 12);
        assert!(!net.is_connected(7, 1));
        assert!(net.is_connected(7, 5));
        assert!(!net.is_connected(7, 11));
    }

    #[test]
    fn seq_breaks_delivery_ties() {
        let mut net = Network::new(0);
        net.send(1, 2, Payload::Cancel, 0);
        net.send(1, 2, Payload::Cancel, 0);
        let msgs = net.deliver_due(0);
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].seq < msgs[1].seq, "same (sent_at, from) orders by seq");
    }

    #[test]
    fn fault_loss_is_deterministic_and_counted() {
        let run = || {
            let mut net = Network::new(0);
            net.set_faults(FaultPlan::new(7).with_loss(0.5));
            for _ in 0..100 {
                net.send(1, 2, Payload::Cancel, 0);
            }
            (net.deliver_due(0).len(), net.stats.lost)
        };
        let (delivered_a, lost_a) = run();
        let (delivered_b, lost_b) = run();
        assert_eq!(delivered_a, delivered_b, "same seed, same fate");
        assert_eq!(lost_a, lost_b);
        assert_eq!(delivered_a as u64 + lost_a, 100);
        assert!(lost_a > 20 && lost_a < 80, "loss ~50%, got {lost_a}");
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let mut net = Network::new(0);
        net.set_faults(FaultPlan::new(3).with_duplication(1.0));
        net.send(1, 2, Payload::Cancel, 0);
        let msgs = net.deliver_due(0);
        assert_eq!(msgs.len(), 2, "always-duplicate plan delivers two copies");
        assert_eq!(net.stats.duplicated, 1);
        assert_eq!(net.node_stats(2).duplicated, 1);
        // Logical send accounting is unchanged.
        assert_eq!(net.stats.messages, 1);
    }

    #[test]
    fn jitter_reorders_and_is_counted() {
        let mut net = Network::new(1);
        net.set_faults(FaultPlan::new(11).with_jitter(6));
        for _ in 0..40 {
            net.send(1, 2, Payload::Cancel, 0);
        }
        // Drain tick by tick; jitter spreads arrivals over [1, 7].
        let mut seqs = Vec::new();
        for t in 0..=10 {
            seqs.extend(net.deliver_due(t).into_iter().map(|m| m.seq));
        }
        assert_eq!(seqs.len(), 40);
        assert!(seqs.windows(2).any(|w| w[0] > w[1]), "jitter must reorder");
        assert!(net.stats.reordered > 0);
        assert_eq!(net.node_stats(2).reordered, net.stats.reordered);
    }

    #[test]
    fn partitions_cut_crossing_messages_only() {
        let mut net = Network::new(0);
        net.set_faults(FaultPlan::new(0).with_partition(&[1, 2], 10, 20));
        // Inside the group: unaffected.
        net.send(1, 2, Payload::Cancel, 15);
        // Crossing the boundary during the window: cut.
        net.send(1, 3, Payload::Cancel, 15);
        // Crossing outside the window: unaffected.
        net.send(1, 3, Payload::Cancel, 25);
        let msgs = net.deliver_due(30);
        assert_eq!(msgs.len(), 2);
        assert_eq!(net.stats.lost, 1);
        assert_eq!(net.node_stats(3).lost, 1);
    }

    #[test]
    fn per_node_send_accounting() {
        let mut net = Network::new(0);
        net.send(1, 2, Payload::Cancel, 0);
        net.send(1, 2, Payload::Cancel, 0);
        net.send(2, 1, Payload::Cancel, 0);
        assert_eq!(net.node_stats(1).messages, 2);
        assert_eq!(net.node_stats(1).bytes, 16);
        assert_eq!(net.node_stats(2).messages, 1);
        assert_eq!(net.node_stats(9), NetStats::default());
    }
}
