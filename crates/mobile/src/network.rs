//! The simulated wireless network: fixed latency, per-node disconnection
//! windows, exact message/byte accounting.
//!
//! Disconnection is first-class because the paper's Section 5.2 trade-off
//! hinges on "the probability that an update to Answer(CQ) can be
//! propagated to M (i.e. that M is not disconnected)".  A message whose
//! recipient is offline at delivery time is lost (counted in
//! [`NetStats::dropped`]) — the pessimistic model that makes the
//! immediate-vs-delayed comparison interesting.

use crate::message::{Message, Payload};
use most_temporal::{Interval, IntervalSet, Tick};
use std::collections::BTreeMap;

/// Cumulative traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Messages lost to disconnection.
    pub dropped: u64,
}

/// The simulated network.
#[derive(Debug, Clone, Default)]
pub struct Network {
    latency: Tick,
    in_flight: Vec<(Tick, Message)>,
    offline: BTreeMap<u64, IntervalSet>,
    /// Traffic counters.
    pub stats: NetStats,
}

impl Network {
    /// A network with the given one-way latency in ticks.
    pub fn new(latency: Tick) -> Self {
        Network { latency, ..Network::default() }
    }

    /// Declares an offline window for a node (global ticks).
    pub fn add_offline_window(&mut self, node: u64, from: Tick, to: Tick) {
        let entry = self.offline.entry(node).or_default();
        *entry = entry.union(&IntervalSet::singleton(Interval::new(from, to)));
    }

    /// Whether `node` is connected at tick `t`.
    pub fn is_connected(&self, node: u64, t: Tick) -> bool {
        self.offline.get(&node).is_none_or(|s| !s.contains(t))
    }

    /// Sends a message at tick `now`; it is delivered (or dropped) at
    /// `now + latency`.
    pub fn send(&mut self, from: u64, to: u64, payload: Payload, now: Tick) {
        self.stats.messages += 1;
        self.stats.bytes += payload.size_bytes();
        self.in_flight
            .push((now + self.latency, Message { from, to, sent_at: now, payload }));
    }

    /// Broadcast helper: sends the payload to every node in `nodes` except
    /// the sender.
    pub fn broadcast(&mut self, from: u64, nodes: &[u64], payload: Payload, now: Tick) {
        for &to in nodes {
            if to != from {
                self.send(from, to, payload.clone(), now);
            }
        }
    }

    /// Delivers every message due at or before `now`; messages to offline
    /// recipients are dropped.
    pub fn deliver_due(&mut self, now: Tick) -> Vec<Message> {
        let mut delivered = Vec::new();
        let mut remaining = Vec::with_capacity(self.in_flight.len());
        let in_flight = std::mem::take(&mut self.in_flight);
        for (at, msg) in in_flight {
            if at > now {
                remaining.push((at, msg));
            } else if self.is_connected(msg.to, at) {
                delivered.push(msg);
            } else {
                self.stats.dropped += 1;
            }
        }
        self.in_flight = remaining;
        delivered.sort_by_key(|m| (m.sent_at, m.from));
        delivered
    }

    /// Messages still in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency() {
        let mut net = Network::new(2);
        net.send(1, 2, Payload::Cancel, 0);
        assert!(net.deliver_due(1).is_empty());
        let msgs = net.deliver_due(2);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, 2);
        assert_eq!(net.stats.messages, 1);
        assert_eq!(net.stats.bytes, 8);
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn disconnection_drops_messages() {
        let mut net = Network::new(1);
        net.add_offline_window(2, 5, 10);
        assert!(net.is_connected(2, 4));
        assert!(!net.is_connected(2, 5));
        // Sent at 5, delivered at 6 while offline: dropped.
        net.send(1, 2, Payload::Cancel, 5);
        assert!(net.deliver_due(6).is_empty());
        assert_eq!(net.stats.dropped, 1);
        // Sent at 10, delivered at 11 after reconnection: arrives.
        net.send(1, 2, Payload::Cancel, 10);
        assert_eq!(net.deliver_due(11).len(), 1);
    }

    #[test]
    fn broadcast_skips_sender() {
        let mut net = Network::new(0);
        net.broadcast(1, &[1, 2, 3, 4], Payload::Cancel, 0);
        assert_eq!(net.stats.messages, 3);
        let msgs = net.deliver_due(0);
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().all(|m| m.to != 1));
    }

    #[test]
    fn multiple_offline_windows_merge() {
        let mut net = Network::new(0);
        net.add_offline_window(7, 0, 2);
        net.add_offline_window(7, 10, 12);
        assert!(!net.is_connected(7, 1));
        assert!(net.is_connected(7, 5));
        assert!(!net.is_connected(7, 11));
    }
}
