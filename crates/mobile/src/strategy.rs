//! Distributed query processing strategies (Section 5.3).
//!
//! Three query classes:
//!
//! * **self-referencing** — "Will I reach the point (a,b) in 3 minutes?" —
//!   answered locally, zero messages;
//! * **object** — "Retrieve the objects that will reach the point (a,b) in
//!   3 minutes" — per-object predicates, processed either by *data
//!   shipping* ("request that the object of each mobile computer be sent to
//!   M; then M processes the query") or *query shipping* ("send the query
//!   to all the other mobile computers; each computer for which the
//!   predicate is satisfied sends the object to M"), the latter being the
//!   paper's preferred strategy;
//! * **relationship** — "objects that stay within 2 miles of each other" —
//!   centralized at the issuer ("the most efficient way ... is to send all
//!   the objects to a central location").

use crate::message::Payload;
use crate::network::Network;
use crate::sim::{FleetSim, NodeInfo};
use most_spatial::predicates::{dist_within, inside_polygon, piecewise};
use most_spatial::{MovingPoint, Point, Polygon, Rect};
use most_temporal::{Duration, Horizon, Interval, IntervalSet, Tick};

/// Classification of a distributed query (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Decidable from the issuer's own object alone.
    SelfReferencing,
    /// Decidable per object, independently of other objects.
    Object,
    /// Requires two or more objects jointly.
    Relationship,
}

/// Per-object predicates for object (and self-referencing) queries.
#[derive(Debug, Clone)]
pub enum ObjectPredicate {
    /// "Will reach (come within `radius` of) `target` within `within`
    /// ticks" — the paper's running example.
    ReachesPointWithin {
        /// Target point.
        target: Point,
        /// Proximity radius.
        radius: f64,
        /// Deadline, in ticks from now.
        within: Duration,
    },
    /// Currently inside an axis-aligned region.
    InsideRect(Rect),
    /// Will be inside the polygon within the deadline.
    EntersPolygonWithin {
        /// The polygon.
        polygon: Polygon,
        /// Deadline in ticks.
        within: Duration,
    },
    /// Static attribute threshold.
    PriceAtMost(f64),
}

impl ObjectPredicate {
    /// Whether the predicate holds for `node` at tick `now`, given its
    /// currently recorded motion.  The `...Within` variants are
    /// *eventuality* predicates: they hold now iff satisfaction occurs at
    /// some tick in `[now, now + within]`.
    pub fn eval(&self, node: &NodeInfo, now: Tick) -> bool {
        match self {
            ObjectPredicate::PriceAtMost(limit) => node.price <= *limit,
            ObjectPredicate::InsideRect(r) => {
                r.contains(node.trajectory.position_at_tick(now))
            }
            _ => {
                // satisfaction_from is computed over [0, now + within];
                // only ticks >= now count towards the eventuality.
                self.satisfaction_from(node, now)
                    .last_tick()
                    .is_some_and(|last| last >= now)
            }
        }
    }

    /// The ticks (from `now` to the prediction horizon) at which the
    /// predicate holds, based on the node's current motion extrapolated —
    /// used by the continuous strategies.
    pub fn satisfaction_from(&self, node: &NodeInfo, now: Tick) -> IntervalSet {
        let leg = node.trajectory.leg_at(now);
        match self {
            ObjectPredicate::PriceAtMost(limit) => {
                if node.price <= *limit {
                    IntervalSet::singleton(Interval::new(0, Tick::MAX - 1))
                } else {
                    IntervalSet::empty()
                }
            }
            ObjectPredicate::InsideRect(r) => {
                let h = Horizon::new(now + 10_000);
                most_spatial::predicates::inside_rect(leg, *r, h)
            }
            ObjectPredicate::ReachesPointWithin { target, radius, within } => {
                let h = Horizon::new(now + within);
                dist_within(leg, MovingPoint::stationary(*target), *radius, h)
            }
            ObjectPredicate::EntersPolygonWithin { polygon, within } => {
                let h = Horizon::new(now + within);
                inside_polygon(leg, polygon, h)
            }
        }
    }
}

/// Relationship predicates over pairs of objects.
#[derive(Debug, Clone)]
pub enum RelPredicate {
    /// "Stay within `radius` of each other for at least the next `for_at_least`
    /// ticks."
    StayWithinFor {
        /// Pair distance bound.
        radius: f64,
        /// Required duration.
        for_at_least: Duration,
    },
}

impl RelPredicate {
    /// Evaluates the predicate on two recorded motions at tick `now`.
    pub fn eval_pair(&self, a: &MovingPoint, b: &MovingPoint, now: Tick) -> bool {
        match self {
            RelPredicate::StayWithinFor { radius, for_at_least } => {
                let h = Horizon::new(now + for_at_least);
                let set = dist_within(*a, *b, *radius, h);
                set.always_for(*for_at_least, h).contains(now)
            }
        }
    }
}

/// A self-referencing query: evaluated on the issuer's own object; *no
/// messages are exchanged* ("self-referencing queries can be answered
/// without any inter-computer communication").
pub fn self_referencing(sim: &FleetSim, issuer: u64, pred: &ObjectPredicate) -> Option<bool> {
    sim.node(issuer).map(|n| pred.eval(n, sim.now()))
}

/// One-shot object query, **data shipping**: every other node sends its
/// object state to the issuer, which evaluates the predicate locally.
pub fn object_query_data_shipping(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
) -> Vec<u64> {
    let now = sim.now();
    let ids = sim.node_ids();
    // Request broadcast, then each node ships its state.
    net.broadcast(issuer, &ids, Payload::Query { text: "SHIP-STATE".into() }, now);
    for &id in &ids {
        if id == issuer {
            continue;
        }
        let node = sim.node(id).expect("fleet node");
        let leg = node.trajectory.leg_at(now);
        net.send(
            id,
            issuer,
            Payload::State {
                id,
                position: leg.position_at_tick(now),
                velocity: leg.velocity,
            },
            now,
        );
    }
    // Issuer evaluates every received object.
    let mut out: Vec<u64> = ids
        .into_iter()
        .filter(|&id| id != issuer)
        .filter(|&id| pred.eval(sim.node(id).expect("fleet node"), now))
        .collect();
    out.sort_unstable();
    out
}

/// One-shot object query, **query shipping**: the query is broadcast; each
/// node evaluates locally ("it processes the query in parallel, at all the
/// mobile computers") and only satisfied nodes reply.
pub fn object_query_query_shipping(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    query_text: &str,
) -> Vec<u64> {
    let now = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: query_text.into() }, now);
    let mut out = Vec::new();
    for &id in &ids {
        if id == issuer {
            continue;
        }
        if pred.eval(sim.node(id).expect("fleet node"), now) {
            net.send(id, issuer, Payload::MatchStatus { id, matches: true }, now);
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Continuous object query over `[sim.now(), until]`, **data shipping**:
/// "using the first approach C would have to transmit C to M every time the
/// object C changes."  Returns the per-node satisfaction ground truth.
pub fn continuous_object_data_shipping(
    sim: &mut FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    until: Tick,
) -> Vec<(u64, IntervalSet)> {
    let start = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: "SHIP-STATE-CONT".into() }, start);
    // Initial state shipment.
    for &id in &ids {
        if id == issuer {
            continue;
        }
        let node = sim.node(id).expect("fleet node");
        let leg = node.trajectory.leg_at(start);
        net.send(
            id,
            issuer,
            Payload::State { id, position: leg.position_at_tick(start), velocity: leg.velocity },
            start,
        );
    }
    // Every motion-vector change ships the new state.
    let updates = sim.advance_to(until);
    for (id, at) in &updates {
        if *id == issuer {
            continue;
        }
        let node = sim.node(*id).expect("fleet node");
        let leg = node.trajectory.leg_at(*at);
        net.send(
            *id,
            issuer,
            Payload::State { id: *id, position: leg.position_at_tick(*at), velocity: leg.velocity },
            *at,
        );
    }
    ground_truth(sim, issuer, pred, start, until)
}

/// Continuous object query, **query shipping**: "the remote computer C
/// evaluates the predicate each time the object C changes, and transmits C
/// to M when the predicate is satisfied."  Each node sends one message per
/// satisfaction-status transition.
pub fn continuous_object_query_shipping(
    sim: &mut FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    until: Tick,
    query_text: &str,
) -> Vec<(u64, IntervalSet)> {
    let start = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: query_text.into() }, start);
    let truth = ground_truth_after_advance(sim, issuer, pred, start, until);
    // One MatchStatus message per status flip (enter/exit), per node.
    for (id, set) in &truth {
        let mut prev = false;
        for t in start..=until {
            let cur = set.contains(t);
            if cur != prev {
                net.send(*id, issuer, Payload::MatchStatus { id: *id, matches: cur }, t);
                prev = cur;
            }
        }
    }
    truth
}

/// Relationship query centralized at the issuer: all nodes ship state once;
/// the issuer evaluates every pair.
pub fn relationship_query_centralized(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &RelPredicate,
) -> Vec<(u64, u64)> {
    let now = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: "SHIP-STATE-ALL".into() }, now);
    for &id in &ids {
        if id == issuer {
            continue;
        }
        let node = sim.node(id).expect("fleet node");
        let leg = node.trajectory.leg_at(now);
        net.send(
            id,
            issuer,
            Payload::State { id, position: leg.position_at_tick(now), velocity: leg.velocity },
            now,
        );
    }
    let mut out = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let la = sim.node(a).expect("fleet node").trajectory.leg_at(now);
            let lb = sim.node(b).expect("fleet node").trajectory.leg_at(now);
            if pred.eval_pair(&la, &lb, now) {
                out.push((a, b));
            }
        }
    }
    out
}

/// Ground-truth satisfaction over `[start, until]` using the *full*
/// (already advanced) trajectories.
fn ground_truth(
    sim: &FleetSim,
    issuer: u64,
    pred: &ObjectPredicate,
    start: Tick,
    until: Tick,
) -> Vec<(u64, IntervalSet)> {
    let h = Horizon::new(until);
    let window = IntervalSet::singleton(Interval::new(start, until));
    sim.node_ids()
        .into_iter()
        .filter(|&id| id != issuer)
        .map(|id| {
            let node = sim.node(id).expect("fleet node");
            let set = match pred {
                ObjectPredicate::PriceAtMost(limit) => {
                    if node.price <= *limit {
                        IntervalSet::full(h)
                    } else {
                        IntervalSet::empty()
                    }
                }
                ObjectPredicate::InsideRect(r) => piecewise(&node.trajectory, h, |leg, h| {
                    most_spatial::predicates::inside_rect(leg, *r, h)
                }),
                ObjectPredicate::ReachesPointWithin { target, radius, .. } => {
                    piecewise(&node.trajectory, h, |leg, h| {
                        dist_within(leg, MovingPoint::stationary(*target), *radius, h)
                    })
                }
                ObjectPredicate::EntersPolygonWithin { polygon, .. } => {
                    piecewise(&node.trajectory, h, |leg, h| inside_polygon(leg, polygon, h))
                }
            };
            (id, set.intersect(&window))
        })
        .filter(|(_, s)| !s.is_empty())
        .collect()
}

fn ground_truth_after_advance(
    sim: &mut FleetSim,
    issuer: u64,
    pred: &ObjectPredicate,
    start: Tick,
    until: Tick,
) -> Vec<(u64, IntervalSet)> {
    sim.advance_to(until);
    ground_truth(sim, issuer, pred, start, until)
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::Velocity;

    /// Issuer 0 parked; node 1 drives towards (100, 0); node 2 drives away;
    /// node 3 parked near the target.
    fn fleet() -> FleetSim {
        let mut sim = FleetSim::new();
        sim.add_node(0, Point::new(0.0, 50.0), Velocity::zero(), 0.0, vec![]);
        sim.add_node(1, Point::origin(), Velocity::new(1.0, 0.0), 80.0, vec![]);
        sim.add_node(2, Point::origin(), Velocity::new(-1.0, 0.0), 60.0, vec![]);
        sim.add_node(3, Point::new(98.0, 0.0), Velocity::zero(), 100.0, vec![]);
        sim
    }

    fn reach_pred() -> ObjectPredicate {
        ObjectPredicate::ReachesPointWithin {
            target: Point::new(100.0, 0.0),
            radius: 5.0,
            within: 200,
        }
    }

    #[test]
    fn query_classes_are_distinct() {
        assert_ne!(QueryClass::SelfReferencing, QueryClass::Object);
        assert_ne!(QueryClass::Object, QueryClass::Relationship);
    }

    #[test]
    fn self_referencing_needs_no_messages() {
        let sim = fleet();
        assert_eq!(self_referencing(&sim, 3, &reach_pred()), Some(true));
        assert_eq!(self_referencing(&sim, 2, &reach_pred()), Some(false));
        assert_eq!(self_referencing(&sim, 99, &reach_pred()), None);
    }

    #[test]
    fn both_object_strategies_agree() {
        let sim = fleet();
        let mut net_a = Network::new(0);
        let mut net_b = Network::new(0);
        let a = object_query_data_shipping(&sim, &mut net_a, 0, &reach_pred());
        let b = object_query_query_shipping(&sim, &mut net_b, 0, &reach_pred(), "Q");
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 3]);
        // Query shipping sends fewer/lighter messages: broadcast + matches
        // vs broadcast + all states.
        assert!(net_b.stats.bytes < net_a.stats.bytes);
        assert!(net_b.stats.messages <= net_a.stats.messages);
    }

    #[test]
    fn continuous_strategies_same_truth_different_cost() {
        let mk = || {
            let mut sim = FleetSim::new();
            sim.add_node(0, Point::new(0.0, 50.0), Velocity::zero(), 0.0, vec![]);
            // Node 1 wanders with many updates but stays far away.
            sim.add_node(
                1,
                Point::new(1000.0, 1000.0),
                Velocity::new(1.0, 0.0),
                0.0,
                (1..50).map(|i| (i * 2, Velocity::new((i % 3) as f64, 1.0))).collect(),
            );
            // Node 2 drives straight through the target zone, no updates.
            sim.add_node(2, Point::origin(), Velocity::new(1.0, 0.0), 0.0, vec![]);
            sim
        };
        let pred = reach_pred();
        let mut sim_a = mk();
        let mut net_a = Network::new(0);
        let truth_a = continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, &pred, 150);
        let mut sim_b = mk();
        let mut net_b = Network::new(0);
        let truth_b =
            continuous_object_query_shipping(&mut sim_b, &mut net_b, 0, &pred, 150, "Q");
        assert_eq!(truth_a, truth_b);
        // Only node 2 ever matches.
        assert_eq!(truth_a.len(), 1);
        assert_eq!(truth_a[0].0, 2);
        // Data shipping pays for every one of node 1's 49 updates; query
        // shipping sends only node 2's enter/exit transitions.
        assert!(net_a.stats.messages > net_b.stats.messages + 40);
    }

    #[test]
    fn relationship_query_finds_convoys() {
        let mut sim = FleetSim::new();
        sim.add_node(0, Point::new(500.0, 500.0), Velocity::zero(), 0.0, vec![]);
        // A convoy travelling together.
        sim.add_node(1, Point::origin(), Velocity::new(1.0, 0.0), 0.0, vec![]);
        sim.add_node(2, Point::new(1.0, 0.5), Velocity::new(1.0, 0.0), 0.0, vec![]);
        // A car crossing them briefly.
        sim.add_node(3, Point::new(30.0, -30.0), Velocity::new(0.0, 1.0), 0.0, vec![]);
        let mut net = Network::new(0);
        let pairs = relationship_query_centralized(
            &sim,
            &mut net,
            0,
            &RelPredicate::StayWithinFor { radius: 2.0, for_at_least: 30 },
        );
        assert_eq!(pairs, vec![(1, 2)]);
        // All nodes shipped state to the issuer.
        assert_eq!(net.stats.messages as usize, (sim.len() - 1) * 2);
    }

    #[test]
    fn predicate_variants_evaluate() {
        let sim = fleet();
        let n1 = sim.node(1).unwrap();
        assert!(ObjectPredicate::PriceAtMost(100.0).eval(n1, 0));
        assert!(!ObjectPredicate::PriceAtMost(50.0).eval(n1, 0));
        assert!(!ObjectPredicate::InsideRect(Rect::new(90.0, -5.0, 110.0, 5.0)).eval(n1, 0));
        let poly = ObjectPredicate::EntersPolygonWithin {
            polygon: Polygon::rectangle(90.0, -5.0, 110.0, 5.0),
            within: 200,
        };
        assert!(poly.satisfaction_from(n1, 0).contains(95));
    }
}
