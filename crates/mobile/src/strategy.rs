//! Distributed query processing strategies (Section 5.3).
//!
//! Three query classes:
//!
//! * **self-referencing** — "Will I reach the point (a,b) in 3 minutes?" —
//!   answered locally, zero messages;
//! * **object** — "Retrieve the objects that will reach the point (a,b) in
//!   3 minutes" — per-object predicates, processed either by *data
//!   shipping* ("request that the object of each mobile computer be sent to
//!   M; then M processes the query") or *query shipping* ("send the query
//!   to all the other mobile computers; each computer for which the
//!   predicate is satisfied sends the object to M"), the latter being the
//!   paper's preferred strategy;
//! * **relationship** — "objects that stay within 2 miles of each other" —
//!   centralized at the issuer ("the most efficient way ... is to send all
//!   the objects to a central location").

use crate::message::Payload;
use crate::network::Network;
use crate::reliable::{ReliableMesh, Transport};
use crate::sim::{FleetSim, NodeInfo};
use most_spatial::predicates::{dist_within, inside_polygon, piecewise};
use most_spatial::{MovingPoint, Point, Polygon, Rect};
use most_temporal::{Duration, Horizon, Interval, IntervalSet, Tick};
use std::collections::BTreeSet;

/// Classification of a distributed query (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Decidable from the issuer's own object alone.
    SelfReferencing,
    /// Decidable per object, independently of other objects.
    Object,
    /// Requires two or more objects jointly.
    Relationship,
}

/// Per-object predicates for object (and self-referencing) queries.
#[derive(Debug, Clone)]
pub enum ObjectPredicate {
    /// "Will reach (come within `radius` of) `target` within `within`
    /// ticks" — the paper's running example.
    ReachesPointWithin {
        /// Target point.
        target: Point,
        /// Proximity radius.
        radius: f64,
        /// Deadline, in ticks from now.
        within: Duration,
    },
    /// Currently inside an axis-aligned region.
    InsideRect(Rect),
    /// Will be inside the polygon within the deadline.
    EntersPolygonWithin {
        /// The polygon.
        polygon: Polygon,
        /// Deadline in ticks.
        within: Duration,
    },
    /// Static attribute threshold.
    PriceAtMost(f64),
}

impl ObjectPredicate {
    /// Whether the predicate holds for `node` at tick `now`, given its
    /// currently recorded motion.  The `...Within` variants are
    /// *eventuality* predicates: they hold now iff satisfaction occurs at
    /// some tick in `[now, now + within]`.
    pub fn eval(&self, node: &NodeInfo, now: Tick) -> bool {
        match self {
            ObjectPredicate::PriceAtMost(limit) => node.price <= *limit,
            ObjectPredicate::InsideRect(r) => {
                r.contains(node.trajectory.position_at_tick(now))
            }
            _ => {
                // satisfaction_from is computed over [0, now + within];
                // only ticks >= now count towards the eventuality.
                self.satisfaction_from(node, now)
                    .last_tick()
                    .is_some_and(|last| last >= now)
            }
        }
    }

    /// The ticks (from `now` to the prediction horizon) at which the
    /// predicate holds, based on the node's current motion extrapolated —
    /// used by the continuous strategies.
    pub fn satisfaction_from(&self, node: &NodeInfo, now: Tick) -> IntervalSet {
        let leg = node.trajectory.leg_at(now);
        match self {
            ObjectPredicate::PriceAtMost(limit) => {
                if node.price <= *limit {
                    IntervalSet::singleton(Interval::new(0, Tick::MAX - 1))
                } else {
                    IntervalSet::empty()
                }
            }
            ObjectPredicate::InsideRect(r) => {
                let h = Horizon::new(now + 10_000);
                most_spatial::predicates::inside_rect(leg, *r, h)
            }
            ObjectPredicate::ReachesPointWithin { target, radius, within } => {
                let h = Horizon::new(now + within);
                dist_within(leg, MovingPoint::stationary(*target), *radius, h)
            }
            ObjectPredicate::EntersPolygonWithin { polygon, within } => {
                let h = Horizon::new(now + within);
                inside_polygon(leg, polygon, h)
            }
        }
    }
}

/// Relationship predicates over pairs of objects.
#[derive(Debug, Clone)]
pub enum RelPredicate {
    /// "Stay within `radius` of each other for at least the next `for_at_least`
    /// ticks."
    StayWithinFor {
        /// Pair distance bound.
        radius: f64,
        /// Required duration.
        for_at_least: Duration,
    },
}

impl RelPredicate {
    /// Evaluates the predicate on two recorded motions at tick `now`.
    pub fn eval_pair(&self, a: &MovingPoint, b: &MovingPoint, now: Tick) -> bool {
        match self {
            RelPredicate::StayWithinFor { radius, for_at_least } => {
                let h = Horizon::new(now + for_at_least);
                let set = dist_within(*a, *b, *radius, h);
                set.always_for(*for_at_least, h).contains(now)
            }
        }
    }
}

/// A self-referencing query: evaluated on the issuer's own object; *no
/// messages are exchanged* ("self-referencing queries can be answered
/// without any inter-computer communication").
pub fn self_referencing(sim: &FleetSim, issuer: u64, pred: &ObjectPredicate) -> Option<bool> {
    sim.node(issuer).map(|n| pred.eval(n, sim.now()))
}

/// One-shot object query, **data shipping**: every other node sends its
/// object state to the issuer, which evaluates the predicate locally.
pub fn object_query_data_shipping(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
) -> Vec<u64> {
    let now = sim.now();
    let ids = sim.node_ids();
    // Request broadcast, then each node ships its state.
    net.broadcast(issuer, &ids, Payload::Query { text: "SHIP-STATE".into() }, now);
    for &id in &ids {
        if id == issuer {
            continue;
        }
        let node = sim.node(id).expect("fleet node");
        net.send(id, issuer, node.state_payload(now), now);
    }
    // Issuer evaluates every received object.
    let mut out: Vec<u64> = ids
        .into_iter()
        .filter(|&id| id != issuer)
        .filter(|&id| pred.eval(sim.node(id).expect("fleet node"), now))
        .collect();
    out.sort_unstable();
    out
}

/// One-shot object query, **query shipping**: the query is broadcast; each
/// node evaluates locally ("it processes the query in parallel, at all the
/// mobile computers") and only satisfied nodes reply.
pub fn object_query_query_shipping(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    query_text: &str,
) -> Vec<u64> {
    let now = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: query_text.into() }, now);
    let mut out = Vec::new();
    for &id in &ids {
        if id == issuer {
            continue;
        }
        if pred.eval(sim.node(id).expect("fleet node"), now) {
            net.send(id, issuer, Payload::MatchStatus { id, matches: true }, now);
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Continuous object query over `[sim.now(), until]`, **data shipping**:
/// "using the first approach C would have to transmit C to M every time the
/// object C changes."  Returns the per-node satisfaction ground truth.
pub fn continuous_object_data_shipping(
    sim: &mut FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    until: Tick,
) -> Vec<(u64, IntervalSet)> {
    let start = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: "SHIP-STATE-CONT".into() }, start);
    // Initial state shipment.
    for &id in &ids {
        if id == issuer {
            continue;
        }
        let node = sim.node(id).expect("fleet node");
        net.send(id, issuer, node.state_payload(start), start);
    }
    // Every motion-vector change ships the new state.
    let updates = sim.advance_to(until);
    for (id, at) in &updates {
        if *id == issuer {
            continue;
        }
        let node = sim.node(*id).expect("fleet node");
        net.send(*id, issuer, node.state_payload(*at), *at);
    }
    ground_truth(sim, issuer, pred, start, until)
}

/// Continuous object query, **query shipping**: "the remote computer C
/// evaluates the predicate each time the object C changes, and transmits C
/// to M when the predicate is satisfied."  Each node sends one message per
/// satisfaction-status transition.
pub fn continuous_object_query_shipping(
    sim: &mut FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    until: Tick,
    query_text: &str,
) -> Vec<(u64, IntervalSet)> {
    let start = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: query_text.into() }, start);
    let truth = ground_truth_after_advance(sim, issuer, pred, start, until);
    // One MatchStatus message per status flip (enter/exit), per node.
    for (id, set) in &truth {
        let mut prev = false;
        for t in start..=until {
            let cur = set.contains(t);
            if cur != prev {
                net.send(*id, issuer, Payload::MatchStatus { id: *id, matches: cur }, t);
                prev = cur;
            }
        }
    }
    truth
}

/// Relationship query centralized at the issuer: all nodes ship state once;
/// the issuer evaluates every pair.
pub fn relationship_query_centralized(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &RelPredicate,
) -> Vec<(u64, u64)> {
    let now = sim.now();
    let ids = sim.node_ids();
    net.broadcast(issuer, &ids, Payload::Query { text: "SHIP-STATE-ALL".into() }, now);
    for &id in &ids {
        if id == issuer {
            continue;
        }
        let node = sim.node(id).expect("fleet node");
        net.send(id, issuer, node.state_payload(now), now);
    }
    let mut out = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let la = sim.node(a).expect("fleet node").trajectory.leg_at(now);
            let lb = sim.node(b).expect("fleet node").trajectory.leg_at(now);
            if pred.eval_pair(&la, &lb, now) {
                out.push((a, b));
            }
        }
    }
    out
}

/// Which of Section 5.3's object-query strategies ships what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shipping {
    /// Data shipping: every node ships its object state to the issuer.
    Data,
    /// Query shipping: every node evaluates locally and replies with a
    /// match status.
    Query,
}

/// Outcome of a fault-aware distributed query: the answer *as far as the
/// issuer can know it*, with explicit completeness reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Nodes whose arrived reply satisfies the predicate, ascending.
    pub matches: Vec<u64>,
    /// Number of nodes whose reply reached the issuer in time.
    pub responded: u64,
    /// Nodes whose reply never arrived before the timeout, ascending —
    /// the paper's "probability that an update can be propagated" made
    /// visible per node.
    pub missing: Vec<u64>,
    /// Whether every queried node responded (`missing.is_empty()`).
    pub complete: bool,
    /// Tick at which the issuer stopped waiting (last reply, or the
    /// timeout deadline).
    pub finished_at: Tick,
    /// Transport retransmissions spent (0 under [`Transport::Raw`]).
    pub retransmissions: u64,
}

/// One-shot object query over a *faulty* network: the request and the
/// replies actually traverse the [`Network`] (loss, duplication, jitter,
/// partitions, offline windows all apply), and the issuer waits at most
/// `timeout` ticks past `sim.now()` for responses.
///
/// Unlike the zero-fault [`object_query_query_shipping`], every node
/// replies under query shipping — a negative [`Payload::MatchStatus`]
/// instead of silence — so the issuer can tell a lost reply from a
/// non-match and report partial-answer completeness honestly; negative
/// replies are still cheaper than shipped states (17 vs 48 bytes).
/// Predicates are evaluated against the motion recorded at issue time,
/// so a complete outcome equals the zero-fault answer.
pub fn object_query_over(
    sim: &FleetSim,
    net: &mut Network,
    issuer: u64,
    pred: &ObjectPredicate,
    shipping: Shipping,
    transport: Transport,
    timeout: Duration,
) -> QueryOutcome {
    let t0 = sim.now();
    let ids = sim.node_ids();
    let request = Payload::Query {
        text: match shipping {
            Shipping::Data => "SHIP-STATE".into(),
            Shipping::Query => "EVAL-PRED".into(),
        },
    };
    let mut mesh = match transport {
        Transport::Raw => None,
        Transport::Reliable(policy) => Some(ReliableMesh::new(&ids, policy)),
    };
    // Broadcast the request; `expected` is the broadcast's own recipient
    // count, not a recomputed `nodes.len() - 1`.
    let expected = match &mut mesh {
        None => net.broadcast(issuer, &ids, request, t0),
        Some(mesh) => {
            let mut sent = 0u64;
            for &id in &ids {
                if id != issuer {
                    mesh.send(net, issuer, id, request.clone(), t0);
                    sent += 1;
                }
            }
            sent
        }
    };

    let mut outcome = QueryOutcome { finished_at: t0 + timeout, ..QueryOutcome::default() };
    let mut responded: BTreeSet<u64> = BTreeSet::new();
    let mut matches: BTreeSet<u64> = BTreeSet::new();
    for t in t0..=t0 + timeout {
        // Drain this tick's deliveries through the chosen transport.
        let events: Vec<(u64, u64, Payload)> = match &mut mesh {
            None => net
                .deliver_due(t)
                .into_iter()
                .map(|m| (m.to, m.from, m.payload))
                .collect(),
            Some(mesh) => mesh
                .tick(net, t)
                .into_iter()
                .map(|d| (d.at, d.from, d.payload))
                .collect(),
        };
        for (at, _from, payload) in events {
            if at == issuer {
                match payload {
                    Payload::State { id, .. } => {
                        responded.insert(id);
                        if pred.eval(sim.node(id).expect("fleet node"), t0) {
                            matches.insert(id);
                        }
                    }
                    Payload::MatchStatus { id, matches: m } => {
                        responded.insert(id);
                        if m {
                            matches.insert(id);
                        }
                    }
                    _ => {}
                }
            } else if matches!(payload, Payload::Query { .. }) {
                // A remote node received the request: reply now.
                let node = sim.node(at).expect("fleet node");
                let reply = match shipping {
                    Shipping::Data => node.state_payload(t0),
                    Shipping::Query => {
                        Payload::MatchStatus { id: at, matches: pred.eval(node, t0) }
                    }
                };
                match &mut mesh {
                    None => net.send(at, issuer, reply, t),
                    Some(mesh) => mesh.send(net, at, issuer, reply, t),
                }
            }
        }
        if responded.len() as u64 == expected {
            outcome.finished_at = t;
            break;
        }
    }
    outcome.matches = matches.into_iter().collect();
    outcome.responded = responded.len() as u64;
    outcome.missing = ids
        .into_iter()
        .filter(|&id| id != issuer && !responded.contains(&id))
        .collect();
    outcome.complete = outcome.missing.is_empty();
    if let Some(mesh) = &mesh {
        outcome.retransmissions = mesh.total_stats().retransmissions;
    }
    outcome
}

/// Ground-truth satisfaction over `[start, until]` using the *full*
/// (already advanced) trajectories.
fn ground_truth(
    sim: &FleetSim,
    issuer: u64,
    pred: &ObjectPredicate,
    start: Tick,
    until: Tick,
) -> Vec<(u64, IntervalSet)> {
    let h = Horizon::new(until);
    let window = IntervalSet::singleton(Interval::new(start, until));
    sim.node_ids()
        .into_iter()
        .filter(|&id| id != issuer)
        .map(|id| {
            let node = sim.node(id).expect("fleet node");
            let set = match pred {
                ObjectPredicate::PriceAtMost(limit) => {
                    if node.price <= *limit {
                        IntervalSet::full(h)
                    } else {
                        IntervalSet::empty()
                    }
                }
                ObjectPredicate::InsideRect(r) => piecewise(&node.trajectory, h, |leg, h| {
                    most_spatial::predicates::inside_rect(leg, *r, h)
                }),
                ObjectPredicate::ReachesPointWithin { target, radius, .. } => {
                    piecewise(&node.trajectory, h, |leg, h| {
                        dist_within(leg, MovingPoint::stationary(*target), *radius, h)
                    })
                }
                ObjectPredicate::EntersPolygonWithin { polygon, .. } => {
                    piecewise(&node.trajectory, h, |leg, h| inside_polygon(leg, polygon, h))
                }
            };
            (id, set.intersect(&window))
        })
        .filter(|(_, s)| !s.is_empty())
        .collect()
}

fn ground_truth_after_advance(
    sim: &mut FleetSim,
    issuer: u64,
    pred: &ObjectPredicate,
    start: Tick,
    until: Tick,
) -> Vec<(u64, IntervalSet)> {
    sim.advance_to(until);
    ground_truth(sim, issuer, pred, start, until)
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_spatial::Velocity;

    /// Issuer 0 parked; node 1 drives towards (100, 0); node 2 drives away;
    /// node 3 parked near the target.
    fn fleet() -> FleetSim {
        let mut sim = FleetSim::new();
        sim.add_node(0, Point::new(0.0, 50.0), Velocity::zero(), 0.0, vec![]);
        sim.add_node(1, Point::origin(), Velocity::new(1.0, 0.0), 80.0, vec![]);
        sim.add_node(2, Point::origin(), Velocity::new(-1.0, 0.0), 60.0, vec![]);
        sim.add_node(3, Point::new(98.0, 0.0), Velocity::zero(), 100.0, vec![]);
        sim
    }

    fn reach_pred() -> ObjectPredicate {
        ObjectPredicate::ReachesPointWithin {
            target: Point::new(100.0, 0.0),
            radius: 5.0,
            within: 200,
        }
    }

    #[test]
    fn query_classes_are_distinct() {
        assert_ne!(QueryClass::SelfReferencing, QueryClass::Object);
        assert_ne!(QueryClass::Object, QueryClass::Relationship);
    }

    #[test]
    fn self_referencing_needs_no_messages() {
        let sim = fleet();
        assert_eq!(self_referencing(&sim, 3, &reach_pred()), Some(true));
        assert_eq!(self_referencing(&sim, 2, &reach_pred()), Some(false));
        assert_eq!(self_referencing(&sim, 99, &reach_pred()), None);
    }

    #[test]
    fn both_object_strategies_agree() {
        let sim = fleet();
        let mut net_a = Network::new(0);
        let mut net_b = Network::new(0);
        let a = object_query_data_shipping(&sim, &mut net_a, 0, &reach_pred());
        let b = object_query_query_shipping(&sim, &mut net_b, 0, &reach_pred(), "Q");
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 3]);
        // Query shipping sends fewer/lighter messages: broadcast + matches
        // vs broadcast + all states.
        assert!(net_b.stats.bytes < net_a.stats.bytes);
        assert!(net_b.stats.messages <= net_a.stats.messages);
    }

    #[test]
    fn continuous_strategies_same_truth_different_cost() {
        let mk = || {
            let mut sim = FleetSim::new();
            sim.add_node(0, Point::new(0.0, 50.0), Velocity::zero(), 0.0, vec![]);
            // Node 1 wanders with many updates but stays far away.
            sim.add_node(
                1,
                Point::new(1000.0, 1000.0),
                Velocity::new(1.0, 0.0),
                0.0,
                (1..50).map(|i| (i * 2, Velocity::new((i % 3) as f64, 1.0))).collect(),
            );
            // Node 2 drives straight through the target zone, no updates.
            sim.add_node(2, Point::origin(), Velocity::new(1.0, 0.0), 0.0, vec![]);
            sim
        };
        let pred = reach_pred();
        let mut sim_a = mk();
        let mut net_a = Network::new(0);
        let truth_a = continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, &pred, 150);
        let mut sim_b = mk();
        let mut net_b = Network::new(0);
        let truth_b =
            continuous_object_query_shipping(&mut sim_b, &mut net_b, 0, &pred, 150, "Q");
        assert_eq!(truth_a, truth_b);
        // Only node 2 ever matches.
        assert_eq!(truth_a.len(), 1);
        assert_eq!(truth_a[0].0, 2);
        // Data shipping pays for every one of node 1's 49 updates; query
        // shipping sends only node 2's enter/exit transitions.
        assert!(net_a.stats.messages > net_b.stats.messages + 40);
    }

    #[test]
    fn relationship_query_finds_convoys() {
        let mut sim = FleetSim::new();
        sim.add_node(0, Point::new(500.0, 500.0), Velocity::zero(), 0.0, vec![]);
        // A convoy travelling together.
        sim.add_node(1, Point::origin(), Velocity::new(1.0, 0.0), 0.0, vec![]);
        sim.add_node(2, Point::new(1.0, 0.5), Velocity::new(1.0, 0.0), 0.0, vec![]);
        // A car crossing them briefly.
        sim.add_node(3, Point::new(30.0, -30.0), Velocity::new(0.0, 1.0), 0.0, vec![]);
        let mut net = Network::new(0);
        let pairs = relationship_query_centralized(
            &sim,
            &mut net,
            0,
            &RelPredicate::StayWithinFor { radius: 2.0, for_at_least: 30 },
        );
        assert_eq!(pairs, vec![(1, 2)]);
        // All nodes shipped state to the issuer.
        assert_eq!(net.stats.messages as usize, (sim.len() - 1) * 2);
    }

    #[test]
    fn faultless_over_matches_zero_fault_answer() {
        let sim = fleet();
        for shipping in [Shipping::Data, Shipping::Query] {
            let mut net = Network::new(1);
            let out = object_query_over(
                &sim,
                &mut net,
                0,
                &reach_pred(),
                shipping,
                Transport::Raw,
                10,
            );
            assert_eq!(out.matches, vec![1, 3], "{shipping:?}");
            assert!(out.complete);
            assert_eq!(out.responded, 3);
            assert!(out.missing.is_empty());
            // Request one way + reply back: done at t0 + 2·latency.
            assert_eq!(out.finished_at, 2);
        }
    }

    #[test]
    fn loss_surfaces_as_incomplete_answers() {
        let sim = fleet();
        let mut net = Network::new(1);
        net.set_faults(crate::network::FaultPlan::new(13).with_loss(0.45));
        let raw = object_query_over(
            &sim,
            &mut net,
            0,
            &reach_pred(),
            Shipping::Query,
            Transport::Raw,
            20,
        );
        assert!(!raw.complete, "45% loss on 3 nodes must lose a reply");
        assert!(!raw.missing.is_empty());
        // The same fault regime over the reliable transport recovers the
        // full answer.
        let mut net = Network::new(1);
        net.set_faults(crate::network::FaultPlan::new(13).with_loss(0.45));
        let reliable = object_query_over(
            &sim,
            &mut net,
            0,
            &reach_pred(),
            Shipping::Query,
            crate::reliable::Transport::Reliable(crate::reliable::RetryPolicy {
                base_backoff: 2,
                max_backoff: 8,
                max_retries: u32::MAX,
            }),
            200,
        );
        assert!(reliable.complete);
        assert_eq!(reliable.matches, vec![1, 3]);
        assert!(reliable.retransmissions > 0);
    }

    #[test]
    fn predicate_variants_evaluate() {
        let sim = fleet();
        let n1 = sim.node(1).unwrap();
        assert!(ObjectPredicate::PriceAtMost(100.0).eval(n1, 0));
        assert!(!ObjectPredicate::PriceAtMost(50.0).eval(n1, 0));
        assert!(!ObjectPredicate::InsideRect(Rect::new(90.0, -5.0, 110.0, 5.0)).eval(n1, 0));
        let poly = ObjectPredicate::EntersPolygonWithin {
            polygon: Polygon::rectangle(90.0, -5.0, 110.0, 5.0),
            within: 200,
        };
        assert!(poly.satisfaction_from(n1, 0).contains(95));
    }
}
