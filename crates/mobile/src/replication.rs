//! Replicating the global mutation sequence over the reliable mesh.
//!
//! The MOST server is a single point of failure (ROADMAP item 4); the
//! remedy the WAL enables is a **follower** holding a full copy of the
//! database, built by applying the primary's write-ahead-log records in
//! sequence order.  Because replay of the WAL is deterministic
//! (`most_core::wal::apply_record` is the *same* function recovery
//! uses), a follower that has applied records `0..n` holds a state
//! byte-identical to the primary after its `n`-th mutation — including
//! continuous-query answers, so a failover can keep serving registered
//! CQs without re-registration.
//!
//! The transport is the PR 3 [`crate::reliable`] layer: records travel
//! as [`Payload::Replica`] frames over a [`ReliableMesh`], which
//! delivers exactly-once and in-order per `(sender, recipient)` pair
//! even under injected loss, duplication, jitter and partition windows.
//! [`ReplicaApplier`] nevertheless keeps its own sequence-contiguity
//! buffer — applying a record only when it is the *next* one — so
//! convergence never rests on transport internals: a duplicated or
//! reordered record (e.g. from a future multi-path transport) is
//! buffered or dropped, never double-applied.

use crate::message::Payload;
use crate::network::Network;
use crate::reliable::{Delivery, ReliableMesh};
use most_core::database::Database;
use most_core::wal::{apply_record, WalRecord};
use most_temporal::Tick;
use std::collections::BTreeMap;

/// The sending half: encodes WAL records as [`Payload::Replica`] frames
/// and hands them to the mesh, fanning out to every follower.
#[derive(Debug, Clone)]
pub struct ReplicaPublisher {
    node: u64,
    followers: Vec<u64>,
}

impl ReplicaPublisher {
    /// A publisher at mesh node `node` feeding `followers`.
    pub fn new(node: u64, followers: &[u64]) -> Self {
        ReplicaPublisher { node, followers: followers.to_vec() }
    }

    /// The publisher's mesh node id.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Ships one `(seq, record)` pair to every follower through the
    /// mesh.  The record is sent as its canonical JSON — the identical
    /// bytes the WAL frames on disk.
    pub fn publish(
        &self,
        mesh: &mut ReliableMesh,
        net: &mut Network,
        seq: u64,
        record: &WalRecord,
        now: Tick,
    ) {
        let text = most_testkit::ser::to_json_string(record)
            .expect("WAL records always serialize");
        for &f in &self.followers {
            mesh.send(
                net,
                self.node,
                f,
                Payload::Replica { seq, record: text.clone() },
                now,
            );
            most_obs::inc("replica.published");
        }
    }
}

/// Upper bound on how far ahead of the next expected sequence a record
/// may be buffered by [`ReplicaApplier`].  The reliable mesh delivers
/// in order per pair, so a legitimate gap stays tiny; a frame further
/// ahead than this is treated as garbage from a corrupt or hostile feed
/// and dropped (counted in [`ReplicaApplier::dropped_ahead`]) instead
/// of growing the pending buffer without bound.
pub const MAX_PENDING_AHEAD: u64 = 4096;

/// The receiving half: a follower database that applies replica frames
/// in strict sequence order.
#[derive(Debug)]
pub struct ReplicaApplier {
    node: u64,
    db: Database,
    next_seq: u64,
    /// Records received ahead of `next_seq`, held until the gap fills;
    /// bounded by [`MAX_PENDING_AHEAD`].
    pending: BTreeMap<u64, WalRecord>,
    applied: u64,
    duplicates: u64,
    undecodable: u64,
    dropped_ahead: u64,
}

impl ReplicaApplier {
    /// A follower at mesh node `node`, starting from `base` (the
    /// checkpoint state) and expecting record `from_seq` first.
    pub fn new(node: u64, base: Database, from_seq: u64) -> Self {
        ReplicaApplier {
            node,
            db: base,
            next_seq: from_seq,
            pending: BTreeMap::new(),
            applied: 0,
            duplicates: 0,
            undecodable: 0,
            dropped_ahead: 0,
        }
    }

    /// The follower's mesh node id.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The follower's current database state.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The next sequence number this follower will apply.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Frames ignored as duplicates (seq already applied).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames whose record text failed to decode (never applied).
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// Frames dropped because their sequence number was further than
    /// [`MAX_PENDING_AHEAD`] ahead of the next expected one.
    pub fn dropped_ahead(&self) -> u64 {
        self.dropped_ahead
    }

    /// Records held waiting for a sequence gap to fill.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one mesh delivery to the follower.  Non-replica payloads
    /// are ignored (the mesh may carry other traffic).  Returns how
    /// many records were applied as a result (0 when buffered/dropped,
    /// possibly >1 when this frame filled a gap).
    pub fn on_delivery(&mut self, delivery: &Delivery) -> u64 {
        let Payload::Replica { seq, record } = &delivery.payload else {
            return 0;
        };
        self.offer(*seq, record)
    }

    /// Offers one `(seq, record-JSON)` pair, from any transport.
    pub fn offer(&mut self, seq: u64, record_text: &str) -> u64 {
        if seq < self.next_seq {
            self.duplicates += 1;
            most_obs::inc("replica.duplicates");
            return 0;
        }
        if seq - self.next_seq >= MAX_PENDING_AHEAD {
            // A far-future sequence number cannot come from a healthy
            // in-order feed; buffering it would let a corrupt or
            // malicious stream grow `pending` without limit.
            self.dropped_ahead += 1;
            most_obs::inc("replica.dropped_ahead");
            return 0;
        }
        let Ok(record) = most_testkit::ser::from_json_str::<WalRecord>(record_text) else {
            // A record that does not decode is never applied — mirror of
            // the WAL's never-replay-a-partial-record rule.
            self.undecodable += 1;
            most_obs::inc("replica.undecodable");
            return 0;
        };
        self.pending.insert(seq, record);
        self.drain()
    }

    /// Applies every contiguous pending record starting at `next_seq`.
    fn drain(&mut self) -> u64 {
        let mut applied = 0;
        while let Some(record) = self.pending.remove(&self.next_seq) {
            // Application errors are deterministic and occurred
            // identically on the primary: state is unchanged there and
            // here, so the replica stays convergent.
            let _ = apply_record(&mut self.db, &record);
            self.next_seq += 1;
            self.applied += 1;
            applied += 1;
            most_obs::inc("replica.applied");
        }
        applied
    }

    /// The follower's state fingerprint (see `Database::fingerprint`):
    /// equal to the primary's exactly when the follower has applied the
    /// same record prefix.
    pub fn fingerprint(&self) -> u64 {
        self.db.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use most_core::database::UpdateOp;
    use most_spatial::{Point, Polygon, Velocity};

    fn base() -> (Database, u64) {
        let mut db = Database::new(10_000);
        let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
        db.add_region("P", Polygon::rectangle(10.0, -5.0, 30.0, 5.0));
        (db, car)
    }

    fn encode(r: &WalRecord) -> String {
        most_testkit::ser::to_json_string(r).unwrap()
    }

    #[test]
    fn applies_in_order_and_converges() {
        let (mut primary, car) = base();
        let mut follower = ReplicaApplier::new(2, primary.clone(), 0);
        let records = [
            WalRecord::Register { query: "RETRIEVE o WHERE INSIDE(o, P)".into() },
            WalRecord::Advance { ticks: 5 },
            WalRecord::Batch {
                ops: vec![UpdateOp::Motion { id: car, velocity: Velocity::new(2.0, 0.0) }],
            },
            WalRecord::Advance { ticks: 10 },
        ];
        for (i, r) in records.iter().enumerate() {
            apply_record(&mut primary, r).unwrap();
            assert_eq!(follower.offer(i as u64, &encode(r)), 1);
        }
        assert_eq!(follower.fingerprint(), primary.fingerprint());
        assert_eq!(follower.applied(), 4);
    }

    #[test]
    fn buffers_gaps_and_drops_duplicates() {
        let (mut primary, car) = base();
        let mut follower = ReplicaApplier::new(2, primary.clone(), 0);
        let r0 = WalRecord::Advance { ticks: 1 };
        let r1 = WalRecord::Batch {
            ops: vec![UpdateOp::Motion { id: car, velocity: Velocity::new(0.5, 0.5) }],
        };
        let r2 = WalRecord::Advance { ticks: 2 };
        for r in [&r0, &r1, &r2] {
            apply_record(&mut primary, r).unwrap();
        }
        // Out of order: 2 and 1 buffer, 0 drains all three.
        assert_eq!(follower.offer(2, &encode(&r2)), 0);
        assert_eq!(follower.offer(1, &encode(&r1)), 0);
        assert_eq!(follower.buffered(), 2);
        assert_eq!(follower.offer(0, &encode(&r0)), 3);
        // A late duplicate is ignored.
        assert_eq!(follower.offer(1, &encode(&r1)), 0);
        assert_eq!(follower.duplicates(), 1);
        assert_eq!(follower.fingerprint(), primary.fingerprint());
    }

    #[test]
    fn far_ahead_frames_are_dropped_not_buffered() {
        let (primary, _) = base();
        let mut follower = ReplicaApplier::new(2, primary, 0);
        let r = WalRecord::Advance { ticks: 1 };
        // At the cap: dropped, not held.
        assert_eq!(follower.offer(MAX_PENDING_AHEAD, &encode(&r)), 0);
        assert_eq!(follower.buffered(), 0);
        assert_eq!(follower.dropped_ahead(), 1);
        // Just inside the window: buffered as usual.
        assert_eq!(follower.offer(MAX_PENDING_AHEAD - 1, &encode(&r)), 0);
        assert_eq!(follower.buffered(), 1);
        assert_eq!(follower.dropped_ahead(), 1);
    }

    #[test]
    fn undecodable_records_are_never_applied() {
        let (primary, _) = base();
        let before = primary.fingerprint();
        let mut follower = ReplicaApplier::new(2, primary, 0);
        assert_eq!(follower.offer(0, "{not json"), 0);
        assert_eq!(follower.undecodable(), 1);
        assert_eq!(follower.fingerprint(), before);
        assert_eq!(follower.next_seq(), 0);
    }
}
