//! Reliable delivery over the lossy [`Network`]: per-peer sequence
//! numbers, acks, retransmission with exponential backoff and a retry
//! cap, duplicate suppression on receive, and store-and-forward for
//! disconnected recipients.
//!
//! The paper's Section 5.2 *delayed* approach silently loses any
//! `Answer(CQ)` tuple whose begin falls into an offline window; this
//! layer makes the delayed-propagation case operational instead of
//! counting it as loss.  A [`ReliableEndpoint`] wraps application
//! payloads into [`Payload::Frame`]s carrying a per-peer sequence
//! number; the receiver acks every frame (even duplicates, so a lost
//! ack cannot retransmit forever), suppresses duplicates, and releases
//! payloads to the application **in per-peer send order, exactly once**.
//! Unacked frames retransmit with exponential backoff; while the peer
//! is disconnected the frame is *held* (store-and-forward — the paper's
//! "transmitted when M reconnects" oracle) without burning a retry.
//!
//! Exactly-once argument (chaos-property-tested in
//! `tests/reliable_chaos.rs`, documented in DESIGN.md §7): *at-least
//! once* — a frame stays in the sender's unacked map until an ack
//! arrives, and every retransmission eventually reaches any eventually
//! connected peer when loss < 1 and retries are unbounded; *at-most
//! once, in order* — the receiver releases seq `s` from a peer only
//! when `s` equals that peer's next-expected counter, which then
//! advances past `s` forever.

use crate::message::{Message, Payload};
use crate::network::Network;
use most_temporal::Tick;
use std::collections::BTreeMap;

/// Retransmission policy of a [`ReliableEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks to wait for an ack before the first retransmission.
    pub base_backoff: Tick,
    /// Ceiling on the (doubling) backoff.
    pub max_backoff: Tick,
    /// Retransmissions allowed per frame before it is abandoned
    /// (`u32::MAX` ≈ retry forever; see [`RetryPolicy::unbounded`]).
    /// Deferrals while the peer is offline do not count.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { base_backoff: 4, max_backoff: 64, max_retries: 32 }
    }
}

impl RetryPolicy {
    /// A policy that never abandons a frame — required for the
    /// exactly-once guarantee under arbitrary loss rates < 1.
    pub fn unbounded() -> Self {
        RetryPolicy { max_retries: u32::MAX, ..RetryPolicy::default() }
    }
}

/// Which transport a strategy or transmission simulation runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Bare [`Network`] sends: whatever the fault plan and offline
    /// windows lose stays lost.
    Raw,
    /// [`ReliableEndpoint`]s at every node, with the given policy.
    Reliable(RetryPolicy),
}

/// Cumulative counters of one endpoint (or a mesh, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Application payloads accepted for sending.
    pub accepted: u64,
    /// Application payloads released in order to the application.
    pub delivered: u64,
    /// Data frames put on the wire (first sends + retransmissions).
    pub transmissions: u64,
    /// Retransmissions only.
    pub retransmissions: u64,
    /// Acks sent (duplicates are re-acked).
    pub acks_sent: u64,
    /// Received frames suppressed as duplicates.
    pub duplicates_suppressed: u64,
    /// Transmission attempts deferred because the peer was offline
    /// (store-and-forward holds).
    pub deferrals: u64,
    /// Frames dropped after exhausting the retry cap.
    pub abandoned: u64,
}

impl ReliableStats {
    fn absorb(&mut self, other: &ReliableStats) {
        self.accepted += other.accepted;
        self.delivered += other.delivered;
        self.transmissions += other.transmissions;
        self.retransmissions += other.retransmissions;
        self.acks_sent += other.acks_sent;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.deferrals += other.deferrals;
        self.abandoned += other.abandoned;
    }
}

/// An outgoing frame awaiting its ack.
#[derive(Debug, Clone)]
struct OutFrame {
    payload: Payload,
    /// Wire transmissions so far.
    sends: u32,
    next_attempt: Tick,
    backoff: Tick,
}

/// One node's reliable transport endpoint.
///
/// Drive it with [`ReliableEndpoint::send`] for outgoing payloads,
/// [`ReliableEndpoint::receive`] for every [`Message`] the network
/// delivers to this node, and [`ReliableEndpoint::on_tick`] once per
/// tick for retransmissions.  [`ReliableMesh`] bundles the three for a
/// whole fleet.
#[derive(Debug, Clone)]
pub struct ReliableEndpoint {
    node: u64,
    policy: RetryPolicy,
    /// Next outgoing seq per peer.
    next_seq: BTreeMap<u64, u64>,
    /// Unacked outgoing frames, keyed `(peer, seq)`.
    unacked: BTreeMap<(u64, u64), OutFrame>,
    /// Next in-order seq expected per peer.
    next_expected: BTreeMap<u64, u64>,
    /// Out-of-order receive buffer, keyed `(peer, seq)`.
    held: BTreeMap<(u64, u64), Payload>,
    /// Counters.
    pub stats: ReliableStats,
}

impl ReliableEndpoint {
    /// An endpoint for `node` with the default [`RetryPolicy`].
    pub fn new(node: u64) -> Self {
        ReliableEndpoint::with_policy(node, RetryPolicy::default())
    }

    /// An endpoint for `node` with an explicit policy.
    pub fn with_policy(node: u64, policy: RetryPolicy) -> Self {
        ReliableEndpoint {
            node,
            policy,
            next_seq: BTreeMap::new(),
            unacked: BTreeMap::new(),
            next_expected: BTreeMap::new(),
            held: BTreeMap::new(),
            stats: ReliableStats::default(),
        }
    }

    /// The node this endpoint belongs to.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// Outgoing frames still awaiting an ack.
    pub fn pending(&self) -> usize {
        self.unacked.len()
    }

    /// Whether nothing is awaiting an ack.
    pub fn is_idle(&self) -> bool {
        self.unacked.is_empty()
    }

    /// Accepts `payload` for reliable delivery to `to` and attempts the
    /// first transmission immediately (or holds it if `to` is offline).
    pub fn send(&mut self, net: &mut Network, to: u64, payload: Payload, now: Tick) {
        let seq_slot = self.next_seq.entry(to).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        self.stats.accepted += 1;
        self.unacked.insert(
            (to, seq),
            OutFrame { payload, sends: 0, next_attempt: now, backoff: self.policy.base_backoff },
        );
        self.attempt(net, to, seq, now);
    }

    /// One transmission attempt of an unacked frame: defers (without
    /// burning a retry) while the peer is offline, otherwise puts a
    /// [`Payload::Frame`] on the wire and backs off exponentially.
    fn attempt(&mut self, net: &mut Network, to: u64, seq: u64, now: Tick) {
        let Some(frame) = self.unacked.get_mut(&(to, seq)) else { return };
        if !net.is_connected(to, now) {
            // Store-and-forward: hold until the peer reconnects, polling
            // every tick.  This is the §5.2 "transmitted when M
            // reconnects" oracle — the sender knows the peer's
            // connectivity, as the paper's server knows M's.
            frame.next_attempt = now + 1;
            self.stats.deferrals += 1;
            most_obs::inc("reliable.deferrals");
            return;
        }
        if frame.sends > 0 {
            self.stats.retransmissions += 1;
            most_obs::inc("reliable.retransmissions");
        }
        self.stats.transmissions += 1;
        most_obs::inc("reliable.transmissions");
        frame.sends += 1;
        frame.next_attempt = now + frame.backoff;
        frame.backoff = (frame.backoff * 2).min(self.policy.max_backoff);
        let wire = Payload::Frame { seq, inner: Box::new(frame.payload.clone()) };
        net.send(self.node, to, wire, now);
    }

    /// Retransmits every due unacked frame; abandons frames that have
    /// exhausted the retry cap.  Call once per tick.
    pub fn on_tick(&mut self, net: &mut Network, now: Tick) {
        let due: Vec<(u64, u64)> = self
            .unacked
            .iter()
            .filter(|(_, f)| f.next_attempt <= now)
            .map(|(&k, _)| k)
            .collect();
        for (to, seq) in due {
            let exhausted = self
                .unacked
                .get(&(to, seq))
                .is_some_and(|f| f.sends > self.policy.max_retries);
            if exhausted {
                self.unacked.remove(&(to, seq));
                self.stats.abandoned += 1;
            } else {
                self.attempt(net, to, seq, now);
            }
        }
    }

    /// Processes one delivered message addressed to this node.  Returns
    /// the application payloads released *in per-peer order* by this
    /// delivery, as `(peer, payload)` pairs.  Non-transport payloads
    /// pass through unchanged (raw traffic can share the network).
    pub fn receive(&mut self, net: &mut Network, msg: Message, now: Tick) -> Vec<(u64, Payload)> {
        debug_assert_eq!(msg.to, self.node, "message routed to the wrong endpoint");
        match msg.payload {
            Payload::Ack { seq } => {
                self.unacked.remove(&(msg.from, seq));
                Vec::new()
            }
            Payload::Frame { seq, inner } => {
                // Always (re-)ack, even duplicates: the sender keeps
                // retransmitting until *an* ack survives the network.
                net.send(self.node, msg.from, Payload::Ack { seq }, now);
                self.stats.acks_sent += 1;
                most_obs::inc("reliable.acks_sent");
                let expected = self.next_expected.entry(msg.from).or_insert(0);
                if seq < *expected || self.held.contains_key(&(msg.from, seq)) {
                    self.stats.duplicates_suppressed += 1;
                    most_obs::inc("reliable.duplicates_suppressed");
                    return Vec::new();
                }
                self.held.insert((msg.from, seq), *inner);
                most_obs::gauge_max("reliable.held_depth", self.held.len() as u64);
                let mut released = Vec::new();
                while let Some(payload) = self.held.remove(&(msg.from, *expected)) {
                    released.push((msg.from, payload));
                    *expected += 1;
                }
                self.stats.delivered += released.len() as u64;
                most_obs::add("reliable.delivered", released.len() as u64);
                released
            }
            other => vec![(msg.from, other)],
        }
    }
}

/// An application-level delivery surfaced by [`ReliableMesh::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The node the payload was delivered at.
    pub at: u64,
    /// The sending node.
    pub from: u64,
    /// The application payload.
    pub payload: Payload,
}

/// A fleet of [`ReliableEndpoint`]s plus the per-tick drive loop.
#[derive(Debug, Clone)]
pub struct ReliableMesh {
    endpoints: BTreeMap<u64, ReliableEndpoint>,
}

impl ReliableMesh {
    /// Endpoints for every node in `nodes`, sharing one policy.
    pub fn new(nodes: &[u64], policy: RetryPolicy) -> Self {
        ReliableMesh {
            endpoints: nodes
                .iter()
                .map(|&n| (n, ReliableEndpoint::with_policy(n, policy)))
                .collect(),
        }
    }

    /// The endpoint of `node`, if it is part of the mesh.
    pub fn endpoint(&self, node: u64) -> Option<&ReliableEndpoint> {
        self.endpoints.get(&node)
    }

    /// Accepts `payload` at `from`'s endpoint for reliable delivery to
    /// `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not part of the mesh.
    pub fn send(&mut self, net: &mut Network, from: u64, to: u64, payload: Payload, now: Tick) {
        self.endpoints
            .get_mut(&from)
            .expect("sender endpoint exists")
            .send(net, to, payload, now);
    }

    /// One simulation tick: drains the network's due messages into the
    /// endpoints, then runs every endpoint's retransmission timer.
    /// Returns the application payloads released this tick.
    pub fn tick(&mut self, net: &mut Network, now: Tick) -> Vec<Delivery> {
        let mut out = Vec::new();
        for msg in net.deliver_due(now) {
            let at = msg.to;
            if let Some(ep) = self.endpoints.get_mut(&at) {
                for (from, payload) in ep.receive(net, msg, now) {
                    out.push(Delivery { at, from, payload });
                }
            }
        }
        for ep in self.endpoints.values_mut() {
            ep.on_tick(net, now);
        }
        out
    }

    /// Whether every endpoint has drained its unacked frames.
    pub fn is_idle(&self) -> bool {
        self.endpoints.values().all(ReliableEndpoint::is_idle)
    }

    /// Counters summed over every endpoint.
    pub fn total_stats(&self) -> ReliableStats {
        let mut total = ReliableStats::default();
        for ep in self.endpoints.values() {
            total.absorb(&ep.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::FaultPlan;

    fn payloads(n: u64) -> Vec<Payload> {
        (0..n).map(|i| Payload::MatchStatus { id: i, matches: i % 2 == 0 }).collect()
    }

    /// Drives the mesh until idle (or `max` ticks); returns deliveries.
    fn drain(mesh: &mut ReliableMesh, net: &mut Network, from: Tick, max: Tick) -> Vec<Delivery> {
        let mut out = Vec::new();
        for t in from..=max {
            out.extend(mesh.tick(net, t));
            if mesh.is_idle() && net.in_flight_count() == 0 {
                break;
            }
        }
        out
    }

    #[test]
    fn lossless_delivery_is_in_order() {
        let mut net = Network::new(1);
        let mut mesh = ReliableMesh::new(&[1, 2], RetryPolicy::default());
        for p in payloads(5) {
            mesh.send(&mut net, 1, 2, p, 0);
        }
        let got = drain(&mut mesh, &mut net, 0, 50);
        assert_eq!(got.len(), 5);
        assert_eq!(
            got.iter().map(|d| d.payload.clone()).collect::<Vec<_>>(),
            payloads(5)
        );
        assert!(mesh.is_idle());
        assert_eq!(mesh.total_stats().retransmissions, 0);
    }

    #[test]
    fn loss_triggers_retransmission_until_acked() {
        let mut net = Network::new(1);
        net.set_faults(FaultPlan::new(5).with_loss(0.5));
        let mut mesh = ReliableMesh::new(&[1, 2], RetryPolicy::unbounded());
        for p in payloads(10) {
            mesh.send(&mut net, 1, 2, p, 0);
        }
        let got = drain(&mut mesh, &mut net, 0, 2_000);
        assert_eq!(got.len(), 10, "every payload eventually delivered");
        assert_eq!(
            got.iter().map(|d| d.payload.clone()).collect::<Vec<_>>(),
            payloads(10),
            "in order, exactly once"
        );
        assert!(mesh.is_idle());
        assert!(mesh.total_stats().retransmissions > 0, "50% loss must retransmit");
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut net = Network::new(1);
        net.set_faults(FaultPlan::new(9).with_duplication(1.0));
        let mut mesh = ReliableMesh::new(&[1, 2], RetryPolicy::default());
        for p in payloads(4) {
            mesh.send(&mut net, 1, 2, p, 0);
        }
        let got = drain(&mut mesh, &mut net, 0, 100);
        assert_eq!(got.len(), 4, "each payload delivered exactly once");
        assert!(mesh.total_stats().duplicates_suppressed >= 4);
    }

    #[test]
    fn store_and_forward_rides_out_disconnection() {
        let mut net = Network::new(1);
        net.add_offline_window(2, 0, 30);
        let mut mesh = ReliableMesh::new(&[1, 2], RetryPolicy::default());
        mesh.send(&mut net, 1, 2, Payload::Cancel, 0);
        // While offline nothing reaches node 2 and nothing is abandoned.
        for t in 0..=30 {
            assert!(mesh.tick(&mut net, t).is_empty());
        }
        let stats = mesh.total_stats();
        assert!(stats.deferrals > 0, "attempts deferred while offline");
        assert_eq!(stats.abandoned, 0);
        // After reconnection the payload arrives.
        let got = drain(&mut mesh, &mut net, 31, 80);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, Payload::Cancel);
    }

    #[test]
    fn retry_cap_abandons_undeliverable_frames() {
        let mut net = Network::new(1);
        net.set_faults(FaultPlan::new(1).with_loss(1.0));
        let policy = RetryPolicy { base_backoff: 1, max_backoff: 1, max_retries: 3 };
        let mut mesh = ReliableMesh::new(&[1, 2], policy);
        mesh.send(&mut net, 1, 2, Payload::Cancel, 0);
        let got = drain(&mut mesh, &mut net, 0, 100);
        assert!(got.is_empty());
        let stats = mesh.total_stats();
        assert_eq!(stats.abandoned, 1);
        // 1 first send + max_retries retransmissions.
        assert_eq!(stats.transmissions, 4);
        assert!(mesh.is_idle(), "abandonment clears the unacked map");
    }

    #[test]
    fn lost_acks_do_not_cause_duplicate_delivery() {
        // Acks travel over the same lossy network; a lost ack makes the
        // sender retransmit a frame the receiver already has, which must
        // be suppressed and re-acked, never re-delivered.
        let mut net = Network::new(1);
        net.set_faults(FaultPlan::new(42).with_loss(0.4));
        let mut mesh = ReliableMesh::new(&[1, 2], RetryPolicy::unbounded());
        for p in payloads(12) {
            mesh.send(&mut net, 1, 2, p, 0);
        }
        let got = drain(&mut mesh, &mut net, 0, 2_000);
        assert_eq!(got.len(), 12, "exactly once despite lost acks");
        assert_eq!(
            got.iter().map(|d| d.payload.clone()).collect::<Vec<_>>(),
            payloads(12)
        );
    }

    #[test]
    fn raw_payloads_pass_through() {
        let mut net = Network::new(0);
        let mut ep = ReliableEndpoint::new(2);
        net.send(1, 2, Payload::Cancel, 0);
        let msg = net.deliver_due(0).pop().unwrap();
        let out = ep.receive(&mut net, msg, 0);
        assert_eq!(out, vec![(1, Payload::Cancel)]);
    }
}
