//! The fleet: mobile computers, each holding exactly its own object.
//!
//! "Assume that the distribution is such that each object resides in the
//! computer on the moving vehicle it represents, but nowhere else.  This is
//! a reasonable architecture in case there are very frequent updates to the
//! attributes of the moving object" (Section 5.3).

use crate::message::Payload;
use most_spatial::{Point, Trajectory, Velocity};
use most_temporal::Tick;
use std::collections::BTreeMap;

/// The locally-held object of one mobile computer.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Node (= object) id.
    pub id: u64,
    /// The object's recorded motion, updated locally as the vehicle senses
    /// speed/direction changes.
    pub trajectory: Trajectory,
    /// A static attribute (e.g. price / payload class) for predicate
    /// variety.
    pub price: f64,
    /// Scheduled future motion-vector changes `(tick, new velocity)` —
    /// the simulation's stand-in for the vehicle's actual driving.
    pub planned_updates: Vec<(Tick, Velocity)>,
}

impl NodeInfo {
    /// The node's object as a wire payload: its recorded motion leg
    /// sampled at `now` — what every ship-state strategy transmits.
    pub fn state_payload(&self, now: Tick) -> Payload {
        let leg = self.trajectory.leg_at(now);
        Payload::State {
            id: self.id,
            position: leg.position_at_tick(now),
            velocity: leg.velocity,
        }
    }
}

/// The fleet simulation: nodes plus a clock.  The network lives alongside
/// (strategies take both) so that traffic accounting stays explicit.
#[derive(Debug, Clone, Default)]
pub struct FleetSim {
    nodes: BTreeMap<u64, NodeInfo>,
    clock: Tick,
}

impl FleetSim {
    /// An empty fleet at tick 0.
    pub fn new() -> Self {
        FleetSim::default()
    }

    /// Adds a node with its initial motion and planned updates (must be in
    /// ascending tick order).
    pub fn add_node(
        &mut self,
        id: u64,
        start: Point,
        velocity: Velocity,
        price: f64,
        planned_updates: Vec<(Tick, Velocity)>,
    ) {
        debug_assert!(planned_updates.windows(2).all(|w| w[0].0 <= w[1].0));
        self.nodes.insert(
            id,
            NodeInfo {
                id,
                trajectory: Trajectory::starting_at(start, velocity),
                price,
                planned_updates,
            },
        );
    }

    /// Current tick.
    pub fn now(&self) -> Tick {
        self.clock
    }

    /// Node ids, ascending.
    pub fn node_ids(&self) -> Vec<u64> {
        self.nodes.keys().copied().collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node's object.
    pub fn node(&self, id: u64) -> Option<&NodeInfo> {
        self.nodes.get(&id)
    }

    /// Advances the clock to `t`, applying every planned motion-vector
    /// update that falls due; returns `(node, tick)` for each applied
    /// update (these are the moments data-shipping must transmit).
    pub fn advance_to(&mut self, t: Tick) -> Vec<(u64, Tick)> {
        assert!(t >= self.clock, "clock cannot go backwards");
        let mut applied = Vec::new();
        for node in self.nodes.values_mut() {
            while let Some(&(at, v)) = node.planned_updates.first() {
                if at > t {
                    break;
                }
                node.trajectory.update_velocity(at, v);
                node.planned_updates.remove(0);
                applied.push((node.id, at));
            }
        }
        self.clock = t;
        applied.sort();
        applied
    }

    /// The trajectory a node *would report* at tick `t` if asked now:
    /// its recorded motion (including updates applied so far).
    pub fn position_of(&self, id: u64, t: Tick) -> Option<Point> {
        self.nodes.get(&id).map(|n| n.trajectory.position_at_tick(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> FleetSim {
        let mut sim = FleetSim::new();
        sim.add_node(
            1,
            Point::origin(),
            Velocity::new(1.0, 0.0),
            80.0,
            vec![(10, Velocity::new(0.0, 1.0)), (20, Velocity::zero())],
        );
        sim.add_node(2, Point::new(50.0, 0.0), Velocity::zero(), 120.0, vec![]);
        sim
    }

    #[test]
    fn planned_updates_apply_in_order() {
        let mut sim = fleet();
        let applied = sim.advance_to(15);
        assert_eq!(applied, vec![(1, 10)]);
        assert_eq!(sim.position_of(1, 15), Some(Point::new(10.0, 5.0)));
        let applied = sim.advance_to(25);
        assert_eq!(applied, vec![(1, 20)]);
        assert_eq!(sim.position_of(1, 25), Some(Point::new(10.0, 10.0)));
        assert!(sim.advance_to(30).is_empty());
    }

    #[test]
    fn node_accessors() {
        let sim = fleet();
        assert_eq!(sim.node_ids(), vec![1, 2]);
        assert_eq!(sim.len(), 2);
        assert!(!sim.is_empty());
        assert_eq!(sim.node(2).unwrap().price, 120.0);
        assert!(sim.node(9).is_none());
        assert_eq!(sim.position_of(9, 0), None);
    }

    #[test]
    #[should_panic]
    fn clock_cannot_rewind() {
        let mut sim = fleet();
        sim.advance_to(10);
        sim.advance_to(5);
    }
}
