//! Delivering `Answer(CQ)` to a moving client (Section 5.2).
//!
//! "In the immediate approach, the whole set is transmitted immediately
//! after being computed ... If M's memory may fit only B tuples ... the set
//! needs to be sorted by the begin attribute, and transmitted in blocks of
//! B tuples.  The delayed approach ... each tuple (S, begin, end) is
//! transmitted to M at time begin. ... The choice between the immediate and
//! delayed approaches depends on ... the probability that an update can be
//! propagated to M before its effects need to be displayed, and ... the
//! frequency of updates and the cost of propagating them."
//!
//! The simulation transmits over a [`Network`] (so disconnection drops
//! messages) and scores each approach by traffic and *display error*: the
//! number of `(tuple, tick)` pairs where the client's display disagrees
//! with the true answer.

use crate::message::Payload;
use crate::network::Network;
use crate::reliable::{ReliableMesh, Transport};
use most_temporal::{Interval, Tick};
use std::collections::BTreeSet;

/// One answer tuple: `(instantiation id, display interval)`.
pub type AnswerRow = (u64, Interval);

/// Outcome of a transmission simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Messages carrying answer data that were sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
    /// Messages lost to disconnection.
    pub lost: u64,
    /// `(tuple, tick)` pairs displayed wrongly (shown when they should not
    /// be, or missing when they should be shown).
    pub display_error_ticks: u64,
    /// Transport retransmissions spent (0 for the raw transport and for
    /// the zero-fault [`immediate`]/[`delayed`] models).
    pub retransmissions: u64,
}

/// Simulates the **immediate** approach: the full answer is sent at
/// `computed_at` in blocks of at most `memory_b` tuples (the client memory
/// limit), each as one message.
///
/// Returns the report, scoring the client's resulting display over
/// `[computed_at, until]` against `truth` (which may differ from the
/// transmitted answer when updates changed it after transmission — the
/// caller models that by passing the stale answer as `sent` and the real
/// one as `truth`).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn immediate(
    net: &mut Network,
    server: u64,
    client: u64,
    sent: &[AnswerRow],
    truth: &[AnswerRow],
    memory_b: usize,
    computed_at: Tick,
    until: Tick,
) -> DeliveryReport {
    let mut rows = sent.to_vec();
    rows.sort_by_key(|(_, iv)| iv.begin());
    let mut report = DeliveryReport::default();
    let mut received: Vec<AnswerRow> = Vec::new();
    let before = net.stats;
    for block in rows.chunks(memory_b.max(1)) {
        let tuples: Vec<(u64, Tick, Tick)> =
            block.iter().map(|(id, iv)| (*id, iv.begin(), iv.end())).collect();
        net.send(server, client, Payload::AnswerBlock { tuples }, computed_at);
        // Disconnection at delivery time loses the block.
        if net.is_connected(client, computed_at) {
            received.extend_from_slice(block);
        }
    }
    let after = net.stats;
    report.messages = after.messages - before.messages;
    report.bytes = after.bytes - before.bytes;
    report.lost = (sent.len() - received.len()) as u64;
    report.display_error_ticks = display_error(&received, truth, computed_at, until);
    report
}

/// Simulates the **delayed** approach: each tuple is sent at its `begin`
/// tick ("the computer at M immediately displays S, and keeps it on display
/// until time end").
pub fn delayed(
    net: &mut Network,
    server: u64,
    client: u64,
    sent: &[AnswerRow],
    truth: &[AnswerRow],
    computed_at: Tick,
    until: Tick,
) -> DeliveryReport {
    let mut report = DeliveryReport::default();
    let mut received: Vec<AnswerRow> = Vec::new();
    let before = net.stats;
    for (id, iv) in sent {
        let send_at = iv.begin().max(computed_at);
        net.send(
            server,
            client,
            Payload::AnswerBlock { tuples: vec![(*id, iv.begin(), iv.end())] },
            send_at,
        );
        if net.is_connected(client, send_at) {
            received.push((*id, *iv));
        } else {
            report.lost += 1;
        }
    }
    let after = net.stats;
    report.messages = after.messages - before.messages;
    report.bytes = after.bytes - before.bytes;
    report.display_error_ticks = display_error(&received, truth, computed_at, until);
    report
}

/// Simulates the **immediate** approach over a *faulty* network: blocks
/// actually traverse the [`Network`] (fault plan, offline windows,
/// latency all apply), optionally over the reliable transport.  The
/// client displays a tuple from `max(arrival, begin)` to `end`, so a
/// retransmitted block that arrives late degrades the display only for
/// the ticks it missed instead of losing the tuple outright.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn immediate_over(
    net: &mut Network,
    transport: Transport,
    server: u64,
    client: u64,
    sent: &[AnswerRow],
    truth: &[AnswerRow],
    memory_b: usize,
    computed_at: Tick,
    until: Tick,
) -> DeliveryReport {
    let mut rows = sent.to_vec();
    rows.sort_by_key(|(_, iv)| iv.begin());
    let schedule: Vec<(Tick, Vec<AnswerRow>)> = rows
        .chunks(memory_b.max(1))
        .map(|block| (computed_at, block.to_vec()))
        .collect();
    run_delivery(net, transport, server, client, &schedule, sent, truth, computed_at, until)
}

/// Simulates the **delayed** approach over a *faulty* network: each
/// tuple is sent at its `begin` tick and actually traverses the
/// [`Network`].  Over [`Transport::Reliable`], a tuple whose begin falls
/// into an offline window is stored and forwarded at reconnection — the
/// paper's delayed-propagation case made operational instead of counted
/// as loss.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn delayed_over(
    net: &mut Network,
    transport: Transport,
    server: u64,
    client: u64,
    sent: &[AnswerRow],
    truth: &[AnswerRow],
    computed_at: Tick,
    until: Tick,
) -> DeliveryReport {
    let schedule: Vec<(Tick, Vec<AnswerRow>)> = sent
        .iter()
        .map(|&(id, iv)| (iv.begin().max(computed_at), vec![(id, iv)]))
        .collect();
    run_delivery(net, transport, server, client, &schedule, sent, truth, computed_at, until)
}

/// The shared delivery engine: plays `schedule` through the transport
/// tick by tick over `[computed_at, until]`, records each tuple's
/// arrival tick at the client, and scores traffic, loss and arrival-aware
/// display error.
#[allow(clippy::too_many_arguments)]
fn run_delivery(
    net: &mut Network,
    transport: Transport,
    server: u64,
    client: u64,
    schedule: &[(Tick, Vec<AnswerRow>)],
    sent: &[AnswerRow],
    truth: &[AnswerRow],
    computed_at: Tick,
    until: Tick,
) -> DeliveryReport {
    let mut mesh = match transport {
        Transport::Raw => None,
        Transport::Reliable(policy) => Some(ReliableMesh::new(&[server, client], policy)),
    };
    let before = net.stats;
    // Earliest arrival tick per distinct tuple.
    let mut arrivals: Vec<(AnswerRow, Tick)> = Vec::new();
    let mut seen: BTreeSet<(u64, Tick, Tick)> = BTreeSet::new();
    for t in computed_at..=until {
        for (at, block) in schedule.iter().filter(|(at, _)| *at == t) {
            let tuples: Vec<(u64, Tick, Tick)> =
                block.iter().map(|(id, iv)| (*id, iv.begin(), iv.end())).collect();
            let payload = Payload::AnswerBlock { tuples };
            match &mut mesh {
                None => net.send(server, client, payload, *at),
                Some(mesh) => mesh.send(net, server, client, payload, *at),
            }
        }
        let received: Vec<Payload> = match &mut mesh {
            None => net
                .deliver_due(t)
                .into_iter()
                .filter(|m| m.to == client)
                .map(|m| m.payload)
                .collect(),
            Some(mesh) => mesh
                .tick(net, t)
                .into_iter()
                .filter(|d| d.at == client)
                .map(|d| d.payload)
                .collect(),
        };
        for payload in received {
            if let Payload::AnswerBlock { tuples } = payload {
                for (id, begin, end) in tuples {
                    if seen.insert((id, begin, end)) {
                        arrivals.push(((id, Interval::new(begin, end)), t));
                    }
                }
            }
        }
    }
    let mut report = DeliveryReport::default();
    let after = net.stats;
    report.messages = after.messages - before.messages;
    report.bytes = after.bytes - before.bytes;
    report.lost = (sent.len() - arrivals.len()) as u64;
    report.display_error_ticks = display_error_from(&arrivals, truth, computed_at, until);
    if let Some(mesh) = &mesh {
        report.retransmissions = mesh.total_stats().retransmissions;
    }
    report
}

/// `(tuple-id, tick)` disagreement count between the client display implied
/// by `received` and the true answer, over `[from, until]`.
/// Arrival-aware display error: a received tuple is shown only from its
/// arrival tick onward (`max(arrival, begin)..=end`).
fn display_error_from(
    arrivals: &[(AnswerRow, Tick)],
    truth: &[AnswerRow],
    from: Tick,
    until: Tick,
) -> u64 {
    let ids: BTreeSet<u64> = arrivals
        .iter()
        .map(|((id, _), _)| *id)
        .chain(truth.iter().map(|(id, _)| *id))
        .collect();
    let mut errors = 0u64;
    for id in ids {
        for t in from..=until {
            let shown = arrivals
                .iter()
                .any(|((rid, iv), at)| *rid == id && iv.contains(t) && t >= *at);
            let should = truth.iter().any(|(rid, iv)| *rid == id && iv.contains(t));
            if shown != should {
                errors += 1;
            }
        }
    }
    errors
}

fn display_error(received: &[AnswerRow], truth: &[AnswerRow], from: Tick, until: Tick) -> u64 {
    let ids: BTreeSet<u64> = received
        .iter()
        .map(|(id, _)| *id)
        .chain(truth.iter().map(|(id, _)| *id))
        .collect();
    let mut errors = 0u64;
    for id in ids {
        for t in from..=until {
            let shown = received
                .iter()
                .any(|(rid, iv)| *rid == id && iv.contains(t));
            let should = truth.iter().any(|(rid, iv)| *rid == id && iv.contains(t));
            if shown != should {
                errors += 1;
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<AnswerRow> {
        vec![
            (1, Interval::new(10, 20)),
            (2, Interval::new(15, 25)),
            (3, Interval::new(40, 50)),
        ]
    }

    #[test]
    fn immediate_all_connected_is_exact() {
        let mut net = Network::new(0);
        let r = immediate(&mut net, 100, 200, &rows(), &rows(), 10, 0, 60);
        assert_eq!(r.messages, 1); // one block fits everything
        assert_eq!(r.lost, 0);
        assert_eq!(r.display_error_ticks, 0);
    }

    #[test]
    fn immediate_blocks_by_memory() {
        let mut net = Network::new(0);
        let r = immediate(&mut net, 100, 200, &rows(), &rows(), 1, 0, 60);
        assert_eq!(r.messages, 3);
        assert_eq!(r.display_error_ticks, 0);
    }

    #[test]
    fn delayed_sends_per_tuple_at_begin() {
        let mut net = Network::new(0);
        let r = delayed(&mut net, 100, 200, &rows(), &rows(), 0, 60);
        assert_eq!(r.messages, 3);
        assert_eq!(r.display_error_ticks, 0);
        // Delayed messages are smaller in total when tuples are few but the
        // header overhead repeats; byte accounting just has to be present.
        assert!(r.bytes > 0);
    }

    #[test]
    fn delayed_loses_tuples_during_disconnection() {
        let mut net = Network::new(0);
        // Client offline exactly when tuple 3's display should begin.
        net.add_offline_window(200, 35, 45);
        let r = delayed(&mut net, 100, 200, &rows(), &rows(), 0, 60);
        assert_eq!(r.lost, 1);
        // Tuple 3's whole interval [40, 50] is missing: 11 error ticks.
        assert_eq!(r.display_error_ticks, 11);
    }

    #[test]
    fn immediate_survives_later_disconnection() {
        let mut net = Network::new(0);
        net.add_offline_window(200, 35, 45);
        // Sent at t=0 while connected: nothing lost despite the later
        // offline window.
        let r = immediate(&mut net, 100, 200, &rows(), &rows(), 10, 0, 60);
        assert_eq!(r.lost, 0);
        assert_eq!(r.display_error_ticks, 0);
    }

    #[test]
    fn over_faultless_network_matches_ideal_model() {
        let mut net = Network::new(0);
        let r = immediate_over(
            &mut net, Transport::Raw, 100, 200, &rows(), &rows(), 10, 0, 60,
        );
        assert_eq!(r.messages, 1);
        assert_eq!(r.lost, 0);
        assert_eq!(r.display_error_ticks, 0);
        let mut net = Network::new(0);
        let r = delayed_over(&mut net, Transport::Raw, 100, 200, &rows(), &rows(), 0, 60);
        assert_eq!(r.messages, 3);
        assert_eq!(r.lost, 0);
        assert_eq!(r.display_error_ticks, 0);
    }

    #[test]
    fn reliable_delayed_recovers_offline_tuples_late() {
        // Raw: tuple 3 (begin 40) is sent into the client's offline
        // window and lost outright — 11 error ticks.
        let mut net = Network::new(0);
        net.add_offline_window(200, 35, 45);
        let raw = delayed_over(&mut net, Transport::Raw, 100, 200, &rows(), &rows(), 0, 60);
        assert_eq!(raw.lost, 1);
        assert_eq!(raw.display_error_ticks, 11);
        // Reliable: the frame is held while the client is offline and
        // forwarded at reconnection (t=46, arriving the next tick), so
        // only the gap ticks 40..=46 err instead of the whole interval.
        let mut net = Network::new(0);
        net.add_offline_window(200, 35, 45);
        let policy = crate::reliable::RetryPolicy { base_backoff: 2, max_backoff: 8, max_retries: u32::MAX };
        let rel = delayed_over(
            &mut net, Transport::Reliable(policy), 100, 200, &rows(), &rows(), 0, 60,
        );
        assert_eq!(rel.lost, 0, "store-and-forward loses nothing");
        assert_eq!(rel.display_error_ticks, 7);
        assert!(rel.display_error_ticks < raw.display_error_ticks);
    }

    #[test]
    fn reliable_immediate_survives_in_transit_loss() {
        let mut net = Network::new(1);
        net.set_faults(crate::network::FaultPlan::new(77).with_loss(0.6));
        let policy = crate::reliable::RetryPolicy { base_backoff: 2, max_backoff: 8, max_retries: u32::MAX };
        let r = immediate_over(
            &mut net, Transport::Reliable(policy), 100, 200, &rows(), &rows(), 1, 0, 60,
        );
        assert_eq!(r.lost, 0, "60% loss is recovered by retransmission");
        assert!(r.retransmissions > 0);
        // Blocks arrive a few ticks late at worst; tuple 1 begins at 10,
        // far past any plausible retransmission tail here.
        assert_eq!(r.display_error_ticks, 0);
    }

    #[test]
    fn immediate_suffers_when_answer_changes_after_send() {
        let mut net = Network::new(0);
        // The answer was updated after transmission: tuple 1 now ends at 15
        // instead of 20 and the client cannot be told (offline from 12 on).
        let stale = rows();
        let mut truth = rows();
        truth[0].1 = Interval::new(10, 15);
        let r = immediate(&mut net, 100, 200, &stale, &truth, 10, 0, 60);
        // Ticks 16..=20 wrongly displayed.
        assert_eq!(r.display_error_ticks, 5);
    }
}
