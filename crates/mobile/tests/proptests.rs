//! Property tests: the competing distributed strategies must compute
//! identical answers on random fleets — only their traffic may differ —
//! and query shipping must never send more bytes than data shipping for
//! one-shot object queries.

use most_mobile::strategy::{
    continuous_object_data_shipping, continuous_object_query_shipping,
    object_query_data_shipping, object_query_query_shipping, ObjectPredicate,
};
use most_mobile::{FleetSim, Network};
use most_spatial::{Point, Rect, Velocity};
use most_testkit::check::{floats, ints, just, one_of, tuple2, tuple3, vecs, Check, Gen};

#[test]
fn offline_windows_union_matches_membership_oracle() {
    // `add_offline_window` union-merges overlapping windows into an
    // IntervalSet; `is_connected` must agree tick-for-tick with the naive
    // oracle that just scans the raw window list.
    Check::new("mobile::offline_window_oracle").cases(128).run(
        &vecs(tuple2(ints(0..180u64), ints(0..60u64)), 0..8),
        |windows| {
            let mut net = Network::new(0);
            for &(begin, len) in windows {
                net.add_offline_window(7, begin, begin + len);
            }
            for t in 0..260u64 {
                let oracle_offline =
                    windows.iter().any(|&(begin, len)| begin <= t && t <= begin + len);
                assert_eq!(
                    net.is_connected(7, t),
                    !oracle_offline,
                    "tick {t} with windows {windows:?}"
                );
            }
            // A node with no declared windows is always connected.
            assert!(net.is_connected(8, 0) && net.is_connected(8, 259));
        },
    );
}

type NodeSpec = (f64, f64, f64, f64, Option<(u64, f64, f64)>);

#[derive(Debug, Clone)]
struct FleetSpec {
    nodes: Vec<NodeSpec>,
}

fn arb_fleet() -> Gen<FleetSpec> {
    let node = tuple3(
        tuple2(floats(-200.0..200.0), floats(-200.0..200.0)),
        tuple2(floats(-2.0..2.0), floats(-2.0..2.0)),
        one_of(vec![
            just(None),
            tuple3(ints(1..250u64), floats(-2.0..2.0), floats(-2.0..2.0)).map(Some),
        ]),
    )
    .map(|((x, y), (vx, vy), upd)| (x, y, vx, vy, upd));
    vecs(node, 1..12).map(|nodes| FleetSpec { nodes })
}

fn build(spec: &FleetSpec) -> FleetSim {
    let mut sim = FleetSim::new();
    sim.add_node(0, Point::origin(), Velocity::zero(), 0.0, vec![]);
    for (i, &(x, y, vx, vy, upd)) in spec.nodes.iter().enumerate() {
        let updates = upd
            .map(|(t, ux, uy)| vec![(t, Velocity::new(ux, uy))])
            .unwrap_or_default();
        sim.add_node(
            i as u64 + 1,
            Point::new(x, y),
            Velocity::new(vx, vy),
            50.0,
            updates,
        );
    }
    sim
}

fn arb_pred() -> Gen<ObjectPredicate> {
    one_of(vec![
        tuple3(floats(-100.0..100.0), floats(-100.0..100.0), floats(5.0..80.0)).map(
            |(x, y, r)| ObjectPredicate::ReachesPointWithin {
                target: Point::new(x, y),
                radius: r,
                within: 250,
            },
        ),
        tuple3(floats(-100.0..100.0), floats(-100.0..100.0), floats(10.0..120.0))
            .map(|(x, y, w)| ObjectPredicate::InsideRect(Rect::new(x, y, x + w, y + w))),
    ])
}

#[test]
fn one_shot_strategies_agree() {
    Check::new("mobile::one_shot_strategies_agree").cases(64).run(
        &tuple2(arb_fleet(), arb_pred()),
        |(spec, pred)| {
            let sim = build(spec);
            let mut net_a = Network::new(0);
            let mut net_b = Network::new(0);
            let a = object_query_data_shipping(&sim, &mut net_a, 0, pred);
            let b = object_query_query_shipping(&sim, &mut net_b, 0, pred, "Q");
            assert_eq!(&a, &b);
            // Query shipping's bytes never exceed data shipping's: both pay the
            // broadcast; replies (17 B) are cheaper than states (48 B).
            assert!(net_b.stats.bytes <= net_a.stats.bytes);
            // Data shipping sends exactly one state per remote node.
            assert_eq!(net_a.stats.messages as usize, 2 * spec.nodes.len());
        },
    );
}

#[test]
fn continuous_strategies_agree() {
    Check::new("mobile::continuous_strategies_agree").cases(64).run(
        &tuple2(arb_fleet(), arb_pred()),
        |(spec, pred)| {
            let mut sim_a = build(spec);
            let mut net_a = Network::new(0);
            let truth_a = continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, pred, 250);
            let mut sim_b = build(spec);
            let mut net_b = Network::new(0);
            let truth_b =
                continuous_object_query_shipping(&mut sim_b, &mut net_b, 0, pred, 250, "Q");
            assert_eq!(truth_a, truth_b);
        },
    );
}
