//! Property tests: the competing distributed strategies must compute
//! identical answers on random fleets — only their traffic may differ —
//! and query shipping must never send more bytes than data shipping for
//! one-shot object queries.

use most_mobile::strategy::{
    continuous_object_data_shipping, continuous_object_query_shipping,
    object_query_data_shipping, object_query_query_shipping, ObjectPredicate,
};
use most_mobile::{FleetSim, Network};
use most_spatial::{Point, Rect, Velocity};
use proptest::prelude::*;

type NodeSpec = (f64, f64, f64, f64, Option<(u64, f64, f64)>);

#[derive(Debug, Clone)]
struct FleetSpec {
    nodes: Vec<NodeSpec>,
}

fn arb_fleet() -> impl Strategy<Value = FleetSpec> {
    prop::collection::vec(
        (
            -200.0f64..200.0,
            -200.0f64..200.0,
            -2.0f64..2.0,
            -2.0f64..2.0,
            prop::option::of((1..250u64, -2.0f64..2.0, -2.0f64..2.0)),
        ),
        1..12,
    )
    .prop_map(|nodes| FleetSpec { nodes })
}

fn build(spec: &FleetSpec) -> FleetSim {
    let mut sim = FleetSim::new();
    sim.add_node(0, Point::origin(), Velocity::zero(), 0.0, vec![]);
    for (i, &(x, y, vx, vy, upd)) in spec.nodes.iter().enumerate() {
        let updates = upd
            .map(|(t, ux, uy)| vec![(t, Velocity::new(ux, uy))])
            .unwrap_or_default();
        sim.add_node(
            i as u64 + 1,
            Point::new(x, y),
            Velocity::new(vx, vy),
            50.0,
            updates,
        );
    }
    sim
}

fn arb_pred() -> impl Strategy<Value = ObjectPredicate> {
    prop_oneof![
        (-100.0f64..100.0, -100.0f64..100.0, 5.0f64..80.0).prop_map(|(x, y, r)| {
            ObjectPredicate::ReachesPointWithin {
                target: Point::new(x, y),
                radius: r,
                within: 250,
            }
        }),
        (-100.0f64..100.0, -100.0f64..100.0, 10.0f64..120.0).prop_map(|(x, y, w)| {
            ObjectPredicate::InsideRect(Rect::new(x, y, x + w, y + w))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn one_shot_strategies_agree(spec in arb_fleet(), pred in arb_pred()) {
        let sim = build(&spec);
        let mut net_a = Network::new(0);
        let mut net_b = Network::new(0);
        let a = object_query_data_shipping(&sim, &mut net_a, 0, &pred);
        let b = object_query_query_shipping(&sim, &mut net_b, 0, &pred, "Q");
        prop_assert_eq!(&a, &b);
        // Query shipping's bytes never exceed data shipping's: both pay the
        // broadcast; replies (17 B) are cheaper than states (48 B).
        prop_assert!(net_b.stats.bytes <= net_a.stats.bytes);
        // Data shipping sends exactly one state per remote node.
        prop_assert_eq!(net_a.stats.messages as usize, 2 * spec.nodes.len());
    }

    #[test]
    fn continuous_strategies_agree(spec in arb_fleet(), pred in arb_pred()) {
        let mut sim_a = build(&spec);
        let mut net_a = Network::new(0);
        let truth_a = continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, &pred, 250);
        let mut sim_b = build(&spec);
        let mut net_b = Network::new(0);
        let truth_b =
            continuous_object_query_shipping(&mut sim_b, &mut net_b, 0, &pred, 250, "Q");
        prop_assert_eq!(truth_a, truth_b);
    }
}
