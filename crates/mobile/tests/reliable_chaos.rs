//! Chaos property test for the reliable transport: under any combination
//! of probabilistic loss (≤ 50%), duplication, latency jitter, *finite*
//! offline windows and *finite* partitions, a [`ReliableMesh`] with an
//! unbounded retry policy delivers every application message **exactly
//! once and in per-stream order** to every eventually-connected node, and
//! the whole system drains to idle in bounded time.

use most_mobile::{FaultPlan, Network, Payload, ReliableMesh, RetryPolicy};
use most_testkit::check::{floats, ints, tuple2, tuple3, tuple4, vecs, Check, Gen};
use std::collections::BTreeMap;

/// Raw generated material; node indices are taken modulo the node count
/// at build time so the script stays valid for any fleet size.
#[derive(Debug, Clone)]
struct ChaosSpec {
    nodes: u64,                       // 2..=5
    loss: f64,                        // 0..0.5
    duplication: f64,                 // 0..0.3
    jitter: u64,                      // 0..=3
    windows: Vec<(u64, u64, u64)>,    // (node_raw, begin, len)
    partition: Option<(u64, u64)>,    // (begin, len), splits even/odd ids
    sends: Vec<(u64, u64, u64)>,      // (from_raw, to_raw, tick)
    seed: u64,
}

fn arb_spec() -> Gen<ChaosSpec> {
    let faults = tuple3(floats(0.0..0.5), floats(0.0..0.3), ints(0..4u64));
    let windows = vecs(tuple3(ints(0..100u64), ints(1..100u64), ints(1..40u64)), 0..4);
    let partition = vecs(tuple2(ints(10..60u64), ints(1..30u64)), 0..2)
        .map(|v| v.first().copied());
    let sends = vecs(tuple3(ints(0..100u64), ints(0..100u64), ints(0..50u64)), 1..12);
    tuple4(
        tuple2(ints(2..6u64), faults),
        tuple2(windows, partition),
        sends,
        ints(0..1_000_000u64),
    )
    .map(|((nodes, (loss, duplication, jitter)), (windows, partition), sends, seed)| ChaosSpec {
        nodes,
        loss,
        duplication,
        jitter,
        windows,
        partition,
        sends,
        seed,
    })
}

#[test]
fn reliable_mesh_is_exactly_once_in_order_under_chaos() {
    Check::new("mobile::reliable_mesh_chaos").cases(48).run(&arb_spec(), |spec| {
        let ids: Vec<u64> = (0..spec.nodes).collect();
        let mut net = Network::new(1);
        for &(node_raw, begin, len) in &spec.windows {
            net.add_offline_window(node_raw % spec.nodes, begin, begin + len);
        }
        let mut plan = FaultPlan::new(spec.seed)
            .with_loss(spec.loss)
            .with_duplication(spec.duplication)
            .with_jitter(spec.jitter);
        if let Some((begin, len)) = spec.partition {
            let evens: Vec<u64> = ids.iter().copied().filter(|i| i % 2 == 0).collect();
            plan = plan.with_partition(&evens, begin, begin + len);
        }
        net.set_faults(plan);

        // The script: (from, to, tick, script index), self-sends dropped,
        // stably ordered by tick so per-stream send order is well defined.
        let mut script: Vec<(u64, u64, u64, u64)> = spec
            .sends
            .iter()
            .enumerate()
            .map(|(k, &(f, t, at))| (f % spec.nodes, t % spec.nodes, at, k as u64))
            .filter(|&(f, t, _, _)| f != t)
            .collect();
        script.sort_by_key(|&(_, _, at, _)| at);
        let mut expected: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
        for &(f, t, _, k) in &script {
            expected.entry((f, t)).or_default().push(k);
        }

        // Unbounded retries: the exactly-once guarantee needs them, since
        // any finite cap can be exhausted by an adversarial loss run.
        let policy = RetryPolicy { base_backoff: 2, max_backoff: 16, ..RetryPolicy::unbounded() };
        let mut mesh = ReliableMesh::new(&ids, policy);
        let mut got: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
        let last_send = script.last().map_or(0, |&(_, _, at, _)| at);
        let mut drained_at = None;
        for t in 0..=20_000u64 {
            for &(f, to, at, k) in script.iter().filter(|&&(_, _, at, _)| at == t) {
                mesh.send(&mut net, f, to, Payload::MatchStatus { id: k, matches: true }, at);
            }
            for d in mesh.tick(&mut net, t) {
                if let Payload::MatchStatus { id, .. } = d.payload {
                    got.entry((d.from, d.at)).or_default().push(id);
                }
            }
            if t > last_send && mesh.is_idle() {
                drained_at = Some(t);
                break;
            }
        }

        let drained_at = drained_at.unwrap_or_else(|| {
            panic!("mesh never drained: {} frames still unacked", {
                let mut pending = 0;
                for &id in &ids {
                    pending += mesh.endpoint(id).expect("mesh node").pending();
                }
                pending
            })
        });

        // Exactly once, in order, complete — per (from, to) stream.
        assert_eq!(got, expected, "delivered streams must equal the send script");
        let totals = mesh.total_stats();
        assert_eq!(totals.abandoned, 0, "unbounded policy never abandons");
        assert_eq!(
            totals.delivered,
            script.len() as u64,
            "reliable delivered counter must equal exactly-once app deliveries"
        );

        // NetStats accounting invariants: every physical copy created
        // (logical sends + injected duplicates) is in exactly one of
        // {delivered, dropped, lost, still in flight} — no copy counted
        // twice, none unaccounted.
        let n = net.stats;
        assert_eq!(
            n.messages + n.duplicated,
            n.delivered + n.dropped + n.lost + net.in_flight_count() as u64,
            "physical-copy conservation: {n:?} + in_flight {}",
            net.in_flight_count()
        );
        assert!(n.reordered <= n.delivered, "only delivered copies can be reordered");

        // Per-node breakdowns must sum to the global counters.
        let mut sums = [0u64; 7];
        for &id in &ids {
            let s = net.node_stats(id);
            for (acc, v) in sums.iter_mut().zip([
                s.messages, s.bytes, s.delivered, s.dropped, s.lost, s.duplicated, s.reordered,
            ]) {
                *acc += v;
            }
        }
        assert_eq!(
            sums,
            [n.messages, n.bytes, n.delivered, n.dropped, n.lost, n.duplicated, n.reordered],
            "per-node stats must sum to the global NetStats"
        );

        // Stray duplicated copies still in flight after drain must never
        // surface as new application deliveries.
        for t in drained_at + 1..drained_at + 40 {
            let stray = mesh.tick(&mut net, t);
            assert!(stray.is_empty(), "post-drain deliveries at {t}: {stray:?}");
        }
    });
}
