//! Regression and accounting-invariant tests for [`Network`]'s traffic
//! counters ([`NetStats`]).
//!
//! The regression target: `send` used to allocate a fresh sequence
//! number for *each physical copy* of a message, so a fault-injected
//! duplicate arriving after its sibling was classified by the reorder
//! watermark as jitter reordering — even when no two logical sends ever
//! swapped places.  Copies of one logical send now share one seq, which
//! keeps `reordered` (cross-send swaps) disjoint from `duplicated`
//! (extra copies of one send).

use most_mobile::{FaultPlan, NetStats, Network, Payload};

/// Drains the network tick by tick over `ticks` and returns every
/// delivered message count.
fn drain(net: &mut Network, ticks: u64) -> u64 {
    let mut delivered = 0u64;
    for t in 0..=ticks {
        delivered += net.deliver_due(t).len() as u64;
    }
    delivered
}

/// A late-arriving duplicate of an already-delivered send must not be
/// counted as reordering.  Sends are spaced 100 ticks apart while
/// jitter is at most 6, so no two *logical* sends can swap places —
/// any nonzero `reordered` here is the duplicate-vs-sibling artifact.
///
/// Pre-fix (per-copy seq assignment) this fails: with always-on
/// duplication and jitter, some send's second copy draws a smaller
/// delay than its first and arrives ahead of it, and the first copy
/// then trips the watermark.
#[test]
fn duplicate_copies_are_not_counted_as_reordered() {
    let mut net = Network::new(1);
    net.set_faults(FaultPlan::new(17).with_duplication(1.0).with_jitter(6));
    let sends = 60u64;
    for k in 0..sends {
        net.send(1, 2, Payload::Cancel, k * 100);
    }
    let delivered = drain(&mut net, sends * 100 + 20);
    assert_eq!(delivered, 2 * sends, "always-duplicate, lossless: every copy arrives");
    assert_eq!(net.stats.duplicated, sends);
    assert_eq!(
        net.stats.reordered, 0,
        "sends 100 ticks apart with jitter <= 6 cannot reorder; duplicates \
         of one send must not trip the watermark"
    );
}

/// Genuine cross-send reordering is still detected after the fix:
/// distinct logical sends keep distinct seqs.
#[test]
fn cross_send_reordering_is_still_detected() {
    let mut net = Network::new(1);
    net.set_faults(FaultPlan::new(11).with_jitter(6));
    for _ in 0..40 {
        net.send(1, 2, Payload::Cancel, 0);
    }
    let delivered = drain(&mut net, 10);
    assert_eq!(delivered, 40);
    assert!(net.stats.reordered > 0, "jitter over simultaneous sends must reorder");
}

/// Physical-copy conservation: every copy created (logical sends plus
/// injected duplicates) ends up in exactly one of delivered / dropped /
/// lost / still-in-flight, at every observation point.
#[test]
fn physical_copy_conservation_holds_throughout() {
    let mut net = Network::new(2);
    net.set_faults(
        FaultPlan::new(23)
            .with_loss(0.3)
            .with_duplication(0.5)
            .with_jitter(4)
            .with_partition(&[1, 3], 20, 40),
    );
    net.add_offline_window(2, 10, 15);
    let check = |net: &Network, at: &str| {
        let n = net.stats;
        assert_eq!(
            n.messages + n.duplicated,
            n.delivered + n.dropped + n.lost + net.in_flight_count() as u64,
            "conservation violated {at}: {n:?} + in_flight {}",
            net.in_flight_count()
        );
    };
    for t in 0..60u64 {
        net.send(1, 2, Payload::Cancel, t);
        net.send(1, 3, Payload::Cancel, t);
        net.send(3, 2, Payload::Cancel, t);
        net.deliver_due(t);
        check(&net, "mid-run");
    }
    drain(&mut net, 200);
    check(&net, "after drain");
    assert_eq!(net.in_flight_count(), 0);
    assert!(net.stats.delivered > 0 && net.stats.lost > 0 && net.stats.dropped > 0);
}

/// `broadcast`'s return value matches the logical-send counter delta,
/// and the recipients' per-node delivered counts sum back to it on a
/// fault-free network.
#[test]
fn broadcast_count_matches_per_node_sums() {
    let mut net = Network::new(0);
    let nodes = [1u64, 2, 3, 4, 5];
    let before = net.stats.messages;
    let sent = net.broadcast(1, &nodes, Payload::Cancel, 0);
    assert_eq!(sent, nodes.len() as u64 - 1);
    assert_eq!(net.stats.messages - before, sent);
    net.deliver_due(0);
    let delivered_sum: u64 = nodes.iter().map(|&n| net.node_stats(n).delivered).sum();
    assert_eq!(delivered_sum, sent, "fault-free broadcast delivers to every recipient once");
    assert_eq!(net.stats.delivered, sent);
}

/// Per-node breakdowns sum to the global counters under mixed faults.
#[test]
fn per_node_stats_sum_to_global() {
    let mut net = Network::new(1);
    net.set_faults(FaultPlan::new(7).with_loss(0.25).with_duplication(0.4).with_jitter(3));
    net.add_offline_window(3, 5, 25);
    let nodes = [1u64, 2, 3];
    for t in 0..40u64 {
        net.send(1, 2, Payload::Cancel, t);
        net.send(2, 3, Payload::Cancel, t);
        net.send(3, 1, Payload::Cancel, t);
        net.deliver_due(t);
    }
    drain(&mut net, 100);
    let mut sum = NetStats::default();
    for &id in &nodes {
        let s = net.node_stats(id);
        sum.messages += s.messages;
        sum.bytes += s.bytes;
        sum.delivered += s.delivered;
        sum.dropped += s.dropped;
        sum.lost += s.lost;
        sum.duplicated += s.duplicated;
        sum.reordered += s.reordered;
    }
    assert_eq!(sum, net.stats, "per-node stats must sum to the global NetStats");
}
