//! Replica convergence under injected faults: a primary ships its WAL
//! record sequence over the reliable mesh to two followers while the
//! network loses ≥ 20% of copies, duplicates more, jitters delivery,
//! and cuts one partition window — and every follower still converges
//! to a **byte-identical** database fingerprint, with all registered
//! continuous-query answers equal to the primary's.

use most_core::wal::{apply_record, WalRecord};
use most_core::{Database, UpdateOp};
use most_ftl::Query;
use most_mobile::{FaultPlan, Network, ReliableMesh, ReplicaApplier, ReplicaPublisher, RetryPolicy};
use most_spatial::{Point, Polygon, Velocity};
use most_testkit::rng::Rng;
use most_testkit::ser::to_json_string;

const PRIMARY: u64 = 0;
const FOLLOWERS: [u64; 2] = [1, 2];

fn build_world(seed: u64) -> (Database, Vec<u64>) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut db = Database::new(300);
    db.add_region("P", Polygon::rectangle(-30.0, -30.0, 30.0, 30.0));
    let mut ids = Vec::new();
    for _ in 0..5 {
        let p = Point::new(rng.random_range(-60.0..60.0), rng.random_range(-60.0..60.0));
        let v = Velocity::new(rng.random_range(-2.0..2.0), rng.random_range(-2.0..2.0));
        ids.push(db.insert_moving_object("cars", p, v));
    }
    db.register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    (db, ids)
}

fn gen_records(seed: u64, ids: &[u64]) -> Vec<WalRecord> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed_f00d);
    let mut recs = Vec::new();
    for _ in 0..20 {
        if rng.random_bool(0.35) {
            recs.push(WalRecord::Advance { ticks: rng.random_range(1..3u64) });
        } else {
            recs.push(WalRecord::Batch {
                ops: vec![UpdateOp::Motion {
                    id: ids[rng.random_range(0..ids.len())],
                    velocity: Velocity::new(
                        rng.random_range(-2.0..2.0),
                        rng.random_range(-2.0..2.0),
                    ),
                }],
            });
        }
    }
    recs
}

/// Canonical CQ observation: every registered query's materialized
/// answer, serialized.
fn cq_answers(db: &Database) -> String {
    let mut out = String::new();
    for id in db.continuous_registry().ids() {
        out.push_str(&to_json_string(db.continuous_answer(id).unwrap()).unwrap());
        out.push(';');
    }
    out
}

#[test]
fn followers_converge_under_loss_duplication_and_partition() {
    for (seed, loss) in [(1u64, 0.20), (2, 0.30), (3, 0.40)] {
        let (initial, ids) = build_world(seed);
        let records = gen_records(seed, &ids);

        // The primary applies its script up front; the mesh only has to
        // deliver the records.
        let mut primary = initial.clone();
        for r in &records {
            apply_record(&mut primary, r).unwrap();
        }

        let nodes = [PRIMARY, FOLLOWERS[0], FOLLOWERS[1]];
        let mut net = Network::new(1);
        net.set_faults(
            FaultPlan::new(seed ^ 0xFA17)
                .with_loss(loss)
                .with_duplication(0.2)
                .with_jitter(2)
                // One partition window isolating follower 1 mid-stream.
                .with_partition(&[FOLLOWERS[0]], 5, 20),
        );
        let policy = RetryPolicy { base_backoff: 2, max_backoff: 16, ..RetryPolicy::unbounded() };
        let mut mesh = ReliableMesh::new(&nodes, policy);
        let publisher = ReplicaPublisher::new(PRIMARY, &FOLLOWERS);
        let mut appliers: Vec<ReplicaApplier> = FOLLOWERS
            .iter()
            .map(|&f| ReplicaApplier::new(f, initial.clone(), 0))
            .collect();

        // Publish one record per tick, then keep ticking until the mesh
        // drains (unbounded retries guarantee it does).
        let mut drained = false;
        for t in 0..20_000u64 {
            if (t as usize) < records.len() {
                publisher.publish(&mut mesh, &mut net, t, &records[t as usize], t);
            }
            for d in mesh.tick(&mut net, t) {
                for a in appliers.iter_mut() {
                    if a.node() == d.at {
                        a.on_delivery(&d);
                    }
                }
            }
            if t as usize >= records.len() && mesh.is_idle() {
                drained = true;
                break;
            }
        }
        assert!(drained, "seed {seed}: mesh never drained");

        for a in &appliers {
            assert_eq!(
                a.applied(),
                records.len() as u64,
                "seed {seed}: follower {} missed records",
                a.node()
            );
            assert_eq!(a.buffered(), 0, "seed {seed}: follower {} left a gap", a.node());
            assert_eq!(
                a.fingerprint(),
                primary.fingerprint(),
                "seed {seed}: follower {} diverged from the primary",
                a.node()
            );
            assert_eq!(
                cq_answers(a.db()),
                cq_answers(&primary),
                "seed {seed}: follower {} CQ answers diverged",
                a.node()
            );
        }
    }
}
