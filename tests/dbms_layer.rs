//! Integration: the Section 5.1 MOST-on-DBMS layer agrees with the native
//! MOST engine on the same fleet.

use moving_objects::core::rewrite::{MostDbmsLayer, MovingTableDef};
use moving_objects::core::Database;
use moving_objects::dbms::expr::{CmpOp, Expr};
use moving_objects::dbms::query::SelectQuery;
use moving_objects::dbms::schema::ColumnType;
use moving_objects::dbms::value::Value;
use moving_objects::ftl::Query;
use moving_objects::workload::cars::CarScenario;

/// Builds the same fleet twice: natively and through the DBMS layer.
fn twin_representations() -> (Database, MostDbmsLayer, Vec<u64>) {
    let scenario = CarScenario {
        count: 25,
        area: 300.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon: 400,
        seed: 77,
    };
    let plans = scenario.generate();

    let mut db = Database::new(1_000);
    let ids = scenario.populate(&mut db, &plans);

    let mut layer = MostDbmsLayer::new();
    layer
        .create_table(MovingTableDef {
            name: "cars".into(),
            static_columns: vec![
                ("id".into(), ColumnType::Id),
                ("PRICE".into(), ColumnType::Float),
            ],
            dynamic_attrs: vec!["X".into(), "Y".into()],
        })
        .unwrap();
    for (id, p) in ids.iter().zip(&plans) {
        layer
            .insert(
                "cars",
                vec![Value::Id(*id), p.price.into()],
                vec![
                    (p.start.x, 0, p.velocity.dx),
                    (p.start.y, 0, p.velocity.dy),
                ],
            )
            .unwrap();
    }
    (db, layer, ids)
}

#[test]
fn rewrite_layer_agrees_with_native_engine_over_time() {
    let (mut db, layer, _) = twin_representations();
    // "Cars currently in the [-50,50]² square with price <= 130."
    let ftl = Query::parse(
        "RETRIEVE o WHERE o.X >= -50 AND o.X <= 50 AND o.Y >= -50 AND o.Y <= 50 AND o.PRICE <= 130",
    )
    .unwrap();
    let sql = SelectQuery::from_table("cars").column("id").filter(
        Expr::cmp(CmpOp::Ge, Expr::col("X"), Expr::val(-50.0))
            .and(Expr::cmp(CmpOp::Le, Expr::col("X"), Expr::val(50.0)))
            .and(Expr::cmp(CmpOp::Ge, Expr::col("Y"), Expr::val(-50.0)))
            .and(Expr::cmp(CmpOp::Le, Expr::col("Y"), Expr::val(50.0)))
            .and(Expr::cmp(CmpOp::Le, Expr::col("PRICE"), Expr::val(130.0))),
    );
    for now in [0u64, 60, 150, 333] {
        db.advance_clock(now - db.now());
        let mut native: Vec<u64> = db
            .instantaneous_now(&ftl)
            .unwrap()
            .iter()
            .map(|v| v[0].as_id().unwrap())
            .collect();
        native.sort_unstable();
        let (rs, stats) = layer.query(&sql, now).unwrap();
        let mut layered: Vec<u64> = rs
            .rows
            .iter()
            .map(|r| r.get(0).unwrap().as_id().unwrap())
            .collect();
        layered.sort_unstable();
        assert_eq!(native, layered, "t = {now}");
        assert_eq!(stats.dynamic_atoms, 4);
        assert_eq!(stats.subqueries, 16, "2^4 decomposition");
    }
}

#[test]
fn layer_updates_propagate() {
    let (_, mut layer, ids) = twin_representations();
    let target = ids[0];
    // Stop the car at t=100 wherever it is.
    layer
        .update_dynamic("cars", &Value::Id(target), "X", 100, None, Some(0.0))
        .unwrap();
    layer
        .update_dynamic("cars", &Value::Id(target), "Y", 100, None, Some(0.0))
        .unwrap();
    let q = SelectQuery::from_table("cars")
        .column("X")
        .column("Y")
        .filter(Expr::cmp(CmpOp::Eq, Expr::col("id"), Expr::Const(Value::Id(target))));
    let (at_100, _) = layer.query(&q, 100).unwrap();
    let (at_400, _) = layer.query(&q, 400).unwrap();
    assert_eq!(at_100.rows, at_400.rows, "a stopped car stays put");
}

#[test]
fn ftl_temporal_queries_run_over_the_dbms_layer() {
    // The last step of Section 5.1: temporal operators over the host DBMS —
    // maximal nontemporal subformulas come from the decomposed tables, the
    // appendix procedure combines them.  The layer-backed context must give
    // the same answers as the native MOST engine.
    use moving_objects::ftl::evaluate_query;
    use moving_objects::spatial::Polygon;
    use std::collections::BTreeMap;

    let (mut db, layer, _) = twin_representations();
    let mut regions = BTreeMap::new();
    regions.insert(
        "P".to_string(),
        Polygon::rectangle(-80.0, -80.0, 80.0, 80.0),
    );
    db.add_region("P", Polygon::rectangle(-80.0, -80.0, 80.0, 80.0));

    let queries = [
        "RETRIEVE o WHERE Eventually within 200 INSIDE(o, P)",
        "RETRIEVE o WHERE o.PRICE <= 120 AND Eventually (INSIDE(o, P) AND Always for 20 INSIDE(o, P))",
        "RETRIEVE o, n WHERE o <> n AND Eventually (DIST(o, n) <= 15)",
    ];
    for now in [0u64, 120] {
        db.advance_clock(now - db.now());
        let ctx = layer
            .ftl_context("cars", now, db.expiration(), regions.clone())
            .unwrap();
        for src in queries {
            let q = Query::parse(src).unwrap();
            let via_layer = evaluate_query(&ctx, &q).unwrap();
            let via_native = db.instantaneous(&q).unwrap();
            // Native answers are in global ticks; the layer context is
            // local to `now`.  Compare instantiations and interval shapes
            // by shifting.
            let native_local: Vec<_> = via_native
                .tuples
                .iter()
                .map(|t| (t.values.clone(), t.intervals.clone()))
                .collect();
            let layer_shifted: Vec<_> = via_layer
                .tuples
                .iter()
                .map(|t| {
                    let shifted = moving_objects::temporal::IntervalSet::from_intervals(
                        t.intervals.intervals().iter().map(|iv| iv.shift_up(now)),
                    );
                    (t.values.clone(), shifted)
                })
                .collect();
            assert_eq!(layer_shifted, native_local, "query {src} at t={now}");
        }
    }
}
