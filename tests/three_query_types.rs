//! Integration: the Section 2.3 semantics of instantaneous, continuous and
//! persistent queries, end to end through the public API.

use moving_objects::core::{Database, PersistentQuery};
use moving_objects::dbms::value::Value;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Polygon, Velocity};

fn speed_query() -> Query {
    Query::parse("RETRIEVE o WHERE [x <- o.VX] Eventually within 10 (o.VX >= 2 * x)").unwrap()
}

#[test]
fn figure_one_walkthrough() {
    let mut db = Database::new(100);
    let o = db.insert_moving_object("objects", Point::origin(), Velocity::new(5.0, 0.0));
    let cq = db.register_continuous(speed_query()).unwrap();
    let mut pq = PersistentQuery::enter(&db, speed_query());

    // t = 0.
    assert!(db.instantaneous_now(&speed_query()).unwrap().is_empty());
    assert!(db.continuous_display(cq, 0).unwrap().is_empty());
    assert!(pq.satisfied_now(&db).unwrap().is_empty());

    // t = 1: function 5t -> 7t.
    db.advance_clock(1);
    db.update_motion(o, Velocity::new(7.0, 0.0)).unwrap();
    assert!(pq.satisfied_now(&db).unwrap().is_empty());

    // t = 2: function 7t -> 10t; the speed doubled within the window.
    db.advance_clock(1);
    db.update_motion(o, Velocity::new(10.0, 0.0)).unwrap();
    assert!(db.instantaneous_now(&speed_query()).unwrap().is_empty());
    assert!(db.continuous_display(cq, 2).unwrap().is_empty());
    assert_eq!(pq.satisfied_now(&db).unwrap(), vec![vec![Value::Id(o)]]);
}

#[test]
fn instantaneous_depends_on_entry_time_only() {
    let mut db = Database::new(1_000);
    db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
    db.add_region("P", Polygon::rectangle(100.0, -5.0, 120.0, 5.0));
    let q = Query::parse("RETRIEVE o WHERE Eventually within 50 INSIDE(o, P)").unwrap();
    // Too far at t=0 (needs 100 ticks, window is 50).
    assert!(db.instantaneous_now(&q).unwrap().is_empty());
    // At t=60 the car is 40 ticks out: within the window.
    db.advance_clock(60);
    assert_eq!(db.instantaneous_now(&q).unwrap().len(), 1);
    // At t=110 the car is inside P itself (x = 110).
    db.advance_clock(50);
    assert_eq!(db.instantaneous_now(&q).unwrap().len(), 1);
    // At t=200 it has left P (x = 200) for good.
    db.advance_clock(90);
    assert!(db.instantaneous_now(&q).unwrap().is_empty());
}

#[test]
fn continuous_answer_is_served_from_materialized_tuples() {
    let mut db = Database::new(1_000);
    let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
    db.add_region("P", Polygon::rectangle(100.0, -5.0, 120.0, 5.0));
    let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    let cq = db.register_continuous(q).unwrap();
    // The single evaluation covers the whole pass through P.
    let answer = db.continuous_answer(cq).unwrap();
    let set = answer.intervals_for(&[Value::Id(car)]).unwrap();
    assert_eq!(set.first_tick(), Some(100));
    assert_eq!(set.last_tick(), Some(120));
    // Display changes over time with zero re-evaluation.
    for (t, expect) in [(0, 0), (99, 0), (100, 1), (110, 1), (121, 0)] {
        assert_eq!(db.continuous_display(cq, t).unwrap().len(), expect, "t = {t}");
    }
    assert_eq!(db.continuous_evaluations(), 1);
}

#[test]
fn continuous_refresh_rewrites_only_the_future() {
    let mut db = Database::new(1_000);
    let car = db.insert_moving_object("cars", Point::origin(), Velocity::new(1.0, 0.0));
    db.add_region("P", Polygon::rectangle(100.0, -5.0, 120.0, 5.0));
    let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    let cq = db.register_continuous(q).unwrap();
    // Serve up to t=110 (the car is inside), then it turns north.
    db.advance_clock(110);
    db.update_motion(car, Velocity::new(0.0, 1.0)).unwrap();
    let set = db
        .continuous_answer(cq)
        .unwrap()
        .intervals_for(&[Value::Id(car)])
        .unwrap()
        .clone();
    // Served past [100, 109] intact; future: still inside until it exits
    // P's top edge at y=5 (5 more ticks from t=110).
    assert!(set.contains(100) && set.contains(109));
    assert_eq!(set.last_tick(), Some(115));
    assert_eq!(db.continuous_evaluations(), 2);
}

#[test]
fn persistent_query_sees_static_attribute_history() {
    // Persistent queries watch *any* recorded updates — here a static
    // attribute change satisfying an assignment formula.
    let mut db = Database::new(100);
    let m = db.insert_moving_object("motels", Point::origin(), Velocity::zero());
    db.set_static(m, "PRICE", Value::from(100.0)).unwrap();
    let q = Query::parse(
        "RETRIEVE o WHERE [x <- o.PRICE] Eventually (o.PRICE <= x - 20)",
    )
    .unwrap();
    let mut pq = PersistentQuery::enter(&db, q);
    assert!(pq.satisfied_now(&db).unwrap().is_empty());
    db.advance_clock(5);
    db.set_static(m, "PRICE", Value::from(75.0)).unwrap();
    assert_eq!(pq.satisfied_now(&db).unwrap(), vec![vec![Value::Id(m)]]);
}
