//! Hermeticity guard: the workspace must build with zero registry
//! dependencies, forever.  This test parses every `Cargo.toml` in the
//! workspace and fails if any dependency entry could reach a registry —
//! i.e. is not a `path =` dependency or a `workspace = true` reference
//! to one.

use std::fs;
use std::path::{Path, PathBuf};

fn manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ exists") {
        let dir = entry.expect("readable entry").path();
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    assert!(out.len() > 5, "expected a workspace full of crates, found {out:?}");
    out
}

/// Returns the dependency lines of `text`, as (section, line) pairs —
/// every non-comment `name = ...` or `name.key = ...` line inside a
/// `[...dependencies...]` section, with multi-line inline tables folded.
fn dependency_lines(text: &str) -> Vec<(String, String)> {
    let mut section = String::new();
    let mut out = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = raw.split_once('#').map_or(raw, |(code, _)| code).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_owned();
            continue;
        }
        if !section.contains("dependencies") {
            continue;
        }
        // Fold `name = {` ... `}` spans (inline tables split over lines).
        let mut entry = line.to_owned();
        while entry.matches('{').count() > entry.matches('}').count() {
            let cont = lines.next().expect("unterminated inline table");
            entry.push(' ');
            entry.push_str(cont.split_once('#').map_or(cont, |(code, _)| code).trim());
        }
        out.push((section.clone(), entry));
    }
    out
}

#[test]
fn every_dependency_is_path_or_workspace() {
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).expect("manifest is readable");
        for (section, entry) in dependency_lines(&text) {
            let hermetic = entry.contains("path =")
                || entry.contains("path=")
                || entry.contains("workspace = true")
                || entry.contains("workspace=true")
                || entry.ends_with(".workspace = true");
            assert!(
                hermetic,
                "{}: [{}] has a non-path dependency: `{}` — the workspace \
                 must stay hermetic (no registry access in CI)",
                manifest.display(),
                section,
                entry
            );
        }
    }
}

#[test]
fn workspace_dependencies_all_point_into_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut seen = 0;
    for (section, entry) in dependency_lines(&text) {
        if section != "workspace.dependencies" {
            continue;
        }
        seen += 1;
        let path = entry
            .split("path =")
            .nth(1)
            .and_then(|rest| rest.split('"').nth(1))
            .unwrap_or_else(|| panic!("no path in `{entry}`"));
        assert!(
            root.join(path).join("Cargo.toml").is_file(),
            "workspace dependency path `{path}` has no manifest"
        );
        assert!(path.starts_with("crates/"), "`{path}` escapes crates/");
    }
    assert!(seen >= 9, "expected all most-* crates listed, saw {seen}");
}

#[test]
fn no_banned_external_crate_names_anywhere() {
    // The six crates this workspace replaced; a future PR must not
    // reintroduce them under any section.
    const BANNED: &[&str] = &["rand", "serde", "serde_json", "proptest", "criterion", "parking_lot"];
    for manifest in manifests() {
        let text = fs::read_to_string(&manifest).expect("manifest is readable");
        for (section, entry) in dependency_lines(&text) {
            let name = entry
                .split(['=', '.'])
                .next()
                .map(str::trim)
                .unwrap_or_default();
            assert!(
                !BANNED.contains(&name),
                "{}: [{}] declares banned external crate `{}`",
                manifest.display(),
                section,
                name
            );
        }
    }
}
