//! Property test for the recorded-history context: evaluating over
//! `DbContext::Recorded` with the interval algorithm must agree with the
//! per-tick oracle, for random update sequences and random anchor ticks —
//! this pins the origin-shifting and the piecewise series construction in
//! `most-core/src/snapshot.rs`.
//!
//! Previously-failing cases are pinned by `tests/persistent_oracle.seeds`
//! (one generator seed per line) and replayed before novel cases.

use most_testkit::check::{ints, one_of, tuple2, tuple3, vecs, Check, Gen};
use moving_objects::core::{AttrFunction, Database};
use moving_objects::ftl::semantics::naive_answer;
use moving_objects::ftl::{evaluate_query, Query};
use moving_objects::spatial::{Point, Polygon, Velocity};

#[derive(Debug, Clone)]
enum Ev {
    Advance(u64),
    Motion { obj: usize, vx: i32, vy: i32 },
    Price { obj: usize, price: u32 },
    Fuel { obj: usize, level: u32, rate: i32 },
}

fn arb_events() -> Gen<Vec<Ev>> {
    vecs(
        one_of(vec![
            ints(1..30u64).map(Ev::Advance),
            tuple3(ints(0..3usize), ints(-4i32..4), ints(-4i32..4))
                .map(|(obj, vx, vy)| Ev::Motion { obj, vx, vy }),
            tuple2(ints(0..3usize), ints(40..200u32))
                .map(|(obj, price)| Ev::Price { obj, price }),
            tuple3(ints(0..3usize), ints(50..150u32), ints(-4i32..0))
                .map(|(obj, level, rate)| Ev::Fuel { obj, level, rate }),
        ]),
        0..15,
    )
}

const QUERIES: &[&str] = &[
    "RETRIEVE o WHERE Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE [x <- o.VX] Eventually within 20 (o.VX >= 2 * x)",
    "RETRIEVE o WHERE o.PRICE <= 120 AND Eventually (o.FUEL <= 40)",
    "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 60 Until INSIDE(o, P))",
    "RETRIEVE o WHERE [p <- o.PRICE] Eventually (o.PRICE <= p - 30)",
];

#[test]
fn recorded_context_matches_oracle() {
    Check::new("persistent::recorded_context_matches_oracle")
        .cases(24)
        .regressions("tests/persistent_oracle.seeds")
        .run(&tuple2(arb_events(), ints(0..4u64)), |(events, origin_pick)| {
            let mut db = Database::new(80);
            let ids = [
                db.insert_moving_object("cars", Point::new(-40.0, 0.0), Velocity::new(1.0, 0.0)),
                db.insert_moving_object("cars", Point::new(40.0, 10.0), Velocity::new(-1.0, 0.0)),
                db.insert_moving_object("cars", Point::new(0.0, -30.0), Velocity::new(0.0, 1.0)),
            ];
            db.add_region("P", Polygon::rectangle(-20.0, -20.0, 20.0, 20.0));
            for (i, &id) in ids.iter().enumerate() {
                db.set_static(id, "PRICE", (100.0 + i as f64 * 20.0).into()).unwrap();
                db.set_dynamic_scalar(id, "FUEL", Some(120.0), Some(AttrFunction::Linear(-1.0)))
                    .unwrap();
            }
            for ev in events {
                match *ev {
                    Ev::Advance(n) => db.advance_clock(n),
                    Ev::Motion { obj, vx, vy } => db
                        .update_motion(ids[obj], Velocity::new(vx as f64 * 0.5, vy as f64 * 0.5))
                        .unwrap(),
                    Ev::Price { obj, price } => db
                        .set_static(ids[obj], "PRICE", (price as f64).into())
                        .unwrap(),
                    Ev::Fuel { obj, level, rate } => db
                        .set_dynamic_scalar(
                            ids[obj],
                            "FUEL",
                            Some(level as f64),
                            Some(AttrFunction::Linear(rate as f64 * 0.5)),
                        )
                        .unwrap(),
                }
            }
            // Anchor somewhere in the recorded past (including now).
            let origin = (db.now() * origin_pick) / 4;
            let ctx = db.recorded_context(origin);
            for src in QUERIES {
                let q = Query::parse(src).unwrap();
                let fast = evaluate_query(&ctx, &q).expect("interval algorithm");
                let slow = naive_answer(&ctx, &q).expect("oracle");
                assert_eq!(fast, slow, "query {src} anchored at {origin}");
            }
        });
}
