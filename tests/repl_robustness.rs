//! The mostql command processor must never panic: arbitrary input produces
//! either output or an error string, and the session stays usable.

use moving_objects::repl::{Outcome, Session};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_lines_never_panic(lines in prop::collection::vec("\\PC{0,60}", 0..8)) {
        let mut s = Session::new(1_000);
        for line in &lines {
            let _ = s.execute(line);
        }
        // Still functional afterwards.
        match s.execute("NOW") {
            Outcome::Text(t) => prop_assert!(t.starts_with("t = ")),
            Outcome::Quit => prop_assert!(false, "NOW must not quit"),
        }
    }

    #[test]
    fn command_soup_never_panics(
        parts in prop::collection::vec(
            prop_oneof![
                Just("CREATE"), Just("SET"), Just("MOVE"), Just("DROP"),
                Just("REGION"), Just("TICK"), Just("SHOW"), Just("CANCEL"),
                Just("RETRIEVE"), Just("CONTINUOUS"), Just("EXPLAIN"),
                Just("NEAREST"), Just("a"), Just("a.P"), Just("AT"),
                Just("VEL"), Just("RECT"), Just("("), Just(")"), Just(","),
                Just("="), Just("1"), Just("-2.5"), Just("cq0"), Just("WHERE"),
                Just("o"), Just("INSIDE"), Just("true"),
            ],
            0..12
        )
    ) {
        let mut s = Session::new(1_000);
        // Seed some state so lookups can succeed sometimes.
        let _ = s.execute("CREATE a AT (0, 0) VEL (1, 0)");
        let _ = s.execute("REGION P RECT (0, 0, 10, 10)");
        let line = parts.join(" ");
        let _ = s.execute(&line);
        match s.execute("OBJECTS") {
            Outcome::Text(_) => {}
            Outcome::Quit => prop_assert!(false, "OBJECTS must not quit"),
        }
    }
}
