//! The mostql command processor must never panic: arbitrary input produces
//! either output or an error string, and the session stays usable.

use most_testkit::check::{select, vecs, Check, Gen};
use moving_objects::repl::{Outcome, Session};

/// Arbitrary printable-ish lines (up to 60 chars).
fn arb_line() -> Gen<String> {
    let pool: Vec<char> = ('\u{20}'..='\u{7e}')
        .chain(['\t', 'é', 'Ω', '🚙'])
        .collect();
    vecs(select(&pool), 0..61).map(|cs| cs.into_iter().collect())
}

#[test]
fn arbitrary_lines_never_panic() {
    Check::new("repl::arbitrary_lines_never_panic").cases(256).run(
        &vecs(arb_line(), 0..8),
        |lines| {
            let mut s = Session::new(1_000);
            for line in lines {
                let _ = s.execute(line);
            }
            // Still functional afterwards.
            match s.execute("NOW") {
                Outcome::Text(t) => assert!(t.starts_with("t = ")),
                Outcome::Quit => panic!("NOW must not quit"),
            }
        },
    );
}

#[test]
fn command_soup_never_panics() {
    let parts = vecs(
        select(&[
            "CREATE", "SET", "MOVE", "DROP", "REGION", "TICK", "SHOW", "CANCEL", "RETRIEVE",
            "CONTINUOUS", "EXPLAIN", "NEAREST", "a", "a.P", "AT", "VEL", "RECT", "(", ")", ",",
            "=", "1", "-2.5", "cq0", "WHERE", "o", "INSIDE", "true",
        ]),
        0..12,
    );
    Check::new("repl::command_soup_never_panics").cases(256).run(&parts, |parts| {
        let mut s = Session::new(1_000);
        // Seed some state so lookups can succeed sometimes.
        let _ = s.execute("CREATE a AT (0, 0) VEL (1, 0)");
        let _ = s.execute("REGION P RECT (0, 0, 10, 10)");
        let line = parts.join(" ");
        let _ = s.execute(&line);
        match s.execute("OBJECTS") {
            Outcome::Text(_) => {}
            Outcome::Quit => panic!("OBJECTS must not quit"),
        }
    });
}
