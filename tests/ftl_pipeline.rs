//! Integration: parse → evaluate → answer across the whole stack, with the
//! interval algorithm pinned to the per-tick oracle on generated workloads.

use moving_objects::ftl::context::MemoryContext;
use moving_objects::ftl::semantics::naive_answer;
use moving_objects::ftl::{evaluate_query, Query};
use moving_objects::spatial::Polygon;
use moving_objects::workload::cars::CarScenario;

fn build_ctx(seed: u64, n: usize, updates: bool) -> MemoryContext {
    let scenario = CarScenario {
        count: n,
        area: 200.0,
        speed: (0.5, 2.0),
        mean_update_gap: if updates { 60.0 } else { 1e18 },
        horizon: 150,
        seed,
    };
    let mut ctx = MemoryContext::new(150);
    for (i, plan) in scenario.generate().iter().enumerate() {
        ctx.add_object(i as u64 + 1, plan.trajectory());
        ctx.set_attr(i as u64 + 1, "PRICE", plan.price);
    }
    ctx.add_region("P", Polygon::rectangle(-80.0, -80.0, 80.0, 80.0));
    ctx.add_region("Q", Polygon::rectangle(100.0, -60.0, 220.0, 60.0));
    ctx
}

const QUERIES: &[&str] = &[
    "RETRIEVE o WHERE o.PRICE <= 120 AND Eventually within 60 INSIDE(o, P)",
    "RETRIEVE o WHERE Eventually (INSIDE(o, P) AND Always for 15 INSIDE(o, P))",
    "RETRIEVE o WHERE Eventually within 50 (INSIDE(o, P) AND Eventually after 40 INSIDE(o, Q))",
    "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 100 Until (INSIDE(o, P) AND INSIDE(n, P)))",
    "RETRIEVE o WHERE Nexttime Nexttime (o.X >= 0 AND o.Y >= 0)",
    "RETRIEVE o WHERE [x <- o.SPEED] Always (o.SPEED >= x)",
    "RETRIEVE o, n WHERE Eventually WITHIN_SPHERE(30, o, n, POINT(0, 0))",
    "RETRIEVE o WHERE OUTSIDE(o, P) until_within 80 INSIDE(o, P)",
    "RETRIEVE o WHERE NOT Eventually INSIDE(o, Q)",
    "RETRIEVE o WHERE INSIDE(o, P) OR INSIDE(o, Q)",
];

#[test]
fn algorithm_matches_oracle_without_updates() {
    let ctx = build_ctx(31, 8, false);
    for src in QUERIES {
        let q = Query::parse(src).expect("parses");
        let fast = evaluate_query(&ctx, &q).expect("interval algorithm");
        let slow = naive_answer(&ctx, &q).expect("oracle");
        assert_eq!(fast, slow, "query: {src}");
    }
}

#[test]
fn algorithm_matches_oracle_with_piecewise_trajectories() {
    // Persistent-style contexts: trajectories carry recorded motion-vector
    // updates, exercising the piecewise predicate paths.
    for seed in [1u64, 2, 3] {
        let ctx = build_ctx(seed, 6, true);
        for src in QUERIES {
            let q = Query::parse(src).expect("parses");
            let fast = evaluate_query(&ctx, &q).expect("interval algorithm");
            let slow = naive_answer(&ctx, &q).expect("oracle");
            assert_eq!(fast, slow, "seed {seed}, query: {src}");
        }
    }
}

#[test]
fn parse_display_round_trip() {
    for src in QUERIES {
        let q = Query::parse(src).expect("parses");
        let q2 = Query::parse(&q.to_string()).expect("round-trips");
        assert_eq!(q, q2, "source: {src}");
    }
}

#[test]
fn answers_serve_continuous_displays() {
    let ctx = build_ctx(7, 10, false);
    let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
    let answer = evaluate_query(&ctx, &q).unwrap();
    // The at_tick display must agree with direct per-tick evaluation.
    let oracle = naive_answer(&ctx, &q).unwrap();
    for t in [0u64, 10, 50, 100, 150] {
        let a: Vec<_> = answer.at_tick(t).iter().map(|x| x.values.clone()).collect();
        let b: Vec<_> = oracle.at_tick(t).iter().map(|x| x.values.clone()).collect();
        assert_eq!(a, b, "t = {t}");
    }
}

#[test]
fn scalar_dynamic_attributes_queryable() {
    // Fuel drains linearly; FTL sees it through the dynamic_series hook.
    use moving_objects::core::{AttrFunction, Database};
    let mut db = Database::new(200);
    let a = db.insert_moving_object("tanks", Default::default(), Default::default());
    let b = db.insert_moving_object("tanks", Default::default(), Default::default());
    db.set_dynamic_scalar(a, "FUEL", Some(100.0), Some(AttrFunction::Linear(-1.0)))
        .unwrap();
    db.set_dynamic_scalar(b, "FUEL", Some(100.0), Some(AttrFunction::Linear(-0.1)))
        .unwrap();
    let q = Query::parse("RETRIEVE o WHERE Eventually within 120 (o.FUEL <= 20)").unwrap();
    let ans = db.instantaneous(&q).unwrap();
    // Tank a hits 20 at t=80 (within 120); tank b would need t=800.
    assert_eq!(ans.ids(), vec![a]);
    // The quadratic extension: braking consumption.
    db.set_dynamic_scalar(
        b,
        "FUEL",
        None,
        Some(AttrFunction::Quadratic { accel: -0.01, slope: -0.1 }),
    )
    .unwrap();
    let ans = db.instantaneous(&q).unwrap();
    // Now b's fuel = 100 - 0.1 t - 0.01 t²; hits 20 near t ≈ 85 < 120.
    assert_eq!(ans.ids(), vec![a, b]);
}
