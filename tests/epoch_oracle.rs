//! Property test for epoch snapshot isolation: for **random
//! update/query interleavings**, any answer returned while readers race
//! a writer through `EpochDb` equals the answer at some epoch the
//! single-threaded oracle also produced — in fact at exactly the epoch
//! the reader pinned.  Scripts are plain data, so the testkit harness
//! shrinks failing interleavings to a minimal step sequence.
//!
//! Previously-failing cases are pinned by `tests/epoch_oracle.seeds`
//! (one generator seed per line) and replayed before novel cases.

use most_testkit::check::{ints, one_of, tuple2, tuple3, vecs, Check, Gen};
use most_testkit::ser::to_json_string;
use moving_objects::core::{Database, SharedDatabase, UpdateOp};
use moving_objects::dbms::value::Value;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Polygon, Velocity};
use std::thread;

/// One writer step; each publishes exactly one epoch.
#[derive(Debug, Clone)]
enum Ev {
    Advance(u64),
    Motion { obj: usize, vx: i32, vy: i32 },
    Batch { obj: usize, price: u32, poison: bool },
}

fn arb_script() -> Gen<Vec<Ev>> {
    vecs(
        one_of(vec![
            ints(1..5u64).map(Ev::Advance),
            tuple3(ints(0..3usize), ints(-4i32..4), ints(-4i32..4))
                .map(|(obj, vx, vy)| Ev::Motion { obj, vx, vy }),
            tuple3(ints(0..3usize), ints(40..200u32), ints(0..4u32))
                .map(|(obj, price, p)| Ev::Batch { obj, price, poison: p == 0 }),
        ]),
        0..10,
    )
}

fn world() -> (Database, [u64; 3], u64) {
    let mut db = Database::new(100);
    let ids = [
        db.insert_moving_object("cars", Point::new(-40.0, 0.0), Velocity::new(1.0, 0.0)),
        db.insert_moving_object("cars", Point::new(40.0, 10.0), Velocity::new(-1.0, 0.0)),
        db.insert_moving_object("cars", Point::new(0.0, -30.0), Velocity::new(0.0, 1.0)),
    ];
    db.add_region("P", Polygon::rectangle(-20.0, -20.0, 20.0, 20.0));
    for (i, &id) in ids.iter().enumerate() {
        db.set_static(id, "PRICE", (100.0 + i as f64 * 20.0).into()).unwrap();
    }
    let cq = db
        .register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    (db, ids, cq)
}

/// Canonical bytes for all three query types on one state.
fn observe(db: &Database, cq: u64) -> String {
    let inst = Query::parse("RETRIEVE o WHERE Eventually within 40 INSIDE(o, P)").unwrap();
    let pers = Query::parse("RETRIEVE o WHERE Eventually within 20 (o.PRICE <= 110)").unwrap();
    [
        db.now().to_string(),
        to_json_string(&db.instantaneous_readonly(&inst).unwrap()).unwrap(),
        to_json_string(&db.continuous_display(cq, db.now()).unwrap()).unwrap(),
        to_json_string(&db.persistent_answer(&pers, 0).unwrap()).unwrap(),
    ]
    .join("\n")
}

fn batch_ops(ids: &[u64; 3], obj: usize, price: u32, poison: bool) -> Vec<UpdateOp> {
    let mut ops = vec![UpdateOp::Static {
        id: ids[obj],
        attr: "PRICE".into(),
        value: Value::from(price as f64),
    }];
    if poison {
        // Stops the batch here; the prefix above must still publish as
        // this step's (single) epoch.
        ops.push(UpdateOp::Motion { id: 999_999, velocity: Velocity::zero() });
    }
    ops.push(UpdateOp::Motion { id: ids[(obj + 1) % 3], velocity: Velocity::new(0.5, 0.0) });
    ops
}

fn apply_step(db: &mut Database, ids: &[u64; 3], ev: &Ev) {
    match *ev {
        Ev::Advance(n) => db.advance_clock(n),
        Ev::Motion { obj, vx, vy } => db
            .update_motion(ids[obj], Velocity::new(vx as f64 * 0.5, vy as f64 * 0.5))
            .unwrap(),
        Ev::Batch { obj, price, poison } => {
            let _ = db.apply_updates(&batch_ops(ids, obj, price, poison));
        }
    }
}

#[test]
fn concurrent_epoch_answers_match_an_oracle_epoch() {
    Check::new("epoch::concurrent_epoch_answers_match_an_oracle_epoch")
        .cases(24)
        .regressions("tests/epoch_oracle.seeds")
        .run(&tuple2(arb_script(), ints(1..4usize)), |(script, readers)| {
            let (db, ids, cq) = world();
            // Oracle: replay single-threaded, record every epoch's bytes.
            let mut oracle_db = db.clone();
            let mut expected = vec![observe(&oracle_db, cq)];
            for ev in script {
                apply_step(&mut oracle_db, &ids, ev);
                expected.push(observe(&oracle_db, cq));
            }
            // Concurrent run: the writer publishes one epoch per step
            // while `readers` threads pin and check — no sleeps.
            let shared = SharedDatabase::new(db);
            thread::scope(|s| {
                let writer = {
                    let shared = shared.clone();
                    s.spawn(move || {
                        for ev in script {
                            match *ev {
                                Ev::Advance(n) => shared.advance_clock(n),
                                Ev::Motion { obj, vx, vy } => shared
                                    .update_motion(
                                        ids[obj],
                                        Velocity::new(vx as f64 * 0.5, vy as f64 * 0.5),
                                    )
                                    .unwrap(),
                                Ev::Batch { obj, price, poison } => {
                                    let r = shared
                                        .apply_updates(&batch_ops(&ids, obj, price, poison));
                                    assert_eq!(r.is_err(), poison);
                                }
                            }
                        }
                    })
                };
                for _ in 0..*readers {
                    let shared = shared.clone();
                    let expected = &expected;
                    s.spawn(move || {
                        for _ in 0..6 {
                            let pin = shared.pin();
                            let e = pin.epoch() as usize;
                            assert!(e < expected.len(), "epoch {e} never produced by oracle");
                            assert_eq!(
                                observe(pin.db(), cq),
                                expected[e],
                                "epoch {e} is not an oracle state"
                            );
                        }
                    });
                }
                writer.join().expect("writer");
            });
            // Quiescent: published epoch == last oracle state; accounting
            // conserves with only the published snapshot alive.
            let pin = shared.pin();
            assert_eq!(pin.epoch() as usize, script.len());
            assert_eq!(observe(pin.db(), cq), expected[script.len()]);
            drop(pin);
            let st = shared.epoch_stats();
            assert_eq!(st.created, st.retired + st.live, "conservation: {st:?}");
            assert_eq!(st.live, 1);
        });
}
