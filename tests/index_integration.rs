//! Integration: the Section 4 index answers the same questions as FTL /
//! scan paths, through the database facade and standalone.

use moving_objects::core::Database;
use moving_objects::ftl::Query;
use moving_objects::index::{DynamicAttributeIndex, IndexKind, RebuildingIndex};
use moving_objects::spatial::{Point, Rect, Velocity};
use moving_objects::workload::cars::{apply_due_updates, CarScenario};

#[test]
fn database_spatial_index_matches_ftl_inside_query() {
    let scenario = CarScenario {
        count: 40,
        area: 300.0,
        speed: (0.5, 2.0),
        mean_update_gap: 80.0,
        horizon: 400,
        seed: 13,
    };
    let plans = scenario.generate();
    let mut db = Database::new(1_000);
    let ids = scenario.populate(&mut db, &plans);
    db.enable_spatial_index(Rect::new(-2_000.0, -2_000.0, 2_000.0, 2_000.0));
    let rect = Rect::new(-60.0, -60.0, 60.0, 60.0);
    db.add_region(
        "R",
        moving_objects::spatial::Polygon::rectangle(-60.0, -60.0, 60.0, 60.0),
    );
    let q = Query::parse("RETRIEVE o WHERE INSIDE(o, R)").unwrap();
    let mut last = 0;
    for step in [0u64, 50, 137, 256, 399] {
        db.advance_clock(step - last);
        apply_due_updates(&mut db, &ids, &plans, last, step);
        last = step;
        let (via_index, used) = db.objects_in_rect(&rect);
        assert!(used, "index should serve the query");
        let via_ftl = db.instantaneous_now(&q).unwrap();
        let ftl_ids: Vec<u64> = via_ftl.iter().map(|v| v[0].as_id().unwrap()).collect();
        assert_eq!(via_index, ftl_ids, "t = {step}");
    }
}

#[test]
fn continuous_index_query_matches_ftl_windows() {
    // The index's continuous range query on attribute A mirrors an FTL
    // comparison query's satisfaction intervals.
    use moving_objects::ftl::context::MemoryContext;
    use moving_objects::ftl::evaluate_query;
    use moving_objects::spatial::Trajectory;

    let lifetime = 300u64;
    let mut idx = DynamicAttributeIndex::new(IndexKind::QuadTree, lifetime, (-1_000.0, 1_000.0));
    let mut ctx = MemoryContext::new(lifetime);
    // A.value == X coordinate of each car.
    let setups = [(0.0, 1.0), (500.0, -2.0), (120.0, 0.0), (-300.0, 2.5)];
    for (i, &(x0, vx)) in setups.iter().enumerate() {
        let id = i as u64 + 1;
        idx.insert(id, 0, x0, vx);
        ctx.add_object(
            id,
            Trajectory::starting_at(Point::new(x0, 0.0), Velocity::new(vx, 0.0)),
        );
    }
    let (rows, _) = idx.continuous(0, 100.0, 150.0);
    let q = Query::parse("RETRIEVE o WHERE o.X >= 100 AND o.X <= 150").unwrap();
    let answer = evaluate_query(&ctx, &q).unwrap();
    assert_eq!(rows.len(), answer.len());
    for (id, set) in rows {
        let want = answer
            .intervals_for(&[moving_objects::dbms::value::Value::Id(id)])
            .unwrap_or_else(|| panic!("object {id} missing from FTL answer"));
        assert_eq!(&set, want, "object {id}");
    }
}

#[test]
fn rebuilding_index_tracks_long_lived_objects() {
    let mut idx = RebuildingIndex::new(IndexKind::QuadTree, 200, (-1e5, 1e5));
    idx.insert(1, 0, 0.0, 1.0);
    idx.insert(2, 0, 1_000.0, -1.0);
    // March far beyond several lifetimes with periodic queries.
    for epoch in 1..=10u64 {
        let t = epoch * 150;
        let (ids, _) = idx.instantaneous(t, t as f64 - 0.5, t as f64 + 0.5);
        assert_eq!(ids, vec![1], "object 1 has value == t at every t (t = {t})");
    }
    assert!(idx.rebuilds >= 6, "rebuilds = {}", idx.rebuilds);
}

#[test]
fn index_pruned_ftl_answers_equal_unpruned() {
    // Section 4's purpose: INSIDE atoms skip objects that can never enter
    // the region.  The pruned evaluation must be answer-identical.
    let scenario = CarScenario {
        count: 60,
        area: 800.0,
        speed: (0.5, 2.0),
        mean_update_gap: 120.0,
        horizon: 400,
        seed: 21,
    };
    let plans = scenario.generate();
    let queries = [
        "RETRIEVE o WHERE Eventually within 300 INSIDE(o, P)",
        "RETRIEVE o WHERE INSIDE(o, P) AND o.PRICE <= 150",
        "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 80 Until INSIDE(o, P))",
        "RETRIEVE o WHERE NOT Eventually INSIDE(o, P)", // complement needs full domain
    ];
    let run = |use_index: bool| {
        let mut db = Database::new(600);
        db.add_region(
            "P",
            moving_objects::spatial::Polygon::rectangle(-80.0, -80.0, 80.0, 80.0),
        );
        let ids = scenario.populate(&mut db, &plans);
        if use_index {
            db.enable_spatial_index(Rect::new(-5_000.0, -5_000.0, 5_000.0, 5_000.0));
        }
        let mut answers = Vec::new();
        let mut last = 0;
        for now in [0u64, 77, 240] {
            db.advance_clock(now - db.now());
            apply_due_updates(&mut db, &ids, &plans, last, now);
            last = now;
            for q in &queries {
                answers.push(db.instantaneous(&Query::parse(q).unwrap()).unwrap());
            }
        }
        answers
    };
    let plain = run(false);
    let pruned = run(true);
    assert_eq!(plain, pruned);
    // And the pruning is actually engaged: with the index on, a region far
    // from everything yields an empty candidate set instantly.
    let mut db = Database::new(600);
    scenario.populate(&mut db, &plans);
    db.add_region(
        "FAR",
        moving_objects::spatial::Polygon::rectangle(90_000.0, 90_000.0, 90_010.0, 90_010.0),
    );
    db.enable_spatial_index(Rect::new(-5_000.0, -5_000.0, 5_000.0, 5_000.0));
    let ctx = db.current_context();
    use moving_objects::ftl::EvalContext;
    let cands = ctx
        .inside_candidates(db.region("FAR").unwrap())
        .expect("index enabled and window in epoch");
    assert!(cands.is_empty(), "nothing ever reaches FAR: {cands:?}");
}
