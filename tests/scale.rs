//! Large-scale smoke tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`): validate that the headline claims
//! hold at sizes close to the full-scale experiment runs.

use moving_objects::ftl::Query;
use moving_objects::index::{DynamicAttributeIndex, IndexKind, ScanIndex};
use moving_objects::spatial::Polygon;
use moving_objects::workload::cars::CarScenario;
use std::time::Instant;

#[test]
#[ignore = "large-scale; run with --release -- --ignored"]
fn index_handles_two_hundred_thousand_objects() {
    let n = 200_000u64;
    let mut idx = DynamicAttributeIndex::new(
        IndexKind::RTree,
        1_000,
        (-(n as f64), 2.0 * n as f64),
    );
    let mut scan = ScanIndex::new();
    for i in 0..n {
        let v0 = (i as f64 * 13.37) % (n as f64);
        let slope = ((i % 11) as f64 - 5.0) * 0.1;
        idx.insert(i, 0, v0, slope);
        scan.upsert(i, 0, v0, slope);
    }
    let window = n as f64 / 200.0; // 0.5% selectivity
    let t0 = Instant::now();
    let mut idx_total = 0usize;
    for k in 0..50u64 {
        let lo = (k as f64 * 97.0) % (n as f64 - window);
        let (ids, _) = idx.instantaneous(k * 17 % 1000, lo, lo + window);
        idx_total += ids.len();
    }
    let idx_time = t0.elapsed();
    let t0 = Instant::now();
    let mut scan_total = 0usize;
    for k in 0..50u64 {
        let lo = (k as f64 * 97.0) % (n as f64 - window);
        let (ids, _) = scan.instantaneous(k * 17 % 1000, lo, lo + window);
        scan_total += ids.len();
    }
    let scan_time = t0.elapsed();
    assert_eq!(idx_total, scan_total);
    assert!(
        idx_time < scan_time,
        "index {idx_time:?} should beat scan {scan_time:?} at n = {n}"
    );
}

#[test]
#[ignore = "large-scale; run with --release -- --ignored"]
fn ftl_queries_over_a_thousand_objects() {
    let scenario = CarScenario {
        count: 1_000,
        area: 2_000.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon: 500,
        seed: 1,
    };
    let plans = scenario.generate();
    let mut db = moving_objects::core::Database::new(500);
    scenario.populate(&mut db, &plans);
    db.add_region("P", Polygon::rectangle(-200.0, -200.0, 200.0, 200.0));
    let q = Query::parse(
        "RETRIEVE o WHERE o.PRICE <= 120 AND Eventually within 300 (INSIDE(o, P) AND Always for 20 INSIDE(o, P))",
    )
    .unwrap();
    let t0 = Instant::now();
    let answer = db.instantaneous(&q).unwrap();
    let dt = t0.elapsed();
    assert!(!answer.is_empty());
    assert!(
        dt.as_secs_f64() < 5.0,
        "1000-object temporal query took {dt:?}"
    );
}

#[test]
#[ignore = "large-scale; run with --release -- --ignored"]
fn index_pruning_accelerates_ftl_inside_queries() {
    use moving_objects::core::Database;
    use moving_objects::spatial::Rect;
    let scenario = CarScenario {
        count: 20_000,
        area: 20_000.0,
        speed: (0.5, 2.0),
        mean_update_gap: 1e18,
        horizon: 500,
        seed: 3,
    };
    let plans = scenario.generate();
    let q = Query::parse("RETRIEVE o WHERE Eventually within 400 INSIDE(o, P)").unwrap();
    let build = |index: bool| {
        let mut db = Database::new(500);
        db.add_region("P", Polygon::rectangle(-150.0, -150.0, 150.0, 150.0));
        scenario.populate(&mut db, &plans);
        if index {
            db.enable_spatial_index(Rect::new(-60_000.0, -60_000.0, 60_000.0, 60_000.0));
        }
        db
    };
    let mut plain_db = build(false);
    let t0 = Instant::now();
    let plain = plain_db.instantaneous(&q).unwrap();
    let plain_time = t0.elapsed();
    let mut indexed_db = build(true);
    let t0 = Instant::now();
    let indexed = indexed_db.instantaneous(&q).unwrap();
    let indexed_time = t0.elapsed();
    assert_eq!(plain, indexed);
    assert!(
        indexed_time.as_secs_f64() < plain_time.as_secs_f64(),
        "pruned {indexed_time:?} should beat full enumeration {plain_time:?}"
    );
    println!("20k objects: full {plain_time:?} vs index-pruned {indexed_time:?}");
}
