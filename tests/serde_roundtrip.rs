//! Serialization round-trips: queries, answers, values, geometry and
//! interval sets all survive JSON — the wire format a MOST deployment
//! would ship between the server and moving clients (Section 5.2).
//!
//! Serialization is provided by the in-repo `most-testkit::ser` module
//! (`ToJson`/`FromJson`), not an external serde stack.

use most_testkit::ser::{from_json_str, to_json_string, FromJson, ToJson};
use moving_objects::dbms::value::Value;
use moving_objects::ftl::answer::{Answer, AnswerTuple};
use moving_objects::ftl::{Formula, Query};
use moving_objects::spatial::{MovingPoint, Point, Polygon, Trajectory, Velocity};
use moving_objects::temporal::{Interval, IntervalSet};

fn round_trip<T: ToJson + FromJson>(v: &T) -> T {
    let json = to_json_string(v).expect("serializes");
    from_json_str(&json).expect("deserializes")
}

#[test]
fn queries_round_trip() {
    let sources = [
        "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 3 INSIDE(o, P)",
        "RETRIEVE o, n WHERE DIST(o, n) <= 5 Until (INSIDE(o, P) AND INSIDE(n, P))",
        "RETRIEVE o WHERE [x <- o.VX] Eventually within 10 (o.VX >= 2 * x)",
        "RETRIEVE o WHERE NOT (INSIDE(o, P) OR OUTSIDE(o, Q))",
        "RETRIEVE o, n WHERE Eventually WITHIN_SPHERE(2.5, o, n, POINT(-1, 4.5))",
    ];
    for src in sources {
        let q = Query::parse(src).unwrap();
        assert_eq!(round_trip(&q), q, "{src}");
    }
}

#[test]
fn formulas_round_trip() {
    let f = Query::parse_formula("time <= 30 AND o.X > -2.5").unwrap();
    let back: Formula = round_trip(&f);
    assert_eq!(back, f);
}

#[test]
fn values_round_trip_including_floats() {
    for v in [
        Value::Null,
        Value::Bool(true),
        Value::Int(-42),
        Value::from(2.5),
        Value::from(-0.0),
        Value::from("Rest Inn"),
        Value::Time(17),
        Value::Id(9),
    ] {
        assert_eq!(round_trip(&v), v);
    }
}

#[test]
fn answers_round_trip() {
    let a = Answer::new(
        vec!["o".into()],
        vec![AnswerTuple {
            values: vec![Value::Id(2)],
            intervals: IntervalSet::from_intervals([
                Interval::new(10, 15),
                Interval::new(20, 25),
            ]),
        }],
    );
    let b: Answer = round_trip(&a);
    assert_eq!(b, a);
    assert_eq!(b.at_tick(12).len(), 1);
}

#[test]
fn geometry_round_trips() {
    let poly = Polygon::regular(Point::new(1.0, -2.0), 5.0, 7);
    assert_eq!(round_trip(&poly), poly);
    let mut traj = Trajectory::starting_at(Point::origin(), Velocity::new(1.0, 0.5));
    traj.update_velocity(10, Velocity::zero());
    assert_eq!(round_trip(&traj), traj);
    let mp = MovingPoint::new(Point::new(3.0, 4.0), 7, Velocity::new(-1.0, 0.0));
    assert_eq!(round_trip(&mp), mp);
}

#[test]
fn whole_database_round_trips() {
    use moving_objects::core::{AttrFunction, Database};
    use moving_objects::ftl::Query;

    let mut db = Database::new(1_000);
    let car = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
    db.set_static(car, "PRICE", Value::from(80.0)).unwrap();
    db.set_dynamic_scalar(car, "FUEL", Some(100.0), Some(AttrFunction::Linear(-0.5)))
        .unwrap();
    db.add_region("P", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));
    let cq = db
        .register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    db.advance_clock(30);
    db.update_motion(car, Velocity::new(1.0, 0.1)).unwrap();

    let mut back: Database = round_trip(&db);
    // State survives: clock, objects, histories, regions, the materialized
    // continuous answer, and future evaluation gives identical results.
    assert_eq!(back.now(), db.now());
    assert_eq!(back.object_ids(), db.object_ids());
    assert_eq!(
        back.continuous_answer(cq).unwrap(),
        db.continuous_answer(cq).unwrap()
    );
    let q = Query::parse("RETRIEVE o WHERE Eventually (o.FUEL <= 50)").unwrap();
    assert_eq!(
        back.instantaneous(&q).unwrap(),
        db.instantaneous(&q).unwrap()
    );
    // The skipped spatial index deserializes as disabled and can be
    // re-enabled.
    assert!(!back.has_spatial_index());
    back.enable_spatial_index(moving_objects::spatial::Rect::new(
        -1e4, -1e4, 1e4, 1e4,
    ));
    assert!(back.has_spatial_index());
}

#[test]
fn interval_sets_round_trip_normalized() {
    let s = IntervalSet::from_intervals([
        Interval::new(5, 9),
        Interval::new(0, 2),
        Interval::new(3, 4),
    ]);
    let back: IntervalSet = round_trip(&s);
    assert_eq!(back, s);
    assert!(back.is_normalized());

    // Decoding an un-normalized (overlapping, out-of-order) interval list
    // re-normalizes rather than trusting the wire.
    let raw = r#"[{"begin":7,"end":12},{"begin":0,"end":3},{"begin":2,"end":5}]"#;
    let decoded: IntervalSet = from_json_str(raw).expect("decodes");
    assert!(decoded.is_normalized());
    assert_eq!(
        decoded,
        IntervalSet::from_intervals([Interval::new(0, 5), Interval::new(7, 12)])
    );
}

#[test]
fn moving_point_round_trips_via_named_fields() {
    let mp = MovingPoint::new(Point::new(-8.0, 2.5), 11, Velocity::new(0.25, -1.5));
    let json = to_json_string(&mp).expect("serializes");
    // The wire format is a stable named-field object, not a tuple.
    for key in ["\"anchor\"", "\"since\"", "\"velocity\""] {
        assert!(json.contains(key), "{json} missing {key}");
    }
    assert_eq!(round_trip(&mp), mp);
}

#[test]
fn invalid_payloads_are_rejected_not_panicking() {
    // Interval with begin > end.
    assert!(from_json_str::<Interval>(r#"{"begin":9,"end":3}"#).is_err());
    // Polygon with fewer than three vertices.
    assert!(from_json_str::<Polygon>(r#"[{"x":0.0,"y":0.0},{"x":1.0,"y":0.0}]"#).is_err());
    // Trajectory with non-increasing leg anchors.
    let legs = r#"[
        {"anchor":{"x":0.0,"y":0.0},"since":5,"velocity":{"dx":1.0,"dy":0.0}},
        {"anchor":{"x":1.0,"y":0.0},"since":5,"velocity":{"dx":0.0,"dy":0.0}}
    ]"#;
    assert!(from_json_str::<Trajectory>(legs).is_err());
    // Unknown enum variant tag.
    assert!(from_json_str::<Value>(r#"{"Complex":[1,2]}"#).is_err());
}
