//! Snapshot round-trip under the E3 workload: serializing a database
//! mid-flight and restoring it must preserve every query-visible
//! behaviour — instantaneous answers, continuous displays, and persistent
//! history — both at the snapshot tick and as both copies advance further.
//!
//! This is the invariant behind the server's `Snapshot` request (session
//! recovery): a client that restores a snapshot and replays subsequent
//! mutations sees exactly what the server sees.

use most_testkit::ser::{from_json_str, to_json_string};
use moving_objects::core::{Database, SharedDatabase, UpdateOp};
use moving_objects::ftl::Query;
use moving_objects::spatial::{Polygon, Velocity};
use moving_objects::workload::cars::{apply_due_updates, CarScenario};

/// The E3 scenario (crates/bench e3_continuous): 30 cars on a 400-unit
/// area, speed band (0.5, 2.0), seed 42.
fn e3_scenario(window: u64) -> CarScenario {
    CarScenario {
        count: 30,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: 100.0,
        horizon: window,
        seed: 42,
    }
}

fn queries() -> Vec<Query> {
    [
        "RETRIEVE o WHERE INSIDE(o, P)",
        "RETRIEVE o WHERE o.PRICE <= 120",
        "RETRIEVE o WHERE Eventually within 60 INSIDE(o, P)",
        "RETRIEVE o, n WHERE o <> n AND DIST(o, n) <= 25",
    ]
    .into_iter()
    .map(|s| Query::parse(s).expect("query parses"))
    .collect()
}

fn snapshot_roundtrip(db: &Database) -> Database {
    let json = to_json_string(db).expect("database serializes");
    let restored: Database = from_json_str(&json).expect("database restores");
    // Determinism of the wire form itself: re-serializing the restored
    // copy yields identical bytes.
    let again = to_json_string(&restored).expect("restored database serializes");
    assert_eq!(json, again, "snapshot serialization is not canonical");
    restored
}

#[test]
fn snapshot_preserves_all_answers_mid_workload() {
    let window = 120u64;
    let scenario = e3_scenario(window);
    let plans = scenario.generate();
    let mut db = Database::new(window * 4);
    db.add_region("P", Polygon::rectangle(-100.0, -100.0, 100.0, 100.0));
    let ids = scenario.populate(&mut db, &plans);
    let cq = db
        .register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();

    // Drive half the window, then snapshot mid-flight.
    for t in 1..=window / 2 {
        db.advance_clock(1);
        apply_due_updates(&mut db, &ids, &plans, t - 1, t);
    }
    let restored = snapshot_roundtrip(&db);
    assert_eq!(restored.now(), db.now());
    assert_eq!(restored.object_ids(), db.object_ids());

    for q in &queries() {
        assert_eq!(
            restored.instantaneous_readonly(q).unwrap(),
            db.instantaneous_readonly(q).unwrap(),
            "instantaneous answers diverge after restore: {q:?}"
        );
    }
    assert_eq!(
        restored.continuous_display(cq, db.now()).unwrap(),
        db.continuous_display(cq, db.now()).unwrap()
    );
    // The recorded history survives too: a persistent query anchored at
    // tick 0 replays identically.
    let q = Query::parse("RETRIEVE o WHERE Eventually within 60 INSIDE(o, P)").unwrap();
    assert_eq!(
        restored.persistent_answer(&q, 0).unwrap(),
        db.persistent_answer(&q, 0).unwrap()
    );
}

#[test]
fn snapshot_then_identical_future_evolution() {
    let window = 120u64;
    let scenario = e3_scenario(window);
    let plans = scenario.generate();
    let mut db = Database::new(window * 4);
    db.add_region("P", Polygon::rectangle(-100.0, -100.0, 100.0, 100.0));
    let ids = scenario.populate(&mut db, &plans);
    let cq = db
        .register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();
    for t in 1..=window / 2 {
        db.advance_clock(1);
        apply_due_updates(&mut db, &ids, &plans, t - 1, t);
    }

    // Restore, then drive BOTH copies through the rest of the window with
    // the same updates: every tick's display and answers must agree.
    let mut restored = snapshot_roundtrip(&db);
    let qs = queries();
    for t in window / 2 + 1..=window {
        db.advance_clock(1);
        restored.advance_clock(1);
        apply_due_updates(&mut db, &ids, &plans, t - 1, t);
        apply_due_updates(&mut restored, &ids, &plans, t - 1, t);
        assert_eq!(
            restored.continuous_display(cq, t).unwrap(),
            db.continuous_display(cq, t).unwrap(),
            "continuous display diverges at tick {t}"
        );
    }
    for q in &qs {
        assert_eq!(
            restored.instantaneous_readonly(q).unwrap(),
            db.instantaneous_readonly(q).unwrap(),
            "instantaneous answers diverge at end of window: {q:?}"
        );
    }
}

/// Mid-epoch snapshot: with batches **buffered into epoch E+1 but not
/// yet published**, the serialized form (what the server's `Snapshot`
/// request ships) must round-trip to the last *published* epoch E —
/// across all three query types — with no trace of the buffered half.
#[test]
fn mid_epoch_snapshot_restores_last_published_epoch() {
    let window = 120u64;
    let scenario = e3_scenario(window);
    let plans = scenario.generate();
    let mut db = Database::new(window * 4);
    db.add_region("P", Polygon::rectangle(-100.0, -100.0, 100.0, 100.0));
    let ids = scenario.populate(&mut db, &plans);
    let cq = db
        .register_continuous(Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap())
        .unwrap();

    let shared = SharedDatabase::new(db);
    // Publish a few epochs the ordinary way.
    for t in 1..=10u64 {
        shared.advance_clock(1);
        shared.write(|d| apply_due_updates(d, &ids, &plans, t - 1, t));
    }
    let published = shared.pin();

    // Now accumulate epoch E+1 *without* publishing: a partial batch and
    // a buffered clock advance.
    let epochs = shared.epochs();
    epochs
        .buffer_updates(&[UpdateOp::Motion { id: ids[0], velocity: Velocity::new(9.0, 9.0) }])
        .unwrap();
    epochs.write(|d| d.advance_clock(3));
    assert_eq!(epochs.stats().pending_batches, 1);

    // The server-visible snapshot is taken through the read path — it
    // must see only the published epoch.
    let json = shared.read(|d| to_json_string(d).expect("snapshot serializes"));
    let restored: Database = from_json_str(&json).expect("snapshot restores");

    assert_eq!(restored.now(), published.db().now(), "buffered clock advance leaked");
    for q in &queries() {
        assert_eq!(
            restored.instantaneous_readonly(q).unwrap(),
            published.db().instantaneous_readonly(q).unwrap(),
            "instantaneous answers diverge from published epoch: {q:?}"
        );
    }
    assert_eq!(
        restored.continuous_display(cq, restored.now()).unwrap(),
        published.db().continuous_display(cq, published.db().now()).unwrap(),
        "continuous display diverges from published epoch"
    );
    let pq = Query::parse("RETRIEVE o WHERE Eventually within 60 INSIDE(o, P)").unwrap();
    assert_eq!(
        restored.persistent_answer(&pq, 0).unwrap(),
        published.db().persistent_answer(&pq, 0).unwrap(),
        "persistent history diverges from published epoch"
    );
    // The buffered motion is absent from the restored copy...
    let now = restored.now();
    assert_ne!(
        restored.object(ids[0]).unwrap().velocity_at(now),
        Some(Velocity::new(9.0, 9.0)),
        "buffered (unpublished) batch leaked into the snapshot"
    );

    // ...and publishing afterwards is equivalent to restoring the
    // snapshot and replaying the buffered mutations on top.
    let e = epochs.advance_epoch();
    let after = shared.pin();
    assert_eq!(after.epoch(), e);
    let mut replayed = restored;
    replayed
        .apply_updates(&[UpdateOp::Motion { id: ids[0], velocity: Velocity::new(9.0, 9.0) }])
        .unwrap();
    replayed.advance_clock(3);
    assert_eq!(replayed.now(), after.db().now());
    for q in &queries() {
        assert_eq!(
            replayed.instantaneous_readonly(q).unwrap(),
            after.db().instantaneous_readonly(q).unwrap(),
            "replayed snapshot diverges from published E+1: {q:?}"
        );
    }
}
