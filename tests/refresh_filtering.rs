//! Soundness of the refresh engine's dependency filtering (ISSUE 2
//! acceptance): a randomized lockstep property drives two databases — one
//! with dependency-set filtering (and parallel refresh workers), one
//! re-evaluating every registered query on every update, the paper's
//! literal reading — through the same event sequence and asserts their
//! materialized `Answer(CQ)`s are identical after **every** event.  Any
//! update whose refresh the engine skips therefore never changes a query's
//! reference-semantics answer.
//!
//! Answers are compared **clamped to the coverage window guaranteed at
//! registration** (`[0, expiration]`): every re-evaluation at clock `t`
//! incidentally covers up to `t + expiration`, so a refresh the filter
//! skips also skips that horizon *extension* — by design (the skipped
//! query's answer is exactly as extended as if the update had never
//! happened).  Inside the guaranteed window, where the paper's semantics
//! are defined, filtering must be observationally invisible.

use most_testkit::check::{ints, one_of, tuple2, tuple3, vecs, Check, Gen};
use moving_objects::core::{AttrFunction, Database, UpdateOp};
use moving_objects::dbms::value::Value;
use moving_objects::ftl::answer::Answer;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Polygon, Velocity};
use moving_objects::temporal::{Horizon, IntervalSet};

/// The expiration horizon shared by both lockstep databases.
const EXPIRATION: u64 = 400;

/// An answer restricted to the registration-time coverage window (see the
/// module docs): the rows on which the two regimes must agree exactly.
fn covered(ans: &Answer) -> Vec<(Vec<Value>, IntervalSet)> {
    let window = Horizon::new(EXPIRATION);
    ans.tuples
        .iter()
        .filter_map(|t| {
            let s = t.intervals.clamp(window);
            (!s.is_empty()).then(|| (t.values.clone(), s))
        })
        .collect()
}

#[derive(Debug, Clone)]
enum Ev {
    Advance(u64),
    Motion { obj: usize, vx: i32, vy: i32 },
    Price { obj: usize, price: u32 },
    Fuel { obj: usize, level: u32, rate: i32 },
    Insert,
    /// A batch mixing one motion and one attribute write, applied through
    /// the batched entry point ([`Database::apply_updates`]).
    Batch { obj: usize, vx: i32, price: u32 },
}

fn arb_events() -> Gen<Vec<Ev>> {
    vecs(
        one_of(vec![
            ints(1..25u64).map(Ev::Advance),
            tuple3(ints(0..4usize), ints(-4i32..4), ints(-4i32..4))
                .map(|(obj, vx, vy)| Ev::Motion { obj, vx, vy }),
            tuple2(ints(0..4usize), ints(40..200u32))
                .map(|(obj, price)| Ev::Price { obj, price }),
            tuple3(ints(0..4usize), ints(20..150u32), ints(-4i32..0))
                .map(|(obj, level, rate)| Ev::Fuel { obj, level, rate }),
            ints(0..1usize).map(|_| Ev::Insert),
            tuple3(ints(0..4usize), ints(-4i32..4), ints(40..200u32))
                .map(|(obj, vx, price)| Ev::Batch { obj, vx, price }),
        ]),
        1..18,
    )
}

/// Queries spanning the dependency-set lattice: position-only, one
/// attribute, attribute + position, motion-sub-attribute, and constant
/// (domain-only).
const QUERIES: &[&str] = &[
    "RETRIEVE o WHERE Eventually INSIDE(o, P)",
    "RETRIEVE o WHERE o.PRICE <= 120",
    "RETRIEVE o WHERE o.PRICE <= 150 AND Eventually (o.FUEL <= 60)",
    "RETRIEVE o WHERE o.SPEED >= 1.0 OR OUTSIDE(o, P)",
    "RETRIEVE o WHERE true",
];

fn build_db(filtering: bool, workers: usize) -> (Database, Vec<u64>) {
    let mut db = Database::new(EXPIRATION);
    db.set_refresh_filtering(filtering);
    db.set_refresh_workers(workers);
    let starts = [
        (Point::new(-60.0, 0.0), Velocity::new(1.0, 0.0)),
        (Point::new(40.0, 10.0), Velocity::new(-1.0, 0.0)),
        (Point::new(0.0, -30.0), Velocity::new(0.0, 1.0)),
        (Point::new(25.0, 25.0), Velocity::new(-0.5, -0.5)),
    ];
    let ids: Vec<u64> = starts
        .iter()
        .map(|&(p, v)| db.insert_moving_object("cars", p, v))
        .collect();
    db.add_region("P", Polygon::rectangle(-20.0, -20.0, 20.0, 20.0));
    for (i, &id) in ids.iter().enumerate() {
        db.set_static(id, "PRICE", (80.0 + 20.0 * i as f64).into()).unwrap();
        db.set_dynamic_scalar(id, "FUEL", Some(100.0), Some(AttrFunction::Linear(-1.0)))
            .unwrap();
    }
    (db, ids)
}

fn apply(db: &mut Database, ids: &mut Vec<u64>, ev: &Ev) {
    match *ev {
        Ev::Advance(dt) => db.advance_clock(dt),
        Ev::Motion { obj, vx, vy } => {
            let id = ids[obj % ids.len()];
            db.update_motion(id, Velocity::new(vx as f64 * 0.5, vy as f64 * 0.5)).unwrap();
        }
        Ev::Price { obj, price } => {
            let id = ids[obj % ids.len()];
            db.set_static(id, "PRICE", (price as f64).into()).unwrap();
        }
        Ev::Fuel { obj, level, rate } => {
            let id = ids[obj % ids.len()];
            db.set_dynamic_scalar(
                id,
                "FUEL",
                Some(level as f64),
                Some(AttrFunction::Linear(rate as f64 * 0.5)),
            )
            .unwrap();
        }
        Ev::Insert => {
            ids.push(db.insert_moving_object(
                "cars",
                Point::new(-40.0, -40.0),
                Velocity::new(0.5, 0.5),
            ));
        }
        Ev::Batch { obj, vx, price } => {
            let id = ids[obj % ids.len()];
            db.apply_updates(&[
                UpdateOp::Motion { id, velocity: Velocity::new(vx as f64 * 0.5, 0.25) },
                UpdateOp::Static { id, attr: "PRICE".into(), value: Value::from(price as f64) },
            ])
            .unwrap();
        }
    }
}

#[test]
fn skipped_refreshes_never_change_an_answer() {
    Check::new("refresh::skipped_refreshes_never_change_an_answer")
        .cases(24)
        .run(&arb_events(), |events| {
            let (mut filtered, mut ids_a) = build_db(true, 3);
            let (mut unfiltered, mut ids_b) = build_db(false, 1);
            let cqs: Vec<u64> = QUERIES
                .iter()
                .map(|src| {
                    let q = Query::parse(src).expect("query parses");
                    let a = filtered.register_continuous(q.clone()).expect("register");
                    let b = unfiltered.register_continuous(q).expect("register");
                    assert_eq!(a, b, "registries assign ids in lockstep");
                    a
                })
                .collect();
            for (step, ev) in events.iter().enumerate() {
                apply(&mut filtered, &mut ids_a, ev);
                apply(&mut unfiltered, &mut ids_b, ev);
                for (&cq, src) in cqs.iter().zip(QUERIES) {
                    let a = &filtered.continuous_registry().get(cq).expect("entry").answer;
                    let b = &unfiltered.continuous_registry().get(cq).expect("entry").answer;
                    assert_eq!(
                        covered(a),
                        covered(b),
                        "after step {step} ({ev:?}), query {src:?}: filtered \
                         answer diverged from re-evaluate-everything answer \
                         inside the guaranteed coverage window"
                    );
                }
            }
            // Filtering must never *create* refresh work.
            let performed_f =
                filtered.continuous_evaluations() + filtered.noop_refreshes();
            let performed_u =
                unfiltered.continuous_evaluations() + unfiltered.noop_refreshes();
            assert!(
                performed_f <= performed_u,
                "filtered path evaluated more ({performed_f}) than full ({performed_u})"
            );
            assert_eq!(unfiltered.skipped_refreshes(), 0);
        });
}

#[test]
fn irrelevant_updates_are_skipped_and_counted() {
    let (mut db, ids) = build_db(true, 1);
    let spatial = db
        .register_continuous(Query::parse("RETRIEVE o WHERE Eventually INSIDE(o, P)").unwrap())
        .unwrap();
    let pricey = db
        .register_continuous(Query::parse("RETRIEVE o WHERE o.PRICE <= 120").unwrap())
        .unwrap();
    let before_spatial = db.continuous_registry().get(spatial).unwrap().answer.clone();

    // A PRICE write cannot affect the spatial query: skipped, not refreshed.
    db.set_static(ids[0], "PRICE", Value::from(999.0)).unwrap();
    assert_eq!(db.skipped_refreshes(), 1);
    let spatial_entry = db.continuous_registry().get(spatial).unwrap();
    assert_eq!(spatial_entry.skipped, 1);
    assert_eq!(spatial_entry.answer, before_spatial);

    // A motion update cannot affect the PRICE query: skipped the other way.
    db.update_motion(ids[0], Velocity::new(2.0, 0.0)).unwrap();
    assert_eq!(db.skipped_refreshes(), 2);
    assert_eq!(db.continuous_registry().get(pricey).unwrap().skipped, 1);

    // An attribute the PRICE query does not mention is skipped by both.
    db.set_dynamic_scalar(ids[1], "FUEL", Some(10.0), None).unwrap();
    assert_eq!(db.skipped_refreshes(), 4);

    // A domain change refreshes everything.
    let skipped_before = db.skipped_refreshes();
    db.insert_moving_object("cars", Point::origin(), Velocity::zero());
    assert_eq!(db.skipped_refreshes(), skipped_before);
}
