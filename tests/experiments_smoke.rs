//! Integration: every experiment of the harness runs at quick scale and
//! reports the claimed qualitative shapes (the detailed per-experiment
//! assertions live in `most-bench`'s unit tests; this is the end-to-end
//! smoke over the full suite, as the `experiments` binary would run it).

use most_bench::experiments::{run_all, run_one};
use most_bench::Scale;

#[test]
fn full_suite_runs_and_every_table_has_rows() {
    let tables = run_all(Scale::Quick);
    assert_eq!(tables.len(), 21);
    for t in &tables {
        assert!(!t.rows.is_empty(), "{} has no rows", t.id);
        assert!(!t.headers.is_empty(), "{} has no headers", t.id);
        for row in &t.rows {
            assert_eq!(row.len(), t.headers.len(), "{} ragged row", t.id);
        }
        // Every table renders.
        let rendered = t.to_string();
        assert!(rendered.contains(&t.id));
    }
    // All experiment ids present in order.
    let ids: Vec<&str> = tables.iter().map(|t| t.id.as_str()).collect();
    assert_eq!(
        ids,
        vec![
            "F1", "E1", "E2", "E3", "E4", "E4b", "E5", "E6", "E6b", "E7", "E8", "E9", "E10",
            "E11", "E12", "E13", "E14", "E15", "E16", "E17", "MICRO"
        ]
    );
}

#[test]
fn quick_report_is_deterministic_after_stabilize() {
    // The binary stabilizes wall-clock columns under --quick; the rendered
    // output of two runs must then be identical.
    let render = || {
        let mut out = String::new();
        for mut t in run_all(Scale::Quick) {
            t.stabilize();
            out.push_str(&t.to_string());
        }
        out
    };
    assert_eq!(render(), render());
}

#[test]
fn run_one_dispatches_ids() {
    assert!(run_one("fig1", Scale::Quick).is_some());
    assert!(run_one("E5", Scale::Quick).is_some());
    assert!(run_one("nope", Scale::Quick).is_none());
}
