//! Property test: the materialized continuous-query answer, maintained
//! across arbitrary interleavings of clock advances and motion updates,
//! always serves the same display a fresh evaluation would — and never
//! rewrites history it has already served.

use most_testkit::check::{ints, one_of, tuple2, tuple3, tuple4, vecs, Check, Gen};
use moving_objects::core::Database;
use moving_objects::dbms::value::Value;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Polygon, Velocity};

#[derive(Debug, Clone)]
enum Step {
    Advance(u64),
    Update { obj: usize, vx: i32, vy: i32 },
}

fn arb_steps() -> Gen<Vec<Step>> {
    vecs(
        one_of(vec![
            ints(1..40u64).map(Step::Advance),
            tuple3(ints(0..4usize), ints(-6i32..6), ints(-6i32..6))
                .map(|(obj, vx, vy)| Step::Update { obj, vx, vy }),
        ]),
        1..25,
    )
}

fn build_db() -> (Database, Vec<u64>) {
    let mut db = Database::new(2_000);
    let starts = [
        (Point::new(-150.0, 0.0), Velocity::new(1.0, 0.0)),
        (Point::new(0.0, -120.0), Velocity::new(0.0, 1.0)),
        (Point::new(50.0, 50.0), Velocity::new(-0.5, -0.5)),
        (Point::new(400.0, 0.0), Velocity::new(-2.0, 0.0)),
    ];
    let ids = starts
        .iter()
        .map(|&(p, v)| db.insert_moving_object("cars", p, v))
        .collect();
    db.add_region("P", Polygon::rectangle(-60.0, -60.0, 60.0, 60.0));
    (db, ids)
}

#[test]
fn maintained_answer_matches_fresh_evaluation() {
    Check::new("continuous::maintained_answer_matches_fresh_evaluation")
        .cases(32)
        .run(&arb_steps(), |steps| {
            let (mut db, ids) = build_db();
            let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
            let cq = db.register_continuous(q.clone()).unwrap();
            // Record what was displayed at each tick as it is served.
            let mut served: Vec<(u64, Vec<Vec<Value>>)> = Vec::new();
            served.push((0, db.continuous_display(cq, 0).unwrap()));

            for step in steps {
                match *step {
                    Step::Advance(n) => {
                        for _ in 0..n {
                            db.advance_clock(1);
                            let t = db.now();
                            served.push((t, db.continuous_display(cq, t).unwrap()));
                        }
                    }
                    Step::Update { obj, vx, vy } => {
                        db.update_motion(
                            ids[obj],
                            Velocity::new(vx as f64 * 0.5, vy as f64 * 0.5),
                        )
                        .unwrap();
                    }
                }
            }

            // 1. Future equivalence: from now on, the maintained answer equals a
            //    freshly registered one at every probed tick.
            let now = db.now();
            let fresh = db.instantaneous(&q).unwrap();
            let maintained = db.continuous_answer(cq).unwrap().clone();
            for probe in [now, now + 1, now + 7, now + 50, now + 300] {
                let a: Vec<_> =
                    maintained.at_tick(probe).iter().map(|t| t.values.clone()).collect();
                let b: Vec<_> = fresh.at_tick(probe).iter().map(|t| t.values.clone()).collect();
                assert_eq!(a, b, "tick {probe}");
            }

            // 2. History stability: ticks already served still display the same
            //    instantiations from the maintained answer.
            for (t, shown) in &served {
                let replay: Vec<_> = maintained
                    .at_tick(*t)
                    .iter()
                    .map(|tup| tup.values.clone())
                    .collect();
                assert_eq!(&replay, shown, "already-served tick {t}");
            }
        });
}

/// The incremental per-object refresh must be observationally identical
/// to the paper-literal full re-evaluation, for single-object and pair
/// queries alike, across arbitrary update interleavings (including
/// object insertion mid-stream).
#[test]
fn incremental_refresh_equals_full_refresh() {
    Check::new("continuous::incremental_refresh_equals_full_refresh")
        .cases(32)
        .run(&tuple2(arb_steps(), ints(0..20usize)), |(steps, insert_at)| {
            use moving_objects::core::database::RefreshMode;
            let queries = [
                "RETRIEVE o WHERE INSIDE(o, P)",
                "RETRIEVE o, n WHERE o <> n AND DIST(o, n) <= 40",
            ];
            for q_src in queries {
                let q = Query::parse(q_src).unwrap();
                let run = |mode: RefreshMode| {
                    let (mut db, ids) = build_db();
                    db.set_refresh_mode(mode);
                    let cq = db.register_continuous(q.clone()).unwrap();
                    for (i, step) in steps.iter().enumerate() {
                        if i == *insert_at {
                            // Insertion is an explicit update too.
                            db.insert_moving_object(
                                "cars",
                                Point::new(-30.0, -30.0),
                                Velocity::new(0.4, 0.4),
                            );
                        }
                        match *step {
                            Step::Advance(n) => db.advance_clock(n),
                            Step::Update { obj, vx, vy } => {
                                db.update_motion(
                                    ids[obj],
                                    Velocity::new(vx as f64 * 0.5, vy as f64 * 0.5),
                                )
                                .unwrap();
                            }
                        }
                    }
                    db.continuous_answer(cq).unwrap().clone()
                };
                let full = run(RefreshMode::Full);
                let incremental = run(RefreshMode::Incremental);
                assert_eq!(full, incremental, "query {q_src}");
            }
        });
}

// ---------------------------------------------------------------------
// Merge idempotence (ISSUE 2 satellite): re-applying the same refresh
// result at the same boundary must be a no-op — the property behind the
// registry's "byte-identical answer ⇒ noop_refreshes" accounting.
// ---------------------------------------------------------------------

mod merge_props {
    use super::*;
    use moving_objects::core::continuous::{merge_answers, merge_incremental};
    use moving_objects::ftl::answer::{Answer, AnswerTuple};
    use moving_objects::temporal::{Interval, IntervalSet};
    use std::collections::BTreeMap;

    /// Random single-variable answers over ids 1..=5 (duplicate ids fold
    /// into one row via interval-set union, as real answers are keyed).
    fn arb_answer() -> Gen<Answer> {
        vecs(
            tuple2(ints(1..6u64), vecs(tuple2(ints(0..60u64), ints(0..15u64)), 0..4)),
            0..5,
        )
        .map(|rows| {
            let mut by_id: BTreeMap<u64, IntervalSet> = BTreeMap::new();
            for (id, spans) in rows {
                let set = IntervalSet::from_intervals(
                    spans.into_iter().map(|(s, len)| Interval::new(s, s + len)),
                );
                let slot = by_id.entry(id).or_insert_with(IntervalSet::empty);
                *slot = slot.union(&set);
            }
            Answer::new(
                vec!["o".to_owned()],
                by_id
                    .into_iter()
                    .map(|(id, intervals)| AnswerTuple { values: vec![Value::Id(id)], intervals })
                    .collect(),
            )
        })
    }

    #[test]
    fn merge_answers_is_idempotent_at_the_same_boundary() {
        Check::new("continuous::merge_answers_is_idempotent_at_the_same_boundary")
            .cases(64)
            .run(
                &tuple3(arb_answer(), arb_answer(), ints(0..70u64)),
                |(old, new, boundary)| {
                    let merged = merge_answers(old, new, *boundary);
                    let again = merge_answers(&merged, new, *boundary);
                    assert_eq!(again, merged, "boundary {boundary}");
                },
            );
    }

    #[test]
    fn merge_incremental_is_idempotent_at_the_same_boundary() {
        // A per-object refresh result only ever binds the changed object
        // (merge_incremental's contract), so `fresh` is generated as the
        // changed id's row alone — possibly empty (object left the answer).
        Check::new("continuous::merge_incremental_is_idempotent_at_the_same_boundary")
            .cases(64)
            .run(
                &tuple4(
                    arb_answer(),
                    ints(1..6u64),
                    vecs(tuple2(ints(0..60u64), ints(0..15u64)), 0..4),
                    ints(0..70u64),
                ),
                |(old, changed_id, fresh_spans, boundary)| {
                    let changed = Value::Id(*changed_id);
                    let fresh = Answer::new(
                        vec!["o".to_owned()],
                        vec![AnswerTuple {
                            values: vec![changed.clone()],
                            intervals: IntervalSet::from_intervals(
                                fresh_spans.iter().map(|&(s, len)| Interval::new(s, s + len)),
                            ),
                        }],
                    );
                    let merged = merge_incremental(old, *boundary, &changed, &fresh);
                    let again = merge_incremental(&merged, *boundary, &changed, &fresh);
                    assert_eq!(again, merged, "boundary {boundary}");
                },
            );
    }
}
