//! Air-traffic control: the paper's Section 1 motivating query —
//! "retrieve all the airplanes that will come within 30 miles of the
//! airport in the next 10 minutes" — plus a temporal trigger on runway
//! proximity.
//!
//! ```sh
//! cargo run --example air_traffic
//! ```

use moving_objects::core::Database;
use moving_objects::ftl::Query;
use moving_objects::workload::aircraft;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10 minutes at one tick per second.
    let ten_minutes = 600;
    let mut db = Database::new(3_600);

    // 150 aircraft between 200 and 500 miles out; roughly 40% inbound.
    // Distances in miles, speeds in miles/second-tick (fast planes!).
    let fleet = aircraft::around_airport(150, 200.0, 500.0, (0.3, 0.6), 0.4, 2024);
    let ids = aircraft::populate(&mut db, &fleet);
    println!("tracking {} aircraft around the airport at (0, 0)", ids.len());

    // The paper's query Q.
    let q = Query::parse(&format!(
        "RETRIEVE o WHERE Eventually within {ten_minutes} (DIST(o, POINT(0, 0)) <= 30)"
    ))?;
    let answer = db.instantaneous(&q)?;
    println!("\n{} aircraft will come within 30 miles in the next 10 minutes:", answer.len());
    for (values, interval) in answer.rows().iter().take(8) {
        println!("  {:?} inside the 30-mile ring during {interval}", values[0]);
    }
    if answer.len() > 8 {
        println!("  ... and {} more", answer.len() - 8);
    }

    // A trigger: fire as each aircraft first crosses the 30-mile ring.
    let trig = Query::parse("RETRIEVE o WHERE DIST(o, POINT(0, 0)) <= 30")?;
    db.create_trigger("entered_approach_zone", trig)?;
    let mut fired = 0;
    for _ in 0..10 {
        db.advance_clock(60); // one minute
        let events = db.take_trigger_events();
        for e in events.iter().take(3) {
            println!("t={:>4}: {} fired for {:?}", e.at, e.name, e.values[0]);
        }
        fired += events.len();
    }
    println!("\n{fired} approach-zone entries within 10 minutes");

    // Tentativeness (Section 1): an answer can be invalidated by a later
    // motion-vector update — steer the first inbound plane away and ask
    // again.
    if let Some(&plane) = answer.ids().first() {
        let away = moving_objects::spatial::Velocity::new(0.6, 0.0);
        db.update_motion(plane, away)?;
        let fresh = db.instantaneous(&q)?;
        println!(
            "after steering #{plane} away, the answer {} it (answers are tentative)",
            if fresh.ids().contains(&plane) { "still contains" } else { "no longer contains" }
        );
    }
    Ok(())
}
