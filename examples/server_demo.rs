//! The Figure-1 scenario served over the wire: a `most-server` instance
//! fronting the motel database, with two concurrent clients — a *driver*
//! advancing the world, and a *traveller* holding a continuous-query
//! subscription whose answer deltas the server pushes as the car moves.
//!
//! ```sh
//! cargo run --example server_demo
//! ```
//!
//! The server binds an ephemeral port on localhost; nothing external is
//! contacted.

use moving_objects::core::{Database, SharedDatabase};
use moving_objects::server::client::Client;
use moving_objects::server::server::{Server, ServerConfig};
use moving_objects::spatial::{Point, Polygon, Velocity};
use moving_objects::workload::motels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The world: 40 motels along the highway, one car driving east, and
    // the moving region C rigidly attached to the car (Section 1).
    let mut db = Database::new(2_000);
    let all = motels::highway_motels(40, 1_000.0, 4.0, 7);
    motels::populate(&mut db, &all);
    let car = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
    db.add_region("C", Polygon::rectangle(-5.0, -5.0, 5.0, 5.0));

    // The server runs on background threads; `bind` returns immediately
    // and the ephemeral port is read back from the handle.
    let server = Server::bind("127.0.0.1:0", SharedDatabase::new(db), ServerConfig::default())?;
    let addr = server.local_addr();
    println!("most-server listening on {addr}");

    // Client 1 — the traveller: registers the Figure-1 motel query as a
    // continuous query and subscribes to its incremental answer.
    let mut traveller = Client::connect(addr)?;
    let cq = traveller
        .register("RETRIEVE m, o WHERE m.PRICE <= 120 AND m <> o AND INSIDE(m, C, o)")?;
    let (tick, baseline) = traveller.subscribe(cq)?;
    println!(
        "traveller subscribed to cq #{cq} at t={tick}: {} (motel, vehicle) baseline rows",
        baseline.len()
    );

    // Client 2 — the driver: advances the clock from a second concurrent
    // session.  No position updates are sent; the display changes with
    // time alone (the MOST hallmark), and the server pushes the deltas.
    let mut driver = Client::connect(addr)?;
    for _ in 0..10 {
        let now = driver.advance(100)?;
        // Any round-trip fences previously-pushed frames (FIFO outbox).
        traveller.ping()?;
        for d in traveller.take_deltas() {
            let fmt = |rows: &[Vec<moving_objects::dbms::value::Value>]| -> Vec<String> {
                rows.iter()
                    .filter(|r| r[1] == moving_objects::dbms::value::Value::Id(car))
                    .map(|r| r[0].to_string())
                    .collect()
            };
            println!(
                "t={now:>4}  delta for cq #{}: entered {:?}, left {:?}",
                d.cq,
                fmt(&d.added),
                fmt(&d.removed)
            );
        }
    }

    // The driver takes an exit ramp: one explicit motion update, pushed to
    // the traveller as a delta like any other mutation.
    driver.update(&[moving_objects::core::UpdateOp::Motion {
        id: car,
        velocity: Velocity::new(0.0, 1.0),
    }])?;
    driver.advance(50)?;
    traveller.ping()?;
    let late = traveller.take_deltas();
    println!("after the exit-ramp update: {} more delta frame(s)", late.len());

    // A satisfactory motel was found — cancel and shut down.
    traveller.unsubscribe(cq)?;
    driver.cancel(cq)?;
    let stats = server.stats();
    println!(
        "served {} requests, pushed {} deltas, dropped {} — shutting down",
        stats.requests, stats.deltas, stats.dropped
    );
    server.shutdown();
    Ok(())
}
