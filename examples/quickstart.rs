//! Quickstart: dynamic attributes and future queries in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use moving_objects::core::Database;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Polygon, Velocity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MOST database whose queries expire after 1000 ticks.
    let mut db = Database::new(1_000);

    // Moving objects carry a *motion vector*, not a position log: the car's
    // position is a function of time and needs no per-tick updates.
    let car = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(0.5, 0.0));
    db.set_static(car, "PRICE", 80.0.into())?;
    let truck =
        db.insert_moving_object("cars", Point::new(200.0, 5.0), Velocity::new(-0.5, 0.0));
    db.set_static(truck, "PRICE", 150.0.into())?;

    // A named region for INSIDE / OUTSIDE predicates.
    db.add_region("Downtown", Polygon::rectangle(90.0, -10.0, 110.0, 10.0));

    // A future query: who reaches Downtown within 250 ticks?
    let q = Query::parse(
        "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 250 INSIDE(o, Downtown)",
    )?;
    let answer = db.instantaneous(&q)?;
    println!("query: {q}");
    println!("answer (with satisfaction intervals in global ticks):\n{answer}");
    assert_eq!(answer.ids(), vec![car]);

    // The answer to the *same* query depends on when it is asked — no
    // updates required, just the clock:
    db.advance_clock(400); // the car is now past Downtown
    let later = db.instantaneous(&q)?;
    println!("at t=400 the same query returns {} rows", later.len());
    assert!(later.is_empty());

    // DIST works against fixed points too:
    let q2 = Query::parse("RETRIEVE o WHERE Eventually within 200 (DIST(o, POINT(50, 0)) <= 10)")?;
    let near_marker = db.instantaneous(&q2)?;
    println!("objects passing near POINT(50,0) in the next 200 ticks: {:?}", near_marker.ids());

    Ok(())
}
