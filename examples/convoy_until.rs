//! The Section 3.2 showcase query — "retrieve the pairs of objects o and n
//! such that the distance between o and n stays within 5 miles until they
//! both enter polygon P" — over a convoy workload, plus the bounded
//! operators of Section 3.4.
//!
//! ```sh
//! cargo run --example convoy_until
//! ```

use moving_objects::core::Database;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Polygon, Velocity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(500);

    // A convoy heading for the depot, a straggler that drifts away, and an
    // unrelated car already inside.
    let depot = Polygon::rectangle(190.0, -20.0, 260.0, 20.0);
    db.add_region("P", depot);
    let lead = db.insert_moving_object("trucks", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));
    let wing = db.insert_moving_object("trucks", Point::new(-3.0, 2.0), Velocity::new(1.0, 0.0));
    let drift =
        db.insert_moving_object("trucks", Point::new(-1.0, -2.0), Velocity::new(1.0, 0.12));
    let parked = db.insert_moving_object("cars", Point::new(200.0, 0.0), Velocity::zero());
    println!("lead={lead} wing={wing} drift={drift} parked={parked}");

    // The paper's Until query (conjunctive fragment, processed by the
    // appendix interval algorithm).
    let q = Query::parse(
        "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 5 Until (INSIDE(o, P) AND INSIDE(n, P)))",
    )?;
    let answer = db.instantaneous(&q)?;
    println!("\n{q}");
    println!("pairs holding now (tick 0):");
    for t in answer.at_tick(0) {
        println!("  ({}, {})", t.values[0], t.values[1]);
    }
    // lead & wing stay tight all the way into P; drift separates beyond 5
    // miles before arrival, so pairs with it fail.
    let now: Vec<Vec<_>> = answer.at_tick(0).iter().map(|t| t.values.clone()).collect();
    assert!(now.len() >= 2, "lead/wing in both orders");
    assert!(now.iter().all(|vals| {
        vals.iter()
            .all(|v| v.as_id() != Some(drift))
    }));

    // Bounded operators (Section 3.4): enter P within 250, stay 30 ticks.
    let q2 = Query::parse(
        "RETRIEVE o WHERE Eventually within 250 (INSIDE(o, P) AND Always for 30 INSIDE(o, P))",
    )?;
    let a2 = db.instantaneous(&q2)?;
    println!("\n{q2}\n  -> {:?}", a2.ids());

    // until_within: reach the depot within 220 ticks while staying within 5
    // of the wingman.
    let q3 = Query::parse(
        "RETRIEVE o, n WHERE o <> n AND (DIST(o, n) <= 5 until_within 220 (INSIDE(o, P) AND INSIDE(n, P)))",
    )?;
    let a3 = db.instantaneous(&q3)?;
    println!("\n{q3}\n  -> {} pairs", a3.at_tick(0).len());
    Ok(())
}
