//! The three query types on one scenario (Section 2.3 / Figure 1): the
//! paper's speed-doubling query R, where only the persistent variant ever
//! retrieves the object.
//!
//! ```sh
//! cargo run --example persistent_speedup
//! ```

use moving_objects::core::{Database, PersistentQuery};
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Velocity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(100);
    let o = db.insert_moving_object("objects", Point::origin(), Velocity::new(5.0, 0.0));

    // R = "retrieve the objects whose speed in the direction of the X-axis
    // doubles within 10 minutes" (1 tick = 1 minute here).
    let r = Query::parse("RETRIEVE o WHERE [x <- o.VX] Eventually within 10 (o.VX >= 2 * x)")?;
    println!("query R: {r}\n");

    let cq = db.register_continuous(r.clone())?;
    let mut pq = PersistentQuery::enter(&db, r.clone());

    let report = |db: &mut Database, pq: &mut PersistentQuery, label: &str| {
        let t = db.now();
        let inst = db.instantaneous_now(&r).expect("instantaneous");
        let cont = db.continuous_display(cq, t).expect("continuous");
        let pers = pq.satisfied_now(db).expect("persistent");
        println!(
            "t={t}  {label:<34} instantaneous={:<6} continuous={:<6} persistent={:?}",
            format!("{:?}", inst.len()),
            format!("{:?}", cont.len()),
            pers.iter().map(|v| v[0].to_string()).collect::<Vec<_>>(),
        );
    };

    report(&mut db, &mut pq, "X.function = 5t");
    db.advance_clock(1);
    db.update_motion(o, Velocity::new(7.0, 0.0))?;
    report(&mut db, &mut pq, "update: 7t");
    db.advance_clock(1);
    db.update_motion(o, Velocity::new(10.0, 0.0))?;
    report(&mut db, &mut pq, "update: 10t  (5 -> 10 doubled!)");
    db.advance_clock(5);
    report(&mut db, &mut pq, "cruising");

    println!(
        "\nAs the paper argues: the instantaneous and continuous variants never \
         retrieve o\n(each implicit future history has constant speed), while the \
         persistent variant,\nevaluated over the recorded update history anchored at \
         its entry time, retrieves o\nfrom wall-time 2 onwards."
    );
    Ok(())
}
