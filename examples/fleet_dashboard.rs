//! A fleet dashboard: concurrent readers over a shared MOST database,
//! nearest-object lookups (the paper's opening "nearest hospital" query),
//! and `EXPLAIN`-style traces of the appendix algorithm.
//!
//! ```sh
//! cargo run --example fleet_dashboard
//! ```

use moving_objects::core::{Database, SharedDatabase};
use moving_objects::ftl::{explain_query, Query};
use moving_objects::spatial::{Point, Polygon, Velocity};
use moving_objects::workload::cars::CarScenario;
use std::thread;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(2_000);
    db.add_region("Depot", Polygon::rectangle(-50.0, -50.0, 50.0, 50.0));

    let scenario = CarScenario { count: 30, ..CarScenario::small(99) };
    let plans = scenario.generate();
    let ids = scenario.populate(&mut db, &plans);
    let hospital =
        db.insert_moving_object("hospitals", Point::new(120.0, 80.0), Velocity::zero());

    // EXPLAIN: relation sizes per subformula, bottom-up (appendix order).
    let q = Query::parse(
        "RETRIEVE o WHERE o.PRICE <= 150 AND Eventually within 500 (INSIDE(o, Depot) AND Always for 30 INSIDE(o, Depot))",
    )?;
    let (answer, trace) = explain_query(&db.current_context(), &q)?;
    println!("EXPLAIN {q}\n");
    println!("{:<72} {:>5} {:>6} {:>8}", "subformula (bottom-up)", "rows", "spans", "ticks");
    for node in &trace {
        println!(
            "{:<72} {:>5} {:>6} {:>8}",
            format!("{}{}", "  ".repeat(node.depth), truncate(&node.formula, 70 - 2 * node.depth)),
            node.rows,
            node.spans,
            node.ticks
        );
    }
    println!("\nanswer: {} vehicles\n", answer.len());

    // Nearest-object: "How far is the car ... from the nearest hospital?"
    let car = ids[0];
    if let Some((h, d)) = db.nearest_object(car, Some("hospitals"))? {
        println!("vehicle #{car} is {d:.1} from the nearest hospital (#{h})");
    }
    let _ = hospital;

    // Shared access: four dashboard widgets query concurrently while a
    // sensor thread feeds motion updates.
    let shared = SharedDatabase::new(db);
    let widgets: Vec<_> = (0..4)
        .map(|w| {
            let shared = shared.clone();
            thread::spawn(move || {
                let q = Query::parse("RETRIEVE o WHERE Eventually within 300 INSIDE(o, Depot)")
                    .expect("parses");
                let mut last = 0;
                for _ in 0..20 {
                    last = shared.instantaneous_now(&q).expect("evaluates").len();
                }
                (w, last)
            })
        })
        .collect();
    let feed = {
        let shared = shared.clone();
        let ids = ids.clone();
        thread::spawn(move || {
            for (i, id) in ids.iter().cycle().take(40).enumerate() {
                shared.advance_clock(1);
                shared
                    .update_motion(*id, Velocity::new((i % 5) as f64 * 0.3 - 0.6, 0.4))
                    .expect("updates");
            }
        })
    };
    feed.join().expect("sensor feed");
    for w in widgets {
        let (i, n) = w.join().expect("widget");
        println!("widget {i}: {n} vehicles headed for the depot");
    }
    println!("clock now at t={}", shared.now());
    Ok(())
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}
