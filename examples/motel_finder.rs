//! The travelling-salesman scenario of Sections 1–2: a car on the highway
//! issues "Display motels within a radius of 5 miles" as a *continuous*
//! query — evaluated once, displayed from the materialized answer as the
//! car moves, re-evaluated only when a motion vector changes.
//!
//! ```sh
//! cargo run --example motel_finder
//! ```

use moving_objects::core::Database;
use moving_objects::ftl::Query;
use moving_objects::spatial::{Point, Velocity};
use moving_objects::workload::motels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new(2_000);

    // The MOTELS relation: 40 motels along a 1000-mile highway.
    let all = motels::highway_motels(40, 1_000.0, 4.0, 7);
    motels::populate(&mut db, &all);

    // The car drives east along the highway at 1 mile per tick.
    let car = db.insert_moving_object("cars", Point::new(0.0, 0.0), Velocity::new(1.0, 0.0));

    // The Section 1 gesture: the driver draws region C around the car and
    // "indicates that C moves as a rigid body having the motion vector of
    // the car".  `INSIDE(m, C, o)` is that moving region; FTL variables
    // range over all objects, so we retrieve (motel, vehicle) pairs and
    // keep the rows for our car when displaying.
    db.add_region(
        "C",
        moving_objects::spatial::Polygon::rectangle(-5.0, -5.0, 5.0, 5.0),
    );
    let q = Query::parse("RETRIEVE m, o WHERE m.PRICE <= 120 AND m <> o AND INSIDE(m, C, o)")?;
    let cq = db.register_continuous(q)?;
    println!(
        "continuous query registered; single evaluation served {} (motel, car) rows",
        db.continuous_answer(cq)?.len()
    );

    // Drive.  The display changes with the car's position although the
    // database receives no updates at all.
    for _ in 0..10 {
        db.advance_clock(100);
        let now = db.now();
        let display = db.continuous_display(cq, now)?;
        let near: Vec<String> = display
            .iter()
            .filter(|row| row[1] == moving_objects::dbms::value::Value::Id(car))
            .map(|row| format!("{}", row[0]))
            .collect();
        let x = db.object(car)?.position_at(now).map(|p| p.x).unwrap_or(0.0);
        println!("t={now:>4}  car at x={x:>6.0}  motels in range: {near:?}");
    }
    println!("evaluations so far: {}", db.continuous_evaluations());

    // The driver takes an exit: one motion-vector update, one refresh.
    db.update_motion(car, Velocity::new(0.0, 1.0))?;
    println!(
        "after the exit-ramp update: {} evaluations (exactly one refresh)",
        db.continuous_evaluations()
    );

    // A satisfactory motel was found — cancel, per Section 2.3.
    db.cancel_continuous(cq)?;
    println!("query cancelled");
    Ok(())
}
