//! Distributed query processing (Section 5.3): the database lives on the
//! vehicles themselves; compare data shipping against query shipping for
//! one-shot and continuous object queries, and run a relationship query.
//!
//! ```sh
//! cargo run --example distributed_tracking
//! ```

use moving_objects::mobile::strategy::{
    continuous_object_data_shipping, continuous_object_query_shipping,
    object_query_data_shipping, object_query_query_shipping,
    relationship_query_centralized, self_referencing, ObjectPredicate, RelPredicate,
};
use moving_objects::mobile::{FleetSim, Network};
use moving_objects::spatial::{Point, Velocity};
use moving_objects::workload::cars::CarScenario;

fn build_fleet(mean_gap: f64, seed: u64) -> FleetSim {
    let scenario = CarScenario {
        count: 60,
        area: 400.0,
        speed: (0.5, 2.0),
        mean_update_gap: mean_gap,
        horizon: 600,
        seed,
    };
    let mut sim = FleetSim::new();
    sim.add_node(0, Point::origin(), Velocity::zero(), 0.0, vec![]); // issuer
    for (i, p) in scenario.generate().into_iter().enumerate() {
        sim.add_node(i as u64 + 1, p.start, p.velocity, p.price, p.updates);
    }
    sim
}

fn main() {
    let pred = ObjectPredicate::ReachesPointWithin {
        target: Point::new(0.0, 0.0),
        radius: 50.0,
        within: 600,
    };

    // Self-referencing: zero messages.
    let sim = build_fleet(1e18, 1);
    println!(
        "self-referencing \"will I reach the depot?\" for node 5 -> {:?} (0 messages)",
        self_referencing(&sim, 5, &pred)
    );

    // One-shot object query: both strategies, same answer, different bills.
    let mut net_data = Network::new(0);
    let a = object_query_data_shipping(&sim, &mut net_data, 0, &pred);
    let mut net_query = Network::new(0);
    let b = object_query_query_shipping(&sim, &mut net_query, 0, &pred, "RETRIEVE o WHERE ...");
    assert_eq!(a, b);
    println!("\none-shot object query, {} matches of {} nodes:", a.len(), sim.len() - 1);
    println!(
        "  data shipping : {:>4} messages, {:>6} bytes",
        net_data.stats.messages, net_data.stats.bytes
    );
    println!(
        "  query shipping: {:>4} messages, {:>6} bytes",
        net_query.stats.messages, net_query.stats.bytes
    );

    // Continuous object query over 600 ticks with chatty updates.
    let mut sim_a = build_fleet(40.0, 2);
    let mut net_a = Network::new(0);
    let truth_a = continuous_object_data_shipping(&mut sim_a, &mut net_a, 0, &pred, 600);
    let mut sim_b = build_fleet(40.0, 2);
    let mut net_b = Network::new(0);
    let truth_b =
        continuous_object_query_shipping(&mut sim_b, &mut net_b, 0, &pred, 600, "RETRIEVE ...");
    assert_eq!(truth_a, truth_b);
    println!("\ncontinuous object query over 600 ticks ({} matching nodes):", truth_a.len());
    println!(
        "  data shipping : {:>4} messages (one per motion-vector change)",
        net_a.stats.messages
    );
    println!(
        "  query shipping: {:>4} messages (one per satisfaction transition)",
        net_b.stats.messages
    );

    // Relationship query: centralize all states at the issuer.
    let sim = build_fleet(1e18, 3);
    let mut net = Network::new(0);
    let pairs = relationship_query_centralized(
        &sim,
        &mut net,
        0,
        &RelPredicate::StayWithinFor { radius: 40.0, for_at_least: 120 },
    );
    println!(
        "\nrelationship query: {} pairs stay within 40 for 120 ticks ({} messages to centralize)",
        pairs.len(),
        net.stats.messages
    );
}
