//! The `mostql` command processor: an interactive shell over a MOST
//! [`Database`].
//!
//! Commands (case-insensitive keywords; names are case-sensitive):
//!
//! ```text
//! CREATE <name> AT (x, y) VEL (dx, dy) [CLASS <class>]
//! SET <name>.<ATTR> = <value>                 -- static attribute
//! MOVE <name> VEL (dx, dy)                    -- motion-vector update
//! MOVE <name> AT (x, y) VEL (dx, dy)          -- full position report
//! DROP <name>
//! REGION <name> RECT (x0, y0, x1, y1)
//! TICK [n]                                    -- advance the clock
//! NOW                                         -- show the clock
//! OBJECTS                                     -- list objects
//! RETRIEVE ... WHERE ...                      -- instantaneous FTL query
//! CONTINUOUS RETRIEVE ... WHERE ...           -- register, prints cq<id>
//! SHOW cq<id> [AT t]                          -- display a continuous query
//! CANCEL cq<id>
//! EXPLAIN RETRIEVE ... WHERE ...              -- relation-size trace
//! NEAREST <name> [<class>]
//! SAVE <path> / LOAD <path>                   -- JSON snapshot of the session
//! HELP / QUIT
//! ```
//!
//! The processor is a pure function from a command line to output text, so
//! the whole surface is unit-testable; `src/bin/mostql.rs` wraps it in a
//! stdin loop.

use most_core::{CoreError, Database};
use most_dbms::value::Value;
use most_ftl::{explain_query, Query};
use most_spatial::{Point, Polygon, Velocity};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Interactive session state: the database plus name bindings.
pub struct Session {
    db: Database,
    names: BTreeMap<String, u64>,
    persistent: Vec<most_core::PersistentQuery>,
}

/// On-disk form of a session: the database (spatial index excluded) plus
/// the name bindings.  Persistent queries are intentionally not saved —
/// they are anchored to a live evaluation session.
struct SessionSnapshot {
    db: Database,
    names: BTreeMap<String, u64>,
}

most_testkit::json_struct!(SessionSnapshot { db, names });

/// Outcome of one command.
pub enum Outcome {
    /// Text to print.
    Text(String),
    /// The user asked to leave.
    Quit,
}

impl Session {
    /// A fresh session with the given query-expiration horizon.
    pub fn new(expiration: u64) -> Self {
        Session {
            db: Database::new(expiration),
            names: BTreeMap::new(),
            persistent: Vec::new(),
        }
    }

    /// Read-only access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Executes one command line.
    pub fn execute(&mut self, line: &str) -> Outcome {
        match self.dispatch(line.trim()) {
            Ok(Some(text)) => Outcome::Text(text),
            Ok(None) => Outcome::Quit,
            Err(e) => Outcome::Text(format!("error: {e}")),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<Option<String>, String> {
        if line.is_empty() || line.starts_with('#') {
            return Ok(Some(String::new()));
        }
        let upper = line.to_ascii_uppercase();
        let first = upper.split_whitespace().next().unwrap_or_default().to_string();
        match first.as_str() {
            "QUIT" | "EXIT" => Ok(None),
            "HELP" => Ok(Some(HELP.trim().to_owned())),
            "NOW" => Ok(Some(format!("t = {}", self.db.now()))),
            "TICK" => {
                let n: u64 = match line.split_whitespace().nth(1) {
                    Some(s) => s.parse().map_err(|_| format!("bad tick count `{s}`"))?,
                    None => 1,
                };
                self.db.advance_clock(n);
                let events = self.db.take_trigger_events();
                let mut out = format!("t = {}", self.db.now());
                for e in events {
                    let _ = write!(out, "\ntrigger {} fired at t={} for {:?}", e.name, e.at, e.values);
                }
                Ok(Some(out))
            }
            "OBJECTS" => {
                let now = self.db.now();
                let mut out = String::new();
                for (name, id) in &self.names {
                    let o = self.db.object(*id).map_err(|e| e.to_string())?;
                    match (o.position_at(now), o.velocity_at(now)) {
                        (Some(p), Some(v)) => {
                            let _ = writeln!(out, "{name} (#{id}, {}): at {p}, vel {v}", o.class);
                        }
                        _ => {
                            let _ = writeln!(out, "{name} (#{id}, {})", o.class);
                        }
                    }
                }
                if out.is_empty() {
                    out = "(no objects)".into();
                }
                Ok(Some(out.trim_end().to_owned()))
            }
            "CREATE" => self.cmd_create(line).map(Some),
            "SET" => self.cmd_set(line).map(Some),
            "MOVE" => self.cmd_move(line).map(Some),
            "DROP" => self.cmd_drop(line).map(Some),
            "REGION" => self.cmd_region(line).map(Some),
            "RETRIEVE" => self.cmd_retrieve(line).map(Some),
            "CONTINUOUS" => self.cmd_continuous(line).map(Some),
            "SHOW" => self.cmd_show(line).map(Some),
            "CANCEL" => self.cmd_cancel(line).map(Some),
            "EXPLAIN" => self.cmd_explain(line).map(Some),
            "PERSISTENT" => self.cmd_persistent(line).map(Some),
            "SAVE" => self.cmd_save(line).map(Some),
            "LOAD" => self.cmd_load(line).map(Some),
            "TRIGGER" => self.cmd_trigger(line).map(Some),
            "NEAREST" => self.cmd_nearest(line).map(Some),
            other => Err(format!("unknown command `{other}` (try HELP)")),
        }
    }

    fn lookup(&self, name: &str) -> Result<u64, String> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| format!("unknown object `{name}`"))
    }

    fn cmd_create(&mut self, line: &str) -> Result<String, String> {
        // CREATE <name> AT (x, y) VEL (dx, dy) [CLASS <class>]
        let name = nth_word(line, 1)?;
        if self.names.contains_key(&name) {
            return Err(format!("object `{name}` already exists"));
        }
        let at = pair_after(line, "AT")?;
        let vel = pair_after(line, "VEL")?;
        let class = word_after(line, "CLASS").unwrap_or_else(|| "objects".to_owned());
        let id = self.db.insert_moving_object(
            class,
            Point::new(at.0, at.1),
            Velocity::new(vel.0, vel.1),
        );
        self.names.insert(name.clone(), id);
        Ok(format!("{name} = #{id}"))
    }

    fn cmd_set(&mut self, line: &str) -> Result<String, String> {
        // SET <name>.<ATTR> = <value>
        let target = nth_word(line, 1)?;
        let (name, attr) = target
            .split_once('.')
            .ok_or_else(|| "expected <name>.<ATTR>".to_owned())?;
        let id = self.lookup(name)?;
        let rhs = line
            .split_once('=')
            .map(|(_, r)| r.trim())
            .ok_or_else(|| "expected `= <value>`".to_owned())?;
        let value: Value = match rhs.parse::<f64>() {
            Ok(x) => x.into(),
            Err(_) => rhs.trim_matches('\'').into(),
        };
        self.db
            .set_static(id, attr, value)
            .map_err(|e: CoreError| e.to_string())?;
        Ok(format!("{name}.{attr} set"))
    }

    fn cmd_move(&mut self, line: &str) -> Result<String, String> {
        let name = nth_word(line, 1)?;
        let id = self.lookup(&name)?;
        let vel = pair_after(line, "VEL")?;
        let velocity = Velocity::new(vel.0, vel.1);
        if line.to_ascii_uppercase().contains(" AT ") {
            let at = pair_after(line, "AT")?;
            self.db
                .update_position(
                    id,
                    most_core::MotionUpdate { position: Point::new(at.0, at.1), velocity },
                )
                .map_err(|e| e.to_string())?;
        } else {
            self.db.update_motion(id, velocity).map_err(|e| e.to_string())?;
        }
        Ok(format!("{name} updated at t={}", self.db.now()))
    }

    fn cmd_drop(&mut self, line: &str) -> Result<String, String> {
        let name = nth_word(line, 1)?;
        let id = self.lookup(&name)?;
        self.db.remove_object(id).map_err(|e| e.to_string())?;
        self.names.remove(&name);
        Ok(format!("{name} dropped"))
    }

    fn cmd_region(&mut self, line: &str) -> Result<String, String> {
        // REGION <name> RECT (x0, y0, x1, y1)
        let name = nth_word(line, 1)?;
        let nums = numbers_in_parens(line)?;
        if nums.len() != 4 {
            return Err("REGION ... RECT needs four numbers".into());
        }
        self.db
            .add_region(&name, Polygon::rectangle(nums[0], nums[1], nums[2], nums[3]));
        Ok(format!("region {name} defined"))
    }

    fn cmd_retrieve(&mut self, line: &str) -> Result<String, String> {
        let q = Query::parse(line).map_err(|e| render_ftl_error(line, e))?;
        let now = self.db.now();
        let answer = self.db.instantaneous(&q).map_err(|e| e.to_string())?;
        let mut out = format!("{} rows (satisfaction in global ticks):\n{answer}", answer.len());
        let live = answer.at_tick(now).len();
        let _ = write!(out, "satisfied at the current tick ({now}): {live}");
        Ok(out)
    }

    fn cmd_continuous(&mut self, line: &str) -> Result<String, String> {
        let rest = line
            .split_once(char::is_whitespace)
            .map(|(_, r)| r)
            .ok_or_else(|| "expected CONTINUOUS RETRIEVE ...".to_owned())?;
        let q = Query::parse(rest)
            .map_err(|e| render_ftl_error(rest, e))?;
        let id = self.db.register_continuous(q).map_err(|e| e.to_string())?;
        Ok(format!("registered cq{id}"))
    }

    fn cmd_show(&mut self, line: &str) -> Result<String, String> {
        let handle = nth_word(line, 1)?;
        if let Some(pid) = handle.strip_prefix("pq").and_then(|s| s.parse::<usize>().ok()) {
            let db = &self.db;
            let pq = self
                .persistent
                .get_mut(pid)
                .ok_or_else(|| format!("unknown persistent query pq{pid}"))?;
            let rows = pq.satisfied_now(db).map_err(|e| e.to_string())?;
            let mut out = format!(
                "pq{pid} (anchored t={}): {} instantiations satisfied given the recorded history",
                pq.entered_at(),
                rows.len()
            );
            for r in rows {
                let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
                let _ = write!(out, "\n  ({})", cells.join(", "));
            }
            return Ok(out);
        }
        let id = parse_cq(&handle)?;
        let at = match word_after(line, "AT") {
            Some(t) => t.parse().map_err(|_| format!("bad tick `{t}`"))?,
            None => self.db.now(),
        };
        let rows = self
            .db
            .continuous_display(id, at)
            .map_err(|e| e.to_string())?;
        let mut out = format!("cq{id} at t={at}: {} instantiations", rows.len());
        for r in rows {
            let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
            let _ = write!(out, "\n  ({})", cells.join(", "));
        }
        Ok(out)
    }

    fn cmd_cancel(&mut self, line: &str) -> Result<String, String> {
        let handle = nth_word(line, 1)?;
        let id = parse_cq(&handle)?;
        self.db.cancel_continuous(id).map_err(|e| e.to_string())?;
        Ok(format!("cq{id} cancelled"))
    }

    fn cmd_explain(&mut self, line: &str) -> Result<String, String> {
        let rest = line
            .split_once(char::is_whitespace)
            .map(|(_, r)| r)
            .ok_or_else(|| "expected EXPLAIN RETRIEVE ...".to_owned())?;
        let q = Query::parse(rest)
            .map_err(|e| render_ftl_error(rest, e))?;
        let ctx = self.db.current_context();
        let (answer, trace) = explain_query(&ctx, &q).map_err(|e| e.to_string())?;
        let mut out = String::new();
        for node in &trace {
            let _ = writeln!(
                out,
                "{:>5} rows {:>6} spans {:>8} ticks | {}{}",
                node.rows,
                node.spans,
                node.ticks,
                "  ".repeat(node.depth),
                node.formula
            );
        }
        let _ = write!(out, "answer: {} rows", answer.len());
        Ok(out)
    }

    fn cmd_persistent(&mut self, line: &str) -> Result<String, String> {
        let rest = line
            .split_once(char::is_whitespace)
            .map(|(_, r)| r)
            .ok_or_else(|| "expected PERSISTENT RETRIEVE ...".to_owned())?;
        let q = Query::parse(rest).map_err(|e| render_ftl_error(rest, e))?;
        let pq = most_core::PersistentQuery::enter(&self.db, q);
        let id = self.persistent.len();
        self.persistent.push(pq);
        Ok(format!(
            "registered pq{id} (anchored at t={}; SHOW pq{id} re-evaluates over the recorded history)",
            self.db.now()
        ))
    }

    fn cmd_save(&mut self, line: &str) -> Result<String, String> {
        let path = nth_word(line, 1)?;
        let snapshot = SessionSnapshot { db: self.db.clone(), names: self.names.clone() };
        let json = most_testkit::ser::to_json_string(&snapshot)
            .map_err(|e| format!("serialize failed: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        Ok(format!(
            "saved {} objects at t={} to {path}",
            self.db.len(),
            self.db.now()
        ))
    }

    fn cmd_load(&mut self, line: &str) -> Result<String, String> {
        let path = nth_word(line, 1)?;
        let json =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let snapshot: SessionSnapshot = most_testkit::ser::from_json_str(&json)
            .map_err(|e| format!("cannot parse `{path}`: {e}"))?;
        self.db = snapshot.db;
        self.names = snapshot.names;
        self.persistent.clear();
        Ok(format!(
            "loaded {} objects, clock at t={} (persistent queries cleared; spatial index off)",
            self.db.len(),
            self.db.now()
        ))
    }

    fn cmd_trigger(&mut self, line: &str) -> Result<String, String> {
        // TRIGGER <name> RETRIEVE ...
        let name = nth_word(line, 1)?;
        let rest = line
            .splitn(3, char::is_whitespace)
            .nth(2)
            .ok_or_else(|| "expected TRIGGER <name> RETRIEVE ...".to_owned())?;
        let q = Query::parse(rest).map_err(|e| render_ftl_error(rest, e))?;
        let id = self.db.create_trigger(&name, q).map_err(|e| e.to_string())?;
        Ok(format!("trigger {name} (#{id}) armed; firings surface on TICK"))
    }

    fn cmd_nearest(&mut self, line: &str) -> Result<String, String> {
        let name = nth_word(line, 1)?;
        let id = self.lookup(&name)?;
        let class = line.split_whitespace().nth(2).map(str::to_owned);
        match self
            .db
            .nearest_object(id, class.as_deref())
            .map_err(|e| e.to_string())?
        {
            Some((other, d)) => {
                let label = self
                    .names
                    .iter()
                    .find(|(_, v)| **v == other)
                    .map(|(k, _)| k.clone())
                    .unwrap_or_else(|| format!("#{other}"));
                Ok(format!("nearest to {name}: {label} at distance {d:.2}"))
            }
            None => Ok("no candidate objects".into()),
        }
    }
}

const HELP: &str = r#"
commands:
  CREATE <name> AT (x, y) VEL (dx, dy) [CLASS <class>]
  SET <name>.<ATTR> = <value>
  MOVE <name> [AT (x, y)] VEL (dx, dy)
  DROP <name>
  REGION <name> RECT (x0, y0, x1, y1)
  TICK [n] | NOW | OBJECTS
  RETRIEVE ... WHERE <FTL formula>
  CONTINUOUS RETRIEVE ... | SHOW cq<id> [AT t] | CANCEL cq<id>
  PERSISTENT RETRIEVE ... | SHOW pq<id>
  TRIGGER <name> RETRIEVE ...
  EXPLAIN RETRIEVE ...
  NEAREST <name> [<class>]
  SAVE <path> | LOAD <path>
  HELP | QUIT
"#;

/// Renders an FTL error; parse errors get a caret under the offending
/// position.
fn render_ftl_error(src: &str, e: most_ftl::FtlError) -> String {
    if let most_ftl::FtlError::Parse { message, offset } = &e {
        let col = (*offset).min(src.len());
        format!("{src}\n{}^ {message}", " ".repeat(col))
    } else {
        e.to_string()
    }
}

fn nth_word(line: &str, n: usize) -> Result<String, String> {
    line.split_whitespace()
        .nth(n)
        .map(str::to_owned)
        .ok_or_else(|| "missing argument".to_owned())
}

/// The word following a (case-insensitive) keyword.
fn word_after(line: &str, keyword: &str) -> Option<String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    words
        .iter()
        .position(|w| w.eq_ignore_ascii_case(keyword))
        .and_then(|i| words.get(i + 1))
        .map(|s| s.to_string())
}

/// Parses `(a, b)` following a keyword.
fn pair_after(line: &str, keyword: &str) -> Result<(f64, f64), String> {
    let upper = line.to_ascii_uppercase();
    let kw = format!("{keyword} ");
    let pos = upper
        .find(&kw)
        .or_else(|| upper.find(&format!("{keyword}(")))
        .ok_or_else(|| format!("missing {keyword} (a, b)"))?;
    let rest = &line[pos + keyword.len()..];
    let open = rest.find('(').ok_or_else(|| format!("{keyword}: expected `(`"))?;
    let close = rest[open..]
        .find(')')
        .map(|i| open + i)
        .ok_or_else(|| format!("{keyword}: expected `)`"))?;
    let nums: Result<Vec<f64>, _> = rest[open + 1..close]
        .split(',')
        .map(|s| s.trim().parse::<f64>())
        .collect();
    match nums {
        Ok(v) if v.len() == 2 => Ok((v[0], v[1])),
        _ => Err(format!("{keyword}: expected two numbers")),
    }
}

/// All numbers inside the first parenthesized group.
fn numbers_in_parens(line: &str) -> Result<Vec<f64>, String> {
    let open = line.find('(').ok_or_else(|| "expected `(`".to_owned())?;
    let close = line[open..]
        .find(')')
        .map(|i| open + i)
        .ok_or_else(|| "expected `)`".to_owned())?;
    line[open + 1..close]
        .split(',')
        .map(|s| s.trim().parse::<f64>().map_err(|_| format!("bad number `{s}`")))
        .collect()
}

fn parse_cq(handle: &str) -> Result<u64, String> {
    handle
        .strip_prefix("cq")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("expected cq<id>, got `{handle}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(s: &mut Session, line: &str) -> String {
        match s.execute(line) {
            Outcome::Text(t) => t,
            Outcome::Quit => panic!("unexpected quit"),
        }
    }

    fn script(s: &mut Session, lines: &[&str]) -> String {
        lines.iter().map(|l| text(s, l)).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn create_tick_and_query() {
        let mut s = Session::new(1_000);
        script(
            &mut s,
            &[
                "CREATE car1 AT (0, 0) VEL (1, 0)",
                "SET car1.PRICE = 80",
                "REGION P RECT (90, -10, 110, 10)",
                "TICK 50",
            ],
        );
        let out = text(
            &mut s,
            "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 100 INSIDE(o, P)",
        );
        assert!(out.contains("1 rows"), "{out}");
        assert!(out.contains("#1"), "{out}");
        assert!(out.contains("satisfied at the current tick (50): 1"), "{out}");
    }

    #[test]
    fn continuous_lifecycle() {
        let mut s = Session::new(1_000);
        script(
            &mut s,
            &[
                "CREATE car1 AT (0, 0) VEL (1, 0)",
                "REGION P RECT (90, -10, 110, 10)",
            ],
        );
        let out = text(&mut s, "CONTINUOUS RETRIEVE o WHERE INSIDE(o, P)");
        assert!(out.contains("registered cq0"), "{out}");
        let out = text(&mut s, "SHOW cq0 AT 95");
        assert!(out.contains("1 instantiations"), "{out}");
        let out = text(&mut s, "SHOW cq0 AT 10");
        assert!(out.contains("0 instantiations"), "{out}");
        let out = text(&mut s, "CANCEL cq0");
        assert!(out.contains("cancelled"), "{out}");
        let out = text(&mut s, "SHOW cq0");
        assert!(out.starts_with("error"), "{out}");
    }

    #[test]
    fn move_drop_and_objects() {
        let mut s = Session::new(1_000);
        script(&mut s, &["CREATE a AT (0, 0) VEL (1, 0)", "TICK 10"]);
        let out = text(&mut s, "MOVE a VEL (0, 1)");
        assert!(out.contains("updated at t=10"), "{out}");
        let out = text(&mut s, "OBJECTS");
        assert!(out.contains("a (#1"), "{out}");
        assert!(out.contains("(10, 0)"), "{out}");
        let out = text(&mut s, "MOVE a AT (5, 5) VEL (0, 0)");
        assert!(!out.starts_with("error"), "{out}");
        let out = text(&mut s, "DROP a");
        assert!(out.contains("dropped"), "{out}");
        assert_eq!(text(&mut s, "OBJECTS"), "(no objects)");
    }

    #[test]
    fn nearest_and_explain() {
        let mut s = Session::new(500);
        script(
            &mut s,
            &[
                "CREATE car AT (0, 0) VEL (1, 0)",
                "CREATE h1 AT (50, 0) VEL (0, 0) CLASS hospitals",
                "CREATE h2 AT (10, 10) VEL (0, 0) CLASS hospitals",
                "REGION P RECT (40, -5, 60, 5)",
            ],
        );
        let out = text(&mut s, "NEAREST car hospitals");
        assert!(out.contains("h2"), "{out}");
        let out = text(&mut s, "EXPLAIN RETRIEVE o WHERE Eventually INSIDE(o, P)");
        assert!(out.contains("INSIDE(o, P)"), "{out}");
        assert!(out.contains("answer: 2 rows"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new(100);
        for bad in [
            "FROBNICATE",
            "CREATE",
            "CREATE x AT (1) VEL (0, 0)",
            "SET nobody.PRICE = 3",
            "MOVE ghost VEL (1, 1)",
            "SHOW cqX",
            "RETRIEVE o WHERE INSIDE(o, NOWHERE)",
            "TICK abc",
        ] {
            let out = text(&mut s, bad);
            assert!(out.starts_with("error"), "`{bad}` -> {out}");
        }
        // Session still usable afterwards.
        assert!(!text(&mut s, "NOW").starts_with("error"));
    }

    #[test]
    fn parse_errors_show_a_caret() {
        let mut s = Session::new(100);
        let out = text(&mut s, "RETRIEVE o WHERE o.PRICE <=");
        assert!(out.contains('^'), "{out}");
        assert!(out.contains("expected"), "{out}");
    }

    #[test]
    fn save_load_round_trip() {
        let path = std::env::temp_dir().join("mostql_snapshot_test.json");
        let path_s = path.to_string_lossy().to_string();
        let mut s = Session::new(1_000);
        script(
            &mut s,
            &[
                "CREATE car AT (0, 0) VEL (1, 0)",
                "SET car.PRICE = 80",
                "REGION P RECT (90, -10, 110, 10)",
                "CONTINUOUS RETRIEVE o WHERE INSIDE(o, P)",
                "TICK 50",
            ],
        );
        let out = text(&mut s, &format!("SAVE {path_s}"));
        assert!(out.contains("saved 1 objects at t=50"), "{out}");
        // A fresh session restores the full state: clock, objects, regions,
        // names and even the materialized continuous query.
        let mut s2 = Session::new(10);
        let out = text(&mut s2, &format!("LOAD {path_s}"));
        assert!(out.contains("loaded 1 objects, clock at t=50"), "{out}");
        assert_eq!(text(&mut s2, "NOW"), "t = 50");
        assert!(text(&mut s2, "OBJECTS").contains("car (#1"));
        assert!(text(&mut s2, "SHOW cq0 AT 95").contains("1 instantiations"));
        let q = "RETRIEVE o WHERE o.PRICE <= 100 AND Eventually within 100 INSIDE(o, P)";
        assert!(text(&mut s2, q).contains("1 rows"));
        // Errors are non-fatal.
        assert!(text(&mut s2, "LOAD /nonexistent/nope.json").starts_with("error"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quit_help_comments() {
        let mut s = Session::new(100);
        assert!(matches!(s.execute("QUIT"), Outcome::Quit));
        assert!(matches!(s.execute("exit"), Outcome::Quit));
        assert!(text(&mut s, "HELP").contains("RETRIEVE"));
        assert_eq!(text(&mut s, "# a comment"), "");
        assert_eq!(text(&mut s, ""), "");
    }

    #[test]
    fn persistent_queries_in_the_shell() {
        let mut s = Session::new(100);
        script(&mut s, &["CREATE o AT (0, 0) VEL (5, 0)"]);
        let out = text(
            &mut s,
            "PERSISTENT RETRIEVE o WHERE [x <- o.VX] Eventually within 10 (o.VX >= 2 * x)",
        );
        assert!(out.contains("registered pq0"), "{out}");
        assert!(text(&mut s, "SHOW pq0").contains("0 instantiations"));
        script(&mut s, &["TICK 1", "MOVE o VEL (7, 0)", "TICK 1", "MOVE o VEL (10, 0)"]);
        let out = text(&mut s, "SHOW pq0");
        assert!(out.contains("1 instantiations"), "{out}");
        assert!(text(&mut s, "SHOW pq9").starts_with("error"));
    }

    #[test]
    fn trigger_command_arms_and_fires() {
        let mut s = Session::new(1_000);
        script(
            &mut s,
            &[
                "CREATE car AT (0, 0) VEL (1, 0)",
                "REGION P RECT (20, -5, 40, 5)",
            ],
        );
        let out = text(&mut s, "TRIGGER enterP RETRIEVE o WHERE INSIDE(o, P)");
        assert!(out.contains("armed"), "{out}");
        let out = text(&mut s, "TICK 25");
        assert!(out.contains("trigger enterP fired at t=20"), "{out}");
    }

    #[test]
    fn triggers_surface_on_tick() {
        let mut s = Session::new(1_000);
        script(
            &mut s,
            &[
                "CREATE car AT (0, 0) VEL (1, 0)",
                "REGION P RECT (20, -5, 40, 5)",
            ],
        );
        // Use the database directly to create a trigger, then TICK past the
        // entry.
        let q = Query::parse("RETRIEVE o WHERE INSIDE(o, P)").unwrap();
        s.db.create_trigger("enterP", q).unwrap();
        let out = text(&mut s, "TICK 25");
        assert!(out.contains("trigger enterP fired at t=20"), "{out}");
    }
}
