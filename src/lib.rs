//! # moving-objects
//!
//! Umbrella crate for the reproduction of *"Modeling and Querying Moving
//! Objects"* (A. P. Sistla, O. Wolfson, S. Chamberlain, S. Dao; ICDE 1997).
//!
//! The paper introduces the **MOST** data model — databases whose *dynamic
//! attributes* change continuously as functions of time without explicit
//! updates — and **FTL** (Future Temporal Logic), a query language over the
//! implied future database history, together with an interval-relation
//! evaluation algorithm, a dynamic-attribute indexing scheme and strategies
//! for mobile/distributed query processing.
//!
//! This crate re-exports the whole workspace so applications can depend on a
//! single crate:
//!
//! * [`temporal`] — tick clock, closed intervals, normalized interval sets,
//!   the `Until` chain algebra (paper appendix).
//! * [`spatial`] — points, motion vectors, polygons and the moving-point
//!   predicate solvers behind `DIST`, `INSIDE` and `WITHIN-A-SPHERE`.
//! * [`dbms`] — the in-memory relational DBMS substrate MOST is layered on
//!   (Section 5.1).
//! * [`ftl`] — FTL lexer/parser/semantics and the appendix evaluation
//!   algorithm (Section 3).
//! * [`index`] — dynamic-attribute indexing over (time × value) space
//!   (Section 4).
//! * [`core`] — the MOST data model proper: dynamic attributes, database
//!   histories, instantaneous / continuous / persistent queries, triggers,
//!   and the MOST-on-DBMS rewriting (Sections 2 and 5.1).
//! * [`mobile`] — simulated mobile distributed environment and the query
//!   shipping strategies of Sections 5.2–5.3.
//! * [`workload`] — synthetic scenario generators used by the examples,
//!   tests and benchmarks.
//! * [`server`] — TCP query-serving front-end with a newline-delimited
//!   JSON wire protocol, continuous-query subscriptions and a matching
//!   client.
//!
//! ## Quickstart
//!
//! ```
//! use moving_objects::core::{Database, MotionUpdate};
//! use moving_objects::ftl::Query;
//! use moving_objects::spatial::{Point, Velocity};
//!
//! // A database whose clock starts at tick 0, with a 1000-tick horizon.
//! let mut db = Database::new(1_000);
//!
//! // A car heading east at 0.5 distance units per tick.
//! let car = db.insert_moving_object(
//!     "car",
//!     Point::new(0.0, 0.0),
//!     Velocity::new(0.5, 0.0),
//! );
//! db.set_static(car, "PRICE", 80.0.into());
//!
//! // "Retrieve objects o that come within 10 of (50, 0) within 200 ticks."
//! let q = Query::parse(
//!     "RETRIEVE o WHERE Eventually within 200 (DIST(o, POINT(50, 0)) <= 10)",
//! )
//! .unwrap();
//! let answer = db.instantaneous(&q).unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub use most_core as core;
pub use most_dbms as dbms;
pub use most_ftl as ftl;
pub use most_index as index;
pub use most_mobile as mobile;
pub use most_server as server;
pub use most_spatial as spatial;
pub use most_temporal as temporal;
pub use most_workload as workload;

pub mod repl;
