//! `mostql` — an interactive shell over a MOST database.
//!
//! ```sh
//! cargo run --bin mostql
//! ```
//!
//! Type `HELP` for the command list.  Lines may also be piped in:
//!
//! ```sh
//! printf 'CREATE c AT (0,0) VEL (1,0)\nTICK 5\nOBJECTS\n' | cargo run --bin mostql
//! ```

use moving_objects::repl::{Outcome, Session};
use std::io::{self, BufRead, Write};

fn main() {
    let mut session = Session::new(100_000);
    // A file argument runs as a script before the interactive loop
    // (`cargo run --bin mostql -- setup.mql`).
    for path in std::env::args().skip(1) {
        match std::fs::read_to_string(&path) {
            Ok(script) => {
                for line in script.lines() {
                    match session.execute(line) {
                        Outcome::Text(t) if t.is_empty() => {}
                        Outcome::Text(t) => println!("{t}"),
                        Outcome::Quit => return,
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot read script `{path}`: {e}");
                std::process::exit(2);
            }
        }
    }
    let stdin = io::stdin();
    let interactive = true; // prompts are harmless when piped
    println!("mostql — MOST / FTL shell (HELP for commands, QUIT to leave)");
    loop {
        if interactive {
            print!("mostql> ");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => match session.execute(&line) {
                Outcome::Text(t) if t.is_empty() => {}
                Outcome::Text(t) => println!("{t}"),
                Outcome::Quit => break,
            },
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}
